#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/random.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace mdm::workload {

using corpus::TenantModel;
using quel::ResultSet;
using rel::Value;

const char* ClassName(ClientClass c) {
  switch (c) {
    case ClientClass::kEditor: return "editor";
    case ClientClass::kAnalyzer: return "analyzer";
    case ClientClass::kTypesetter: return "typesetter";
    case ClientClass::kLibrarian: return "librarian";
  }
  return "unknown";
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}
void HashStr(uint64_t* h, const std::string& s) {
  HashBytes(h, s.data(), s.size());
  HashBytes(h, "|", 1);
}
void HashInt(uint64_t* h, int64_t v) { HashBytes(h, &v, sizeof(v)); }

uint64_t HashKeys(const std::vector<int>& keys) {
  uint64_t h = kFnvOffset;
  for (int k : keys) HashInt(&h, k);
  return h;
}

const char* const kDynamicMarks[] = {"pp", "p", "mp", "mf", "f", "ff"};

/// Everything one tenant's op stream needs; owned by exactly one worker
/// thread, so nothing here is synchronized.
struct TenantRt {
  const TenantModel* model = nullptr;
  int tenant = 0;
  Rng rng{1};
  uint64_t log_hash = kFnvOffset;
  int ops_done = 0;
  int appended_measures = 0;
  int annotations = 0;
  std::vector<int> rare_keys;  // keys occurring <= 2 times (before-query)
};

/// State shared by all workers: the mix spec, latency recorders, and
/// the divergence log.
struct Shared {
  const WorkloadSpec* spec = nullptr;
  corpus::Corpus* corpus = nullptr;
  obs::Histogram latency[kClassCount];  // per-class op latency, ns
  std::atomic<uint64_t> ops[kClassCount] = {};
  std::atomic<uint64_t> errors[kClassCount] = {};
  std::atomic<uint64_t> oracle_checks{0};
  std::atomic<uint64_t> oracle_divergences{0};
  std::mutex div_mu;
  std::vector<std::string> divergences;

  bool oracle() const { return spec->oracle_every > 0; }

  void Check(bool ok, const std::string& what) {
    if (!oracle()) return;
    oracle_checks.fetch_add(1, std::memory_order_relaxed);
    if (ok) return;
    oracle_divergences.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(div_mu);
    if (divergences.size() <
        static_cast<size_t>(std::max(0, spec->max_divergences)))
      divergences.push_back(what);
  }
};

/// One worker: a Connection plus the tenants it owns.
class Worker {
 public:
  Worker(Shared* shared, Connection conn, std::vector<TenantRt*> tenants)
      : shared_(shared), conn_(std::move(conn)), tenants_(std::move(tenants)) {}

  Status Run() {
    // Round-robin across owned tenants: every tenant's stream is
    // sequential and self-contained, so the round-robin order (and the
    // thread count) cannot change any tenant's op sequence or results.
    for (int round = 0; round < shared_->spec->ops_per_tenant; ++round)
      for (TenantRt* t : tenants_) MDM_RETURN_IF_ERROR(RunOneOp(t));
    return Status::OK();
  }

 private:
  ClientClass PickClass(Rng* rng) const {
    const WorkloadSpec& s = *shared_->spec;
    const int w[kClassCount] = {
        std::max(0, s.editor_weight), std::max(0, s.analyzer_weight),
        std::max(0, s.typesetter_weight), std::max(0, s.librarian_weight)};
    int total = w[0] + w[1] + w[2] + w[3];
    if (total == 0) return ClientClass::kAnalyzer;
    int pick = static_cast<int>(rng->Uniform(static_cast<uint64_t>(total)));
    for (int i = 0; i < kClassCount; ++i) {
      pick -= w[i];
      if (pick < 0) return static_cast<ClientClass>(i);
    }
    return ClientClass::kAnalyzer;
  }

  /// Executes a script, timing it against `cls` and folding the result
  /// digest into the tenant's op log. Returns the result set (empty on
  /// error, with the status code folded instead).
  ResultSet Timed(TenantRt* t, ClientClass cls, const std::string& name,
                  const std::string& script) {
    HashStr(&t->log_hash, name);
    auto t0 = std::chrono::steady_clock::now();
    Result<ResultSet> rs = conn_.Execute(script);
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    size_t ci = static_cast<size_t>(cls);
    shared_->latency[ci].Observe(ns);
    shared_->ops[ci].fetch_add(1, std::memory_order_relaxed);
    if (!rs.ok()) {
      shared_->errors[ci].fetch_add(1, std::memory_order_relaxed);
      HashStr(&t->log_hash, "error");
      HashInt(&t->log_hash, static_cast<int64_t>(rs.status().code()));
      shared_->Check(false, StrFormat("t%d %s failed: %s", t->tenant,
                                      name.c_str(),
                                      rs.status().message().c_str()));
      return ResultSet{};
    }
    HashInt(&t->log_hash, static_cast<int64_t>(rs->affected));
    HashInt(&t->log_hash, static_cast<int64_t>(rs->rows.size()));
    for (const auto& row : rs->rows)
      for (const Value& v : row) HashStr(&t->log_hash, v.ToString());
    return *std::move(rs);
  }

  /// Executes several statements as ONE Connection::ExecuteBatch call —
  /// one round trip, one latch acquisition, one group-committed fsync —
  /// timing the whole batch as a single op of `cls`. The digest folds in
  /// every statement's outcome plus the final result set, so local and
  /// remote transports must agree batch-for-batch, not just op-for-op.
  BatchResult TimedBatch(TenantRt* t, ClientClass cls,
                         const std::string& name,
                         const std::vector<std::string>& scripts) {
    HashStr(&t->log_hash, name);
    auto t0 = std::chrono::steady_clock::now();
    Result<BatchResult> br = conn_.ExecuteBatch(scripts);
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    size_t ci = static_cast<size_t>(cls);
    shared_->latency[ci].Observe(ns);
    shared_->ops[ci].fetch_add(1, std::memory_order_relaxed);
    if (!br.ok()) {
      shared_->errors[ci].fetch_add(1, std::memory_order_relaxed);
      HashStr(&t->log_hash, "error");
      HashInt(&t->log_hash, static_cast<int64_t>(br.status().code()));
      shared_->Check(false, StrFormat("t%d %s failed: %s", t->tenant,
                                      name.c_str(),
                                      br.status().message().c_str()));
      return BatchResult{};
    }
    if (!br->all_ok()) {
      shared_->errors[ci].fetch_add(1, std::memory_order_relaxed);
      shared_->Check(false,
                     StrFormat("t%d %s statement %d failed: %s", t->tenant,
                               name.c_str(),
                               static_cast<int>(br->failed_index()),
                               br->first_error().message().c_str()));
    }
    HashInt(&t->log_hash, static_cast<int64_t>(br->statements.size()));
    for (const BatchStatementOutcome& st : br->statements) {
      HashInt(&t->log_hash, static_cast<int64_t>(st.status.code()));
      HashInt(&t->log_hash, static_cast<int64_t>(st.affected));
    }
    HashInt(&t->log_hash, static_cast<int64_t>(br->last.rows.size()));
    for (const auto& row : br->last.rows)
      for (const Value& v : row) HashStr(&t->log_hash, v.ToString());
    return *std::move(br);
  }

  // --- the Fig-1 client ops -----------------------------------------

  // Editor ops go through Connection::ExecuteBatch: an editor's "save"
  // is a handful of statements that must land together, and batching
  // them is what lets N editors share one group-committed fsync.
  void EditorOp(TenantRt* t) {
    switch (t->rng.Uniform(3)) {
      case 0: {  // E1: append a measure at the end of the movement
        int number = t->model->measures + t->appended_measures + 1;
        BatchResult br = TimedBatch(
            t, ClientClass::kEditor, "E1-append-measure",
            {StrFormat("range of v is MOVEMENT range of s is SCORE "
                       "append to MEASURE (number = %d, meter_num = 4, "
                       "meter_den = 4) under v in measure_in_movement "
                       "where v under s in movement_in_score and "
                       "s.title = \"%s\"",
                       number, t->model->title.c_str())});
        uint64_t affected =
            br.statements.empty() ? 0 : br.statements[0].affected;
        shared_->Check(affected == 1,
                       StrFormat("t%d E1 affected %llu != 1", t->tenant,
                                 (unsigned long long)affected));
        if (affected == 1) ++t->appended_measures;
        break;
      }
      case 1: {  // E2: annotate, then read the tag count back — one
                 // round trip, one WAL transaction.
        BatchResult br = TimedBatch(
            t, ClientClass::kEditor, "E2-annotate",
            {StrFormat("append to ANNOTATION (text = \"mark-%d-%d\", "
                       "xpos = %d)",
                       t->tenant, t->annotations, t->tenant),
             StrFormat("range of a is ANNOTATION retrieve "
                       "(c = count(a)) where a.xpos = %d",
                       t->tenant)});
        uint64_t affected =
            br.statements.empty() ? 0 : br.statements[0].affected;
        shared_->Check(affected == 1,
                       StrFormat("t%d E2 affected %llu != 1", t->tenant,
                                 (unsigned long long)affected));
        int64_t expect = static_cast<int64_t>(t->annotations) + 1;
        int64_t got = br.last.rows.empty() ? -1 : br.last.At(0, 0).AsInt();
        shared_->Check(br.all_ok() && got == expect,
                       StrFormat("t%d E2 count %lld != %lld", t->tenant,
                                 (long long)got, (long long)expect));
        if (affected == 1) ++t->annotations;
        break;
      }
      default: {  // E3: set a dynamic mark on every note of one pitch
        int key = t->model->keys[t->rng.Uniform(t->model->keys.size())];
        const char* mark = kDynamicMarks[t->rng.Uniform(
            std::size(kDynamicMarks))];
        BatchResult br = TimedBatch(
            t, ClientClass::kEditor, "E3-dynamics",
            {StrFormat("range of n is NOTE range of s is STAFF "
                       "replace n (dynamic = \"%s\") where "
                       "n under s in note_on_staff and s.number = %d "
                       "and n.midi_key = %d",
                       mark, t->tenant, key)});
        uint64_t affected =
            br.statements.empty() ? 0 : br.statements[0].affected;
        uint64_t expect =
            static_cast<uint64_t>(t->model->key_count.at(key));
        shared_->Check(affected == expect,
                       StrFormat("t%d E3 key %d affected %llu != %llu",
                                 t->tenant, key,
                                 (unsigned long long)affected,
                                 (unsigned long long)expect));
        break;
      }
    }
  }

  void AnalyzerOp(TenantRt* t) {
    switch (t->rng.Uniform(4)) {
      case 0: {  // A1: §5.6 before-count against a rare pitch
        int key = t->rare_keys[t->rng.Uniform(t->rare_keys.size())];
        ResultSet rs = Timed(
            t, ClientClass::kAnalyzer, "A1-before-count",
            StrFormat("range of n1, n2 is NOTE range of s is STAFF "
                      "retrieve (c = count(n1)) where "
                      "n1 before n2 in note_on_staff and "
                      "n2 under s in note_on_staff and s.number = %d "
                      "and n2.midi_key = %d",
                      t->tenant, key));
        // Expected: for each occurrence of `key` at position i (0-based
        // in staff order), i predecessors — summed over occurrences.
        int64_t expect = 0;
        for (size_t i = 0; i < t->model->keys.size(); ++i)
          if (t->model->keys[i] == key) expect += static_cast<int64_t>(i);
        int64_t got = rs.rows.empty() ? -1 : rs.At(0, 0).AsInt();
        shared_->Check(got == expect,
                       StrFormat("t%d A1 key %d count %lld != %lld",
                                 t->tenant, key, (long long)got,
                                 (long long)expect));
        break;
      }
      case 1: {  // A2: note count
        ResultSet rs = Timed(
            t, ClientClass::kAnalyzer, "A2-note-count",
            StrFormat("range of n is NOTE range of s is STAFF "
                      "retrieve (c = count(n)) where "
                      "n under s in note_on_staff and s.number = %d",
                      t->tenant));
        int64_t got = rs.rows.empty() ? -1 : rs.At(0, 0).AsInt();
        shared_->Check(got == t->model->notes,
                       StrFormat("t%d A2 count %lld != %d", t->tenant,
                                 (long long)got, t->model->notes));
        break;
      }
      case 2: {  // A3: degree histogram (grouped aggregate)
        ResultSet rs = Timed(
            t, ClientClass::kAnalyzer, "A3-degree-hist",
            StrFormat("range of n is NOTE range of s is STAFF "
                      "retrieve (c = count(n by n.degree)) where "
                      "n under s in note_on_staff and s.number = %d",
                      t->tenant));
        std::map<int, int> got;
        for (size_t r = 0; r < rs.rows.size(); ++r)
          got[static_cast<int>(rs.At(r, 0).AsInt())] =
              static_cast<int>(rs.At(r, 1).AsInt());
        shared_->Check(got == t->model->degree_hist,
                       StrFormat("t%d A3 histogram mismatch (%zu groups)",
                                 t->tenant, rs.rows.size()));
        break;
      }
      default: {  // A4: pitch range
        ResultSet rs = Timed(
            t, ClientClass::kAnalyzer, "A4-range",
            StrFormat("range of n is NOTE range of s is STAFF "
                      "retrieve (lo = min(n.midi_key), "
                      "hi = max(n.midi_key)) where "
                      "n under s in note_on_staff and s.number = %d",
                      t->tenant));
        int64_t lo = rs.rows.empty() ? -1 : rs.At(0, 0).AsInt();
        int64_t hi = rs.rows.empty() ? -1 : rs.At(0, 1).AsInt();
        shared_->Check(
            lo == t->model->min_key && hi == t->model->max_key,
            StrFormat("t%d A4 range [%lld,%lld] != [%d,%d]", t->tenant,
                      (long long)lo, (long long)hi, t->model->min_key,
                      t->model->max_key));
        break;
      }
    }
  }

  void TypesetterOp(TenantRt* t) {
    switch (t->rng.Uniform(2)) {
      case 0: {  // T1: page through every note of the score, in order
        ResultSet rs = Timed(
            t, ClientClass::kTypesetter, "T1-page-notes",
            StrFormat("range of n is NOTE range of s is STAFF "
                      "retrieve (n.midi_key, n.degree) where "
                      "n under s in note_on_staff and s.number = %d",
                      t->tenant));
        std::vector<int> got;
        got.reserve(rs.rows.size());
        for (size_t r = 0; r < rs.rows.size(); ++r)
          got.push_back(static_cast<int>(rs.At(r, 0).AsInt()));
        shared_->Check(HashKeys(got) == HashKeys(t->model->keys),
                       StrFormat("t%d T1 note sequence mismatch "
                                 "(%zu rows, %zu expected)",
                                 t->tenant, got.size(),
                                 t->model->keys.size()));
        break;
      }
      default: {  // T2: measure listing for pagination
        ResultSet rs = Timed(
            t, ClientClass::kTypesetter, "T2-measures",
            StrFormat("range of m is MEASURE range of v is MOVEMENT "
                      "range of s is SCORE "
                      "retrieve (m.number) where "
                      "m under v in measure_in_movement and "
                      "v under s in movement_in_score and "
                      "s.title = \"%s\"",
                      t->model->title.c_str()));
        size_t expect = static_cast<size_t>(t->model->measures +
                                            t->appended_measures);
        shared_->Check(rs.rows.size() == expect,
                       StrFormat("t%d T2 measures %zu != %zu", t->tenant,
                                 rs.rows.size(), expect));
        break;
      }
    }
  }

  void LibrarianOp(TenantRt* t) {
    switch (t->rng.Uniform(2)) {
      case 0: {  // L1: thematic-index probe by incipit (indexed)
        ResultSet rs = Timed(
            t, ClientClass::kLibrarian, "L1-incipit",
            StrFormat("range of e is CATALOG_ENTRY "
                      "retrieve (e.number) where e.incipit = \"%s\"",
                      t->model->incipit_text.c_str()));
        auto it = shared_->corpus->incipit_count.find(
            t->model->incipit_text);
        size_t expect =
            it == shared_->corpus->incipit_count.end()
                ? 0
                : static_cast<size_t>(it->second);
        shared_->Check(rs.rows.size() == expect,
                       StrFormat("t%d L1 incipit matches %zu != %zu",
                                 t->tenant, rs.rows.size(), expect));
        break;
      }
      default: {  // L2: index probe vs full scan must agree
        ResultSet by_number = Timed(
            t, ClientClass::kLibrarian, "L2-by-number",
            StrFormat("range of e is CATALOG_ENTRY "
                      "retrieve (e.title) where e.number = \"%s\"",
                      t->model->catalog_number.c_str()));
        ResultSet by_title = Timed(
            t, ClientClass::kLibrarian, "L2-by-title",
            StrFormat("range of e is CATALOG_ENTRY "
                      "retrieve (e.title) where e.title = \"%s\"",
                      t->model->title.c_str()));
        // At() yields a string Value; compare the raw text (ToString
        // would quote it).
        auto text = [](const ResultSet& rs) {
          if (rs.rows.size() != 1) return std::string();
          const Value& v = rs.At(0, 0);
          return v.type() == rel::ValueType::kString ? v.AsString()
                                                     : std::string();
        };
        bool same = !text(by_number).empty() &&
                    text(by_number) == text(by_title) &&
                    text(by_number) == t->model->title;
        shared_->Check(same,
                       StrFormat("t%d L2 index/scan disagree (%zu vs %zu "
                                 "rows)",
                                 t->tenant, by_number.rows.size(),
                                 by_title.rows.size()));
        break;
      }
    }
  }

  /// The expensive cross-checks, run every oracle_every ops per tenant.
  void OracleBattery(TenantRt* t) {
    {  // annotation count via the xpos index
      ResultSet rs = Timed(
          t, ClientClass::kAnalyzer, "B1-annotations",
          StrFormat("range of a is ANNOTATION "
                    "retrieve (c = count(a)) where a.xpos = %d",
                    t->tenant));
      int64_t got = rs.rows.empty() ? -1 : rs.At(0, 0).AsInt();
      shared_->Check(got == t->annotations,
                     StrFormat("t%d B1 annotations %lld != %d", t->tenant,
                               (long long)got, t->annotations));
    }
    {  // measure numbers are exactly 1..N after editor appends
      ResultSet rs = Timed(
          t, ClientClass::kTypesetter, "B2-measure-seq",
          StrFormat("range of m is MEASURE range of v is MOVEMENT "
                    "range of s is SCORE "
                    "retrieve (m.number) where "
                    "m under v in measure_in_movement and "
                    "v under s in movement_in_score and s.title = \"%s\"",
                    t->model->title.c_str()));
      std::vector<int> numbers;
      for (size_t r = 0; r < rs.rows.size(); ++r)
        numbers.push_back(static_cast<int>(rs.At(r, 0).AsInt()));
      std::sort(numbers.begin(), numbers.end());
      bool ok = static_cast<int>(numbers.size()) ==
                t->model->measures + t->appended_measures;
      for (size_t i = 0; ok && i < numbers.size(); ++i)
        ok = numbers[i] == static_cast<int>(i) + 1;
      shared_->Check(ok, StrFormat("t%d B2 measure numbers not 1..%d",
                                   t->tenant,
                                   t->model->measures +
                                       t->appended_measures));
    }
  }

  Status RunOneOp(TenantRt* t) {
    switch (PickClass(&t->rng)) {
      case ClientClass::kEditor: EditorOp(t); break;
      case ClientClass::kAnalyzer: AnalyzerOp(t); break;
      case ClientClass::kTypesetter: TypesetterOp(t); break;
      case ClientClass::kLibrarian: LibrarianOp(t); break;
    }
    ++t->ops_done;
    if (shared_->oracle() &&
        t->ops_done % shared_->spec->oracle_every == 0)
      OracleBattery(t);
    return Status::OK();
  }

  Shared* shared_;
  Connection conn_;
  std::vector<TenantRt*> tenants_;
};

uint64_t OracleStateHash(const TenantRt& t) {
  uint64_t h = kFnvOffset;
  HashInt(&h, t.tenant);
  HashInt(&h, t.model->notes);
  HashInt(&h, t.model->measures);
  HashInt(&h, t.appended_measures);
  HashInt(&h, t.annotations);
  HashInt(&h, static_cast<int64_t>(HashKeys(t.model->keys)));
  for (const auto& [deg, n] : t.model->degree_hist) {
    HashInt(&h, deg);
    HashInt(&h, n);
  }
  return h;
}

}  // namespace

Result<Report> RunWorkload(const WorkloadSpec& spec, corpus::Corpus* corpus,
                           const ConnectionFactory& factory) {
  if (corpus == nullptr || corpus->tenants.empty())
    return InvalidArgument("workload needs a loaded corpus");
  if (spec.ops_per_tenant < 0)
    return InvalidArgument("ops_per_tenant must be >= 0");

  const int tenant_count = static_cast<int>(corpus->tenants.size());
  const int threads =
      std::clamp(spec.threads, 1, std::min(tenant_count, 64));

  Shared shared;
  shared.spec = &spec;
  shared.corpus = corpus;

  // Per-tenant runtimes, seeded independently of thread placement.
  std::vector<TenantRt> rts(static_cast<size_t>(tenant_count));
  for (int i = 0; i < tenant_count; ++i) {
    TenantRt& t = rts[static_cast<size_t>(i)];
    t.model = &corpus->tenants[static_cast<size_t>(i)];
    t.tenant = t.model->tenant;
    t.rng = Rng(spec.seed * 0x9E3779B97F4A7C15ull +
                static_cast<uint64_t>(t.tenant + 1) * 0x94D049BB133111EBull);
    for (const auto& [key, n] : t.model->key_count)
      if (n <= 2) t.rare_keys.push_back(key);
    if (t.rare_keys.empty()) t.rare_keys.push_back(t.model->min_key);
  }

  // One connection per worker, created up front so factory failures
  // surface before any ops run.
  std::vector<std::unique_ptr<Worker>> workers;
  for (int w = 0; w < threads; ++w) {
    MDM_ASSIGN_OR_RETURN(Connection conn, factory());
    std::vector<TenantRt*> mine;
    for (int i = w; i < tenant_count; i += threads)
      mine.push_back(&rts[static_cast<size_t>(i)]);
    workers.push_back(std::make_unique<Worker>(&shared, std::move(conn),
                                               std::move(mine)));
  }

  auto t0 = std::chrono::steady_clock::now();
  std::vector<Status> worker_status(static_cast<size_t>(threads),
                                    Status::OK());
  if (threads == 1) {
    worker_status[0] = workers[0]->Run();
  } else {
    std::vector<std::thread> pool;
    for (int w = 0; w < threads; ++w)
      pool.emplace_back([&, w] {
        worker_status[static_cast<size_t>(w)] = workers[static_cast<size_t>(w)]->Run();
      });
    for (std::thread& th : pool) th.join();
  }
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const Status& s : worker_status) MDM_RETURN_IF_ERROR(s);

  Report report;
  report.wall_seconds = wall;
  for (int c = 0; c < kClassCount; ++c) {
    ClassStats& cs = report.per_class[c];
    cs.ops = shared.ops[c].load(std::memory_order_relaxed);
    cs.errors = shared.errors[c].load(std::memory_order_relaxed);
    cs.qps = wall > 0 ? static_cast<double>(cs.ops) / wall : 0;
    cs.p50_us =
        obs::HistogramPercentile(shared.latency[c], 0.50) / 1000.0;
    cs.p99_us =
        obs::HistogramPercentile(shared.latency[c], 0.99) / 1000.0;
    report.total_ops += cs.ops;
    report.total_errors += cs.errors;
    obs::Registry::Global()
        ->GetCounter(StrFormat("mdm_workload_ops_total{class=\"%s\"}",
                               ClassName(static_cast<ClientClass>(c))),
                     "workload driver operations")
        ->Inc(cs.ops);
  }
  report.oracle_checks =
      shared.oracle_checks.load(std::memory_order_relaxed);
  report.oracle_divergences =
      shared.oracle_divergences.load(std::memory_order_relaxed);
  report.divergences = std::move(shared.divergences);
  // Order-independent combination: per-tenant digests are deterministic
  // and tenants are disjoint, so any thread placement sums identically.
  for (const TenantRt& t : rts) {
    report.op_log_hash += t.log_hash;
    report.oracle_hash += OracleStateHash(t);
  }
  return report;
}

}  // namespace mdm::workload

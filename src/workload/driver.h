#ifndef MDM_WORKLOAD_DRIVER_H_
#define MDM_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/loader.h"
#include "net/connection.h"

namespace mdm::workload {

/// The paper's Fig-1 client classes: who is talking to the MDM.
enum class ClientClass { kEditor = 0, kAnalyzer, kTypesetter, kLibrarian };
inline constexpr int kClassCount = 4;
const char* ClassName(ClientClass c);

/// Deterministic multi-tenant workload over a loaded corpus. Each
/// tenant (score) gets its own seeded RNG and a fully sequential op
/// stream; tenants are partitioned across threads (tenant % threads),
/// so the per-tenant stream — and therefore the op-log and oracle
/// hashes, which combine per-tenant digests order-independently — is
/// identical for any thread count. See docs/WORKLOADS.md.
struct WorkloadSpec {
  uint64_t seed = 1;
  int threads = 1;
  /// Ops issued per tenant (closed loop: next op starts when the
  /// previous reply lands). Fixed counts, not wall-clock, so runs are
  /// replayable.
  int ops_per_tenant = 32;
  /// Relative Fig-1 mix weights.
  int editor_weight = 2;
  int analyzer_weight = 3;
  int typesetter_weight = 3;
  int librarian_weight = 2;
  /// 0 disables the oracle. N > 0: every op's count/affected result is
  /// cross-checked against the tenant model, and every N ops per tenant
  /// the full battery runs (histogram, orderings, index-vs-scan
  /// equivalence, annotation count).
  int oracle_every = 0;
  /// At most this many divergence descriptions are kept in the report.
  int max_divergences = 16;
};

/// Produces one Connection per worker thread. Must be callable from
/// multiple threads concurrently (each call from a distinct worker).
using ConnectionFactory = std::function<Result<Connection>()>;

struct ClassStats {
  uint64_t ops = 0;
  uint64_t errors = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

struct Report {
  ClassStats per_class[kClassCount];
  uint64_t total_ops = 0;
  uint64_t total_errors = 0;
  uint64_t oracle_checks = 0;
  uint64_t oracle_divergences = 0;
  std::vector<std::string> divergences;  // first max_divergences examples
  /// FNV-1a digest of every op (name, args, result), XOR-combined
  /// across tenants: identical for identical seeds, any thread count.
  uint64_t op_log_hash = 0;
  /// Digest of the final per-tenant oracle models.
  uint64_t oracle_hash = 0;
  double wall_seconds = 0;
};

/// Replays the client mix against connections from `factory`. The
/// corpus is mutated only in the driver's own bookkeeping (appended
/// measures, annotation counts); the database mutations go through the
/// connections. Returns an error only for setup failures (factory,
/// empty corpus); per-op errors are counted in the report.
Result<Report> RunWorkload(const WorkloadSpec& spec, corpus::Corpus* corpus,
                           const ConnectionFactory& factory);

}  // namespace mdm::workload

#endif  // MDM_WORKLOAD_DRIVER_H_

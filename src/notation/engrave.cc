#include "notation/engrave.h"

#include <map>

#include "cmn/schema.h"
#include "cmn/temporal.h"
#include "common/strings.h"

namespace mdm::notation {

using er::EntityId;

Result<std::string> EngraveScorePostScript(er::Database* db, EntityId score,
                                           const EngraveOptions& options) {
  MDM_ASSIGN_OR_RETURN(std::vector<cmn::MeasureSpan> table,
                       cmn::BuildMeasureTable(*db, score));
  const double space = options.staff_space;
  const double half = space / 2.0;
  Rational total(0);
  for (const cmn::MeasureSpan& span : table)
    total = span.start + span.length;
  double width = options.left_margin * 2 + total.ToDouble() * options.beat_width;
  double staff_top = options.top_margin;

  std::string ps;
  ps += StrFormat("%% engraved score (%zu measures)\n", table.size());
  // Five staff lines. Degree 1 (bottom line) sits at y = staff_top +
  // 4*space; degrees increase upward by half a space.
  for (int line = 0; line < 5; ++line) {
    double y = staff_top + line * space;
    ps += StrFormat("newpath %.1f %.1f moveto %.1f %.1f lineto stroke\n",
                    options.left_margin, y, width - options.left_margin, y);
  }
  auto degree_y = [&](int degree) {
    return staff_top + 4 * space - (degree - 1) * half;
  };
  auto beat_x = [&](const Rational& beats) {
    return options.left_margin + 2.5 * space + 10.0 +
           beats.ToDouble() * options.beat_width;
  };
  // Clef glyph: a stylized spiral-and-stem for G, two dots and a curve
  // for F, drawn from the staff's CLEF entity when the score has one.
  {
    bool drew_clef = false;
    (void)db->ForEachEntity("CLEF", [&](EntityId clef) {
      auto kind = db->GetAttribute(clef, "kind");
      char c = (kind.ok() && !kind->is_null() && !kind->AsString().empty())
                   ? kind->AsString()[0]
                   : 'G';
      double x = options.left_margin + space;
      double mid = staff_top + 2 * space;
      if (c == 'F') {
        // F clef: an arc starting at the F line plus two dots.
        ps += StrFormat("newpath %.1f %.1f %.1f 40 320 arc stroke\n", x,
                        mid + space, space);
        ps += StrFormat("newpath %.1f %.1f %.1f 0 360 arc fill\n",
                        x + 1.6 * space, mid + 1.4 * space, half * 0.3);
        ps += StrFormat("newpath %.1f %.1f %.1f 0 360 arc fill\n",
                        x + 1.6 * space, mid + 0.6 * space, half * 0.3);
      } else {
        // G clef: a vertical stem through the staff with a curl around
        // the G line.
        ps += StrFormat("newpath %.1f %.1f moveto %.1f %.1f lineto stroke\n",
                        x, staff_top - space, x, staff_top + 5 * space);
        ps += StrFormat("newpath %.1f %.1f %.1f 0 360 arc stroke\n", x,
                        staff_top + 3 * space, space * 0.8);
      }
      drew_clef = true;
      return false;  // first clef only
    });
    (void)drew_clef;
  }
  // Key signature: one sharp/flat glyph per accidental at its
  // conventional degree.
  {
    (void)db->ForEachEntity("KEY_SIGNATURE", [&](EntityId keysig) {
      auto sharps = db->GetAttribute(keysig, "sharps");
      int n = (sharps.ok() && !sharps->is_null())
                  ? static_cast<int>(sharps->AsInt())
                  : 0;
      // Degrees of the sharp (F C G D A E B) and flat (B E A D G C F)
      // positions in treble clef.
      static const int kSharpDegrees[7] = {9, 6, 10, 7, 4, 8, 5};
      static const int kFlatDegrees[7] = {5, 8, 4, 7, 3, 6, 2};
      double x0 = options.left_margin + 3 * space;
      int count = std::min(7, std::abs(n));
      for (int i = 0; i < count; ++i) {
        int degree = n > 0 ? kSharpDegrees[i] : kFlatDegrees[i];
        double x = x0 + i * half;
        double y = degree_y(degree);
        if (n > 0) {
          // Sharp: two crossed strokes.
          ps += StrFormat(
              "newpath %.1f %.1f moveto %.1f %.1f lineto stroke\n",
              x - half * 0.4, y - half * 0.5, x + half * 0.4,
              y + half * 0.5);
          ps += StrFormat(
              "newpath %.1f %.1f moveto %.1f %.1f lineto stroke\n",
              x - half * 0.4, y + half * 0.5, x + half * 0.4,
              y - half * 0.5);
        } else {
          // Flat: stem plus a small bowl.
          ps += StrFormat(
              "newpath %.1f %.1f moveto %.1f %.1f lineto stroke\n", x,
              y - space, x, y + half * 0.5);
          ps += StrFormat("newpath %.1f %.1f %.1f 270 90 arc stroke\n", x,
                          y + half * 0.1, half * 0.45);
        }
      }
      return false;  // first signature only
    });
  }
  // Barlines at measure boundaries.
  for (const cmn::MeasureSpan& span : table) {
    double x = beat_x(span.start + span.length) - 6.0;
    ps += StrFormat("newpath %.1f %.1f moveto %.1f %.1f lineto stroke\n", x,
                    staff_top, x, staff_top + 4 * space);
  }
  // Notes. Remember each chord's head position for slur drawing.
  std::map<EntityId, std::pair<double, double>> chord_pos;
  for (const cmn::MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(cmn::kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(rel::Value beat, db->GetAttribute(sync, "beat"));
      Rational onset = span.start +
                       (beat.is_null() ? Rational(0) : beat.AsRational());
      double x = beat_x(onset);
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(cmn::kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(rel::Value stem_dir,
                             db->GetAttribute(chord, "stem_direction"));
        int direction = stem_dir.is_null()
                            ? 1
                            : static_cast<int>(stem_dir.AsInt());
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(cmn::kNoteInChord, chord));
        double extreme_y = 0;
        bool first = true;
        for (EntityId note : notes) {
          MDM_ASSIGN_OR_RETURN(rel::Value deg,
                               db->GetAttribute(note, "degree"));
          int degree = deg.is_null() ? 5 : static_cast<int>(deg.AsInt());
          double y = degree_y(degree);
          // Filled note head (a small circle via arc).
          ps += StrFormat("newpath %.1f %.1f %.1f 0 360 arc fill\n", x, y,
                          half * 0.9);
          if (first || (direction > 0 ? y < extreme_y : y > extreme_y))
            extreme_y = y;
          first = false;
        }
        if (!notes.empty()) {
          // One stem per chord from the extreme note head.
          double stem_len = 3.0 * space * (direction > 0 ? -1.0 : 1.0);
          double sx = x + (direction > 0 ? half * 0.9 : -half * 0.9);
          ps += StrFormat(
              "newpath %.1f %.1f moveto 0 %.1f rlineto stroke\n", sx,
              extreme_y, stem_len);
          chord_pos[chord] = {x, extreme_y};
        }
      }
    }
  }
  // Slur arcs (fig 15's phrasing groups): a Bezier from the first to
  // the last member chord of every GROUP with function "slur".
  if (db->schema().FindEntityType("GROUP") != nullptr) {
    Status inner;
    MDM_RETURN_IF_ERROR(db->ForEachEntity("GROUP", [&](EntityId group) {
      auto function = db->GetAttribute(group, "function");
      if (!function.ok() || function->is_null() ||
          !EqualsIgnoreCase(function->AsString(), "slur"))
        return true;
      auto members = db->Children(cmn::kGroupSeq, group);
      if (!members.ok() || members->size() < 2) return true;
      auto first = chord_pos.find(members->front());
      auto last = chord_pos.find(members->back());
      if (first == chord_pos.end() || last == chord_pos.end()) return true;
      double x0 = first->second.first, y0 = first->second.second - half;
      double x1 = last->second.first, y1 = last->second.second - half;
      double lift = -1.5 * space;  // arch above the heads
      ps += StrFormat(
          "newpath %.1f %.1f moveto %.1f %.1f %.1f %.1f %.1f %.1f "
          "curveto stroke\n",
          x0, y0, x0 + (x1 - x0) / 3, y0 + lift, x0 + 2 * (x1 - x0) / 3,
          y1 + lift, x1, y1);
      return true;
    }));
    MDM_RETURN_IF_ERROR(inner);
  }
  return ps;
}

Result<std::string> EngraveScoreSvg(er::Database* db, EntityId score,
                                    const EngraveOptions& options) {
  MDM_ASSIGN_OR_RETURN(std::string ps,
                       EngraveScorePostScript(db, score, options));
  graphics::PostScriptInterp interp;
  MDM_RETURN_IF_ERROR(interp.Run(ps));
  return interp.Take().ToSvg();
}

}  // namespace mdm::notation

#ifndef MDM_NOTATION_ENGRAVE_H_
#define MDM_NOTATION_ENGRAVE_H_

#include <string>

#include "common/result.h"
#include "er/database.h"
#include "graphics/postscript.h"

namespace mdm::notation {

/// Layout parameters for the engraver.
struct EngraveOptions {
  double staff_space = 8.0;    // distance between staff lines
  double beat_width = 48.0;    // horizontal pixels per quarter note
  double left_margin = 40.0;
  double top_margin = 40.0;
};

/// A minimal CMN engraver (the paper's music-typesetter client, §2):
/// renders one score — staff lines, barlines, filled note heads placed
/// by staff degree, stems following the chord's stem_direction — by
/// emitting a PostScript-dialect program and interpreting it through
/// mdm::graphics. Returns the SVG document.
///
/// The note's vertical position comes from its `degree` attribute (the
/// graphical aspect); notes without a degree sit on the middle line.
Result<std::string> EngraveScoreSvg(er::Database* db, er::EntityId score,
                                    const EngraveOptions& options = {});

/// The generated PostScript program itself (exposed for tests and for
/// clients that want to store it as a GraphDef).
Result<std::string> EngraveScorePostScript(er::Database* db,
                                           er::EntityId score,
                                           const EngraveOptions& options = {});

}  // namespace mdm::notation

#endif  // MDM_NOTATION_ENGRAVE_H_

#ifndef MDM_NOTATION_PIANO_ROLL_H_
#define MDM_NOTATION_PIANO_ROLL_H_

#include <string>
#include <vector>

#include "cmn/temporal.h"
#include "common/result.h"

namespace mdm::notation {

/// Options for piano-roll rendering (§4.5, fig 3): "time progressing to
/// the left along the x-axis, and pitch (usually quantized by
/// semitones) increasing upward along the y-axis. Each note is
/// represented by a black rectangle."
struct PianoRollOptions {
  double seconds_per_column = 0.125;  // ASCII time resolution
  double pixels_per_second = 80.0;    // SVG scale
  double pixels_per_semitone = 4.0;
  /// MIDI keys of notes to shade grey instead of black — fig 3 shades
  /// the fugue entrances. Matched by source_note id.
  std::vector<er::EntityId> highlighted_notes;
};

/// ASCII piano roll: one row per semitone between the lowest and
/// highest sounding key, '#' for note cells ('=' for highlighted
/// notes), '.' for silence. Rows are emitted top (high pitch) first.
std::string AsciiPianoRoll(const std::vector<cmn::PerformedNote>& notes,
                           const PianoRollOptions& options = {});

/// SVG piano roll: one rectangle per performed note, highlighted notes
/// in grey (fig 3's shaded entrances).
std::string SvgPianoRoll(const std::vector<cmn::PerformedNote>& notes,
                         const PianoRollOptions& options = {});

}  // namespace mdm::notation

#endif  // MDM_NOTATION_PIANO_ROLL_H_

#include "notation/piano_roll.h"

#include <algorithm>
#include <cmath>

#include "cmn/pitch.h"
#include "common/strings.h"

namespace mdm::notation {

namespace {

bool IsHighlighted(const PianoRollOptions& options,
                   const cmn::PerformedNote& note) {
  return std::find(options.highlighted_notes.begin(),
                   options.highlighted_notes.end(),
                   note.source_note) != options.highlighted_notes.end();
}

}  // namespace

std::string AsciiPianoRoll(const std::vector<cmn::PerformedNote>& notes,
                           const PianoRollOptions& options) {
  if (notes.empty()) return "(empty piano roll)\n";
  int lo = 127, hi = 0;
  double end = 0;
  for (const cmn::PerformedNote& n : notes) {
    lo = std::min(lo, n.midi_key);
    hi = std::max(hi, n.midi_key);
    end = std::max(end, n.end_seconds);
  }
  int cols = static_cast<int>(std::ceil(end / options.seconds_per_column));
  cols = std::max(cols, 1);
  std::vector<std::string> grid(hi - lo + 1, std::string(cols, '.'));
  for (const cmn::PerformedNote& n : notes) {
    int row = n.midi_key - lo;
    int c0 = static_cast<int>(n.start_seconds / options.seconds_per_column);
    int c1 = static_cast<int>(
        std::ceil(n.end_seconds / options.seconds_per_column));
    char mark = IsHighlighted(options, n) ? '=' : '#';
    for (int c = std::max(0, c0); c < std::min(cols, c1); ++c)
      grid[row][c] = mark;
  }
  std::string out;
  for (int row = hi - lo; row >= 0; --row) {
    cmn::Pitch p;
    int key = lo + row;
    // Spell as the natural-or-sharp name for the axis label.
    static const int kStepOf[12] = {0, 0, 1, 1, 2, 3, 3, 4, 4, 5, 5, 6};
    static const int kAlterOf[12] = {0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1, 0};
    p.octave = key / 12 - 1;
    p.step = kStepOf[key % 12];
    p.alter = kAlterOf[key % 12];
    out += StrFormat("%4s |%s|\n", p.Name().c_str(), grid[row].c_str());
  }
  out += StrFormat("      time -> (%.3f s per column)\n",
                   options.seconds_per_column);
  return out;
}

std::string SvgPianoRoll(const std::vector<cmn::PerformedNote>& notes,
                         const PianoRollOptions& options) {
  int lo = 127, hi = 0;
  double end = 0;
  for (const cmn::PerformedNote& n : notes) {
    lo = std::min(lo, n.midi_key);
    hi = std::max(hi, n.midi_key);
    end = std::max(end, n.end_seconds);
  }
  if (notes.empty()) {
    lo = 60;
    hi = 60;
    end = 1;
  }
  double width = end * options.pixels_per_second;
  double height = (hi - lo + 2) * options.pixels_per_semitone;
  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %.1f %.1f\">\n",
      width + 2, height + 2);
  for (const cmn::PerformedNote& n : notes) {
    double x = n.start_seconds * options.pixels_per_second;
    double w = (n.end_seconds - n.start_seconds) * options.pixels_per_second;
    double y = (hi - n.midi_key) * options.pixels_per_semitone;
    const char* fill = IsHighlighted(options, n) ? "#999999" : "#000000";
    svg += StrFormat(
        "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"%s\"/>\n",
        x, y, std::max(w, 1.0), options.pixels_per_semitone, fill);
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace mdm::notation

#include "common/failpoint.h"

namespace mdm {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "None";
    case FaultKind::kError: return "Error";
    case FaultKind::kShortWrite: return "ShortWrite";
    case FaultKind::kTornWrite: return "TornWrite";
    case FaultKind::kPowerCut: return "PowerCut";
    case FaultKind::kCorrupt: return "Corrupt";
    case FaultKind::kDisconnect: return "Disconnect";
    case FaultKind::kDelay: return "Delay";
    case FaultKind::kDrop: return "Drop";
  }
  return "?";
}

Failpoint Failpoint::FailNth(uint64_t nth, FaultKind kind,
                             double keep_fraction, uint32_t delay_ms) {
  Failpoint fp;
  fp.mode_ = Mode::kNth;
  fp.nth_ = nth;
  fp.kind_ = kind;
  fp.keep_fraction_ = keep_fraction;
  fp.delay_ms_ = delay_ms;
  return fp;
}

Failpoint Failpoint::FailWithProbability(double p, uint64_t seed,
                                         FaultKind kind,
                                         double keep_fraction,
                                         uint32_t delay_ms) {
  Failpoint fp;
  fp.mode_ = Mode::kProbability;
  fp.probability_ = p;
  fp.kind_ = kind;
  fp.keep_fraction_ = keep_fraction;
  fp.delay_ms_ = delay_ms;
  fp.rng_ = Rng(seed);
  return fp;
}

FaultDecision Failpoint::Eval() {
  if (mode_ == Mode::kOff) return {};
  ++hits_;
  bool fire = false;
  switch (mode_) {
    case Mode::kOff:
      break;
    case Mode::kNth:
      fire = hits_ == nth_;
      break;
    case Mode::kProbability:
      fire = rng_.Bernoulli(probability_);
      break;
  }
  if (!fire) return {};
  ++fires_;
  return {kind_, keep_fraction_, delay_ms_};
}

FailpointRegistry* FailpointRegistry::Global() {
  static FailpointRegistry registry;
  return &registry;
}

void FailpointRegistry::Arm(const std::string& name, Failpoint fp) {
  points_[name] = fp;
}

void FailpointRegistry::Disarm(const std::string& name) {
  points_.erase(name);
}

void FailpointRegistry::Reset() {
  points_.clear();
  io_count_ = 0;
  cut_at_ = 0;
  cut_keep_ = 0.5;
  power_out_ = false;
}

void FailpointRegistry::ArmPowerCutAtIo(uint64_t nth_io,
                                        double keep_fraction) {
  cut_at_ = nth_io;
  cut_keep_ = keep_fraction;
  power_out_ = false;
}

FaultDecision FailpointRegistry::Eval(const std::string& name) {
  if (!armed()) return {};
  ++io_count_;
  if (power_out_) return {FaultKind::kError, 0.0};
  if (cut_at_ != 0 && io_count_ == cut_at_) {
    power_out_ = true;
    return {FaultKind::kPowerCut, cut_keep_};
  }
  auto it = points_.find(name);
  if (it == points_.end()) return {};
  FaultDecision d = it->second.Eval();
  if (d.kind == FaultKind::kPowerCut) power_out_ = true;
  return d;
}

}  // namespace mdm

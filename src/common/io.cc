#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include "obs/span.h"

namespace mdm {

Status SyncStream(std::FILE* f, const std::string& what) {
  obs::Span span("storage.fsync");
  if (std::fflush(f) != 0) return IoError("fflush failed for " + what);
  int fd = fileno(f);
  if (fd < 0) return IoError("fileno failed for " + what);
  if (::fsync(fd) != 0) return IoError("fsync failed for " + what);
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("cannot open directory " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync failed for directory " + dir);
  return Status::OK();
}

}  // namespace mdm

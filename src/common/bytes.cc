#include "common/bytes.h"

#include <cstring>

namespace mdm {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

Status ByteReader::GetU8(uint8_t* v) {
  if (pos_ + 1 > size_) return Corruption("byte reader exhausted (u8)");
  *v = data_[pos_++];
  return Status::OK();
}

Status ByteReader::GetU16(uint16_t* v) {
  if (pos_ + 2 > size_) return Corruption("byte reader exhausted (u16)");
  *v = static_cast<uint16_t>(data_[pos_]) |
       static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* v) {
  if (pos_ + 4 > size_) return Corruption("byte reader exhausted (u32)");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* v) {
  if (pos_ + 8 > size_) return Corruption("byte reader exhausted (u64)");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetI64(int64_t* v) {
  uint64_t u;
  MDM_RETURN_IF_ERROR(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status ByteReader::GetF64(double* v) {
  uint64_t bits;
  MDM_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status ByteReader::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) return Corruption("varint too long");
    uint8_t b = 0;
    MDM_RETURN_IF_ERROR(GetU8(&b));
    out |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *v = out;
  return Status::OK();
}

Status ByteReader::GetString(std::string* s) {
  uint64_t n;
  MDM_RETURN_IF_ERROR(GetVarint(&n));
  if (pos_ + n > size_) return Corruption("byte reader exhausted (string)");
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return Status::OK();
}

namespace {

// Table-driven CRC32; table built on first use (function-local static,
// initialization is thread-safe in C++11+).
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace mdm

#ifndef MDM_COMMON_RATIONAL_H_
#define MDM_COMMON_RATIONAL_H_

#include <cstdint>
#include <string>

namespace mdm {

/// Exact rational arithmetic.
///
/// Score time in CMN is measured in rhythmic units (beats); durations are
/// ratios like 1/4, 3/8, or 1/6 (triplet eighth). Floating point cannot
/// align syncs exactly (1/3 + 1/3 + 1/3 != 1.0 in binary floating point),
/// so all score-time arithmetic in MDM uses Rational.
///
/// Always kept normalized: gcd(num, den) == 1, den > 0. Zero is 0/1.
class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(int64_t n) : num_(n), den_(1) {}  // NOLINT: implicit
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }
  bool IsInteger() const { return den_ == 1; }

  double ToDouble() const { return static_cast<double>(num_) / den_; }
  /// "3/4", or "3" when the denominator is 1.
  std::string ToString() const;

  /// Parses "n", "n/d" (with optional leading '-'). Returns false on
  /// malformed input or a zero denominator.
  static bool Parse(const std::string& text, Rational* out);

  /// Largest integer <= this value.
  int64_t Floor() const;

  Rational operator-() const { return Rational(-num_, den_); }
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division by zero is the caller's bug; asserts in debug builds and
  /// returns zero in release builds.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return b < a;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

 private:
  void Normalize();

  int64_t num_;
  int64_t den_;
};

}  // namespace mdm

#endif  // MDM_COMMON_RATIONAL_H_

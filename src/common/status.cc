#include "common/status.h"

namespace mdm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kConstraintViolation: return "ConstraintViolation";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::OK: return "OK";
    case ErrorCode::NOT_FOUND: return "NOT_FOUND";
    case ErrorCode::INVALID_ARGUMENT: return "INVALID_ARGUMENT";
    case ErrorCode::CORRUPTION: return "CORRUPTION";
    case ErrorCode::RESOURCE_EXHAUSTED: return "RESOURCE_EXHAUSTED";
    case ErrorCode::DEADLINE_EXCEEDED: return "DEADLINE_EXCEEDED";
    case ErrorCode::UNAVAILABLE: return "UNAVAILABLE";
    case ErrorCode::INTERNAL: return "INTERNAL";
  }
  return "INTERNAL";
}

ErrorCode CanonicalCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return ErrorCode::OK;
    case StatusCode::kNotFound:
      return ErrorCode::NOT_FOUND;
    case StatusCode::kInvalidArgument:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kConstraintViolation:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
      return ErrorCode::INVALID_ARGUMENT;
    case StatusCode::kCorruption:
      return ErrorCode::CORRUPTION;
    case StatusCode::kResourceExhausted:
      return ErrorCode::RESOURCE_EXHAUSTED;
    case StatusCode::kDeadlineExceeded:
      return ErrorCode::DEADLINE_EXCEEDED;
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
      return ErrorCode::UNAVAILABLE;
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
      return ErrorCode::INTERNAL;
  }
  return ErrorCode::INTERNAL;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Corruption(std::string message) {
  return Status(StatusCode::kCorruption, std::move(message));
}
Status ConstraintViolation(std::string message) {
  return Status(StatusCode::kConstraintViolation, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace mdm

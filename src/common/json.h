#ifndef MDM_COMMON_JSON_H_
#define MDM_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace mdm::json {

/// A parsed JSON value. This is the *reading* half only — the repo's
/// JSON producers (obs renderers, BENCH_JSON lines, the slow-query log)
/// each format their own output; this parser exists so tests and the
/// bench smoke checker can validate what they emit without a third-party
/// dependency.
///
/// Numbers are kept as doubles (every BENCH_JSON number fits); object
/// member order is not preserved (members live in a std::map).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  /// Object member by key, or nullptr when absent (or not an object).
  const Value* Find(const std::string& key) const;
  /// True when the object has `key` with the given kind.
  bool Has(const std::string& key, Kind kind) const;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double n);
  static Value String(std::string s);
  static Value Array(std::vector<Value> a);
  static Value Object(std::map<std::string, Value> o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document (trailing whitespace allowed, anything else
/// after the document is a kParseError). Depth is bounded (64) so
/// adversarial input cannot blow the stack.
Result<Value> Parse(const std::string& text);

}  // namespace mdm::json

#endif  // MDM_COMMON_JSON_H_

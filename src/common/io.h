#ifndef MDM_COMMON_IO_H_
#define MDM_COMMON_IO_H_

#include <cstdio>
#include <string>

#include "common/status.h"

namespace mdm {

/// Pushes a stream's buffered bytes all the way to durable storage:
/// fflush to the kernel, then fsync the file descriptor. `what` names
/// the file in error messages.
Status SyncStream(std::FILE* f, const std::string& what);

/// fsyncs the directory containing `path`, making a just-completed
/// rename or file creation in that directory durable.
Status SyncParentDir(const std::string& path);

}  // namespace mdm

#endif  // MDM_COMMON_IO_H_

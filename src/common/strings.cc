#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mdm {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t b = 0;
  while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b])))
    ++b;
  size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

std::string AsciiUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mdm

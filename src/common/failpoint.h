#ifndef MDM_COMMON_FAILPOINT_H_
#define MDM_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/random.h"

namespace mdm {

/// What an armed failpoint does to the I/O it intercepts.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The operation fails with IoError; no bytes reach the medium.
  kError,
  /// A prefix of the bytes reaches the medium, then the operation
  /// reports failure (a short write the caller observes).
  kShortWrite,
  /// A prefix of the bytes reaches the medium but the operation reports
  /// success — the silent tear a power cut leaves behind, detectable
  /// only by checksums.
  kTornWrite,
  /// Power dies mid-operation: the bytes in flight tear, and every
  /// subsequent I/O through the same registry fails until Reset.
  kPowerCut,
  /// Network kinds (net::FaultInjectingTransport; no-ops for disk
  /// sinks). kCorrupt: the bytes in flight are delivered with one byte
  /// flipped but the operation reports success — the wire analog of a
  /// torn write, detectable only by the frame CRC. kDisconnect: the
  /// connection hard-closes before the operation touches the wire (a
  /// peer death / RST). kDelay: the operation completes intact after a
  /// stall of FaultDecision::delay_ms. kDrop: the bytes in flight are
  /// silently swallowed and the operation reports success — the peer
  /// waits forever and only a deadline rescues the caller.
  kCorrupt,
  kDisconnect,
  kDelay,
  kDrop,
};

const char* FaultKindName(FaultKind kind);

/// The verdict a call site gets back from Failpoint/FailpointRegistry.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// For kShortWrite / kTornWrite / kPowerCut: fraction of the bytes in
  /// flight that persist (rounded down per call site).
  double keep_fraction = 1.0;
  /// For kDelay: how long the call site stalls before completing.
  uint32_t delay_ms = 0;

  bool fired() const { return kind != FaultKind::kNone; }
};

/// One deterministic, seedable fault trigger.
///
/// A default-constructed Failpoint never fires. Triggers are counted so
/// tests can assert how often a site was exercised.
class Failpoint {
 public:
  Failpoint() = default;

  /// Fires exactly once, on the nth evaluation (1-based).
  static Failpoint FailNth(uint64_t nth, FaultKind kind,
                           double keep_fraction = 0.5,
                           uint32_t delay_ms = 0);

  /// Fires independently with probability `p` per evaluation; the
  /// decision stream is fully determined by `seed`.
  static Failpoint FailWithProbability(double p, uint64_t seed,
                                       FaultKind kind,
                                       double keep_fraction = 0.5,
                                       uint32_t delay_ms = 0);

  FaultDecision Eval();

  uint64_t hits() const { return hits_; }
  uint64_t fires() const { return fires_; }

 private:
  enum class Mode : uint8_t { kOff, kNth, kProbability };

  Mode mode_ = Mode::kOff;
  FaultKind kind_ = FaultKind::kNone;
  uint64_t nth_ = 0;
  double probability_ = 0.0;
  double keep_fraction_ = 0.5;
  uint32_t delay_ms_ = 0;
  uint64_t hits_ = 0;
  uint64_t fires_ = 0;
  Rng rng_{1};
};

/// Named failpoints plus a cross-point power-cut trigger.
///
/// Storage call sites (FileDiskManager, FileWalSink, the snapshot
/// writer) evaluate named points on every physical I/O. With nothing
/// armed, Eval is a single branch and does not count, so production use
/// pays nothing. The power-cut mode counts *every* evaluation across
/// all points and cuts power on the chosen one, which is what the
/// crash simulator iterates over.
///
/// Not thread-safe; the MDM serializes storage access per database.
class FailpointRegistry {
 public:
  /// The process-global registry consulted by the file-backed storage
  /// classes. Tests arm it and must Reset() when done.
  static FailpointRegistry* Global();

  void Arm(const std::string& name, Failpoint fp);
  void Disarm(const std::string& name);

  /// Disarms every point, restores power, and zeroes counters.
  void Reset();

  /// Arms the power cut: the nth evaluated I/O (1-based, any point)
  /// tears at `keep_fraction` and latches power_out; every later I/O
  /// fails with IoError. Pass a huge nth to count I/Os without failing.
  void ArmPowerCutAtIo(uint64_t nth_io, double keep_fraction = 0.5);

  FaultDecision Eval(const std::string& name);

  /// Evaluations observed since the last Reset (only counted while the
  /// registry is armed).
  uint64_t io_count() const { return io_count_; }
  bool power_out() const { return power_out_; }
  bool armed() const {
    return !points_.empty() || cut_at_ != 0 || power_out_;
  }

 private:
  std::map<std::string, Failpoint> points_;
  uint64_t io_count_ = 0;
  uint64_t cut_at_ = 0;  // 0 = power cut disarmed
  double cut_keep_ = 0.5;
  bool power_out_ = false;
};

}  // namespace mdm

#endif  // MDM_COMMON_FAILPOINT_H_

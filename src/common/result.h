#ifndef MDM_COMMON_RESULT_H_
#define MDM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mdm {

/// Result<T> carries either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<int> r = Parse(text);
///   if (!r.ok()) return r.status();
///   int v = *r;
///
/// or with the macro:
///   MDM_ASSIGN_OR_RETURN(int v, Parse(text));
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in Result functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error Status: allows `return NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mdm

#define MDM_CONCAT_IMPL_(a, b) a##b
#define MDM_CONCAT_(a, b) MDM_CONCAT_IMPL_(a, b)

/// MDM_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>); on
/// error returns its Status from the enclosing function, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define MDM_ASSIGN_OR_RETURN(lhs, expr)                                \
  auto MDM_CONCAT_(_mdm_result_, __LINE__) = (expr);                   \
  if (!MDM_CONCAT_(_mdm_result_, __LINE__).ok())                       \
    return MDM_CONCAT_(_mdm_result_, __LINE__).status();               \
  lhs = std::move(MDM_CONCAT_(_mdm_result_, __LINE__)).value()

#endif  // MDM_COMMON_RESULT_H_

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/status.h"
#include "common/strings.h"

namespace mdm::json {

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

bool Value::Has(const std::string& key, Kind kind) const {
  const Value* v = Find(key);
  return v != nullptr && v->kind() == kind;
}

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
Value Value::Number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}
Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}
Value Value::Array(std::vector<Value> a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}
Value Value::Object(std::map<std::string, Value> o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    MDM_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size())
      return ParseError("trailing characters after JSON document");
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeWord(const char* w) {
    size_t n = std::char_traits<char>::length(w);
    if (text_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return ParseError("JSON nesting too deep");
    SkipSpace();
    if (AtEnd()) return ParseError("unexpected end of JSON input");
    char c = Peek();
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      MDM_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::String(std::move(s));
    }
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    if (ConsumeWord("null")) return Value::Null();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return ParseNumber();
    return ParseError(StrFormat("unexpected '%c' in JSON", c));
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    std::map<std::string, Value> members;
    SkipSpace();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipSpace();
      MDM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return ParseError("expected ':' in JSON object");
      MDM_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      members.insert_or_assign(std::move(key), std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(members));
      return ParseError("expected ',' or '}' in JSON object");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipSpace();
    if (Consume(']')) return Value::Array(std::move(items));
    while (true) {
      MDM_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::Array(std::move(items));
      return ParseError("expected ',' or ']' in JSON array");
    }
  }

  Result<std::string> ParseString() {
    if (AtEnd() || Peek() != '"') return ParseError("expected '\"'");
    ++pos_;
    std::string out;
    while (!AtEnd()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size())
            return ParseError("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return ParseError("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined — no producer in this repo emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return ParseError(StrFormat("bad escape '\\%c'", esc));
      }
    }
    return ParseError("unterminated JSON string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())))
      ++pos_;
    if (Consume('.'))
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())))
        ++pos_;
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())))
        ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(v))
      return ParseError("malformed JSON number '" + token + "'");
    return Value::Number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) {
  Parser p(text);
  return p.Run();
}

}  // namespace mdm::json

#ifndef MDM_COMMON_RANDOM_H_
#define MDM_COMMON_RANDOM_H_

#include <cstdint>

namespace mdm {

/// Small deterministic PRNG (xorshift64*) for workload generators and
/// property tests. Deterministic across platforms — benchmark workloads
/// regenerate identically from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace mdm

#endif  // MDM_COMMON_RANDOM_H_

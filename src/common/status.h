#ifndef MDM_COMMON_STATUS_H_
#define MDM_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace mdm {

/// Error codes for operations across the music data manager.
///
/// These are the fine-grained codes used throughout the library; each
/// maps onto exactly one canonical wire-level common::ErrorCode (see
/// CanonicalCode below), so a Status crossing the mdmd wire protocol
/// loses no information: the frame carries the StatusCode byte and the
/// canonical code is re-derived on the far side.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input from the caller
  kNotFound,          // named object or instance does not exist
  kAlreadyExists,     // duplicate definition or key
  kFailedPrecondition,// operation not legal in the current state
  kOutOfRange,        // ordinal position / offset out of bounds
  kCorruption,        // storage-level invariant violated
  kConstraintViolation, // data-model invariant (e.g. ordering cycle)
  kParseError,        // DDL / QUEL / DARMS syntax error
  kTypeError,         // attribute or operand type mismatch
  kIoError,           // underlying file I/O failed
  kUnimplemented,
  kInternal,
  kResourceExhausted, // server/connection limit hit; retry later
  kDeadlineExceeded,  // per-request deadline elapsed before completion
  kUnavailable,       // peer unreachable / connection lost; retryable
};

/// Human-readable name of a status code ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

namespace common {

/// Canonical error codes: the coarse, transport-stable vocabulary every
/// public Status maps onto. The numeric values are part of the mdmd
/// wire protocol (docs/PROTOCOL.md) and must never be renumbered; new
/// codes append only.
enum class ErrorCode : uint8_t {
  OK = 0,
  NOT_FOUND = 1,
  INVALID_ARGUMENT = 2,
  CORRUPTION = 3,
  RESOURCE_EXHAUSTED = 4,
  DEADLINE_EXCEEDED = 5,
  UNAVAILABLE = 6,
  INTERNAL = 7,
};

}  // namespace common

using common::ErrorCode;

/// "OK", "NOT_FOUND", ... (the wire-protocol spelling).
const char* ErrorCodeName(ErrorCode code);

/// Total mapping StatusCode -> canonical ErrorCode. Caller-fault codes
/// (parse/type/constraint/precondition/range/duplicate) collapse to
/// INVALID_ARGUMENT; kIoError and kUnavailable to UNAVAILABLE;
/// kUnimplemented and kInternal to INTERNAL.
ErrorCode CanonicalCode(StatusCode code);

/// Result of an operation that can fail but returns no value.
///
/// MDM is built without C++ exceptions; every fallible public operation
/// returns a Status (or a Result<T>, see result.h). A Status is cheap to
/// copy in the OK case (no message allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Canonical coarse code — what the wire protocol reports and what
  /// callers should branch on for retry/backoff decisions.
  ErrorCode error_code() const { return CanonicalCode(code_); }
  const std::string& message() const { return message_; }

  /// Server backoff hint, in milliseconds: "retry no sooner than this".
  /// 0 (the default) means no hint. Set by load-shedding servers on
  /// UNAVAILABLE / RESOURCE_EXHAUSTED statuses; transported losslessly
  /// by the mdmd error frame (docs/PROTOCOL.md) and honored by the
  /// client's RetryPolicy (net/retry.h).
  uint32_t retry_after_ms() const { return retry_after_ms_; }
  Status& set_retry_after_ms(uint32_t ms) {
    retry_after_ms_ = ms;
    return *this;
  }

  /// "NotFound: no entity type named FOO" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  uint32_t retry_after_ms_ = 0;
};

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Corruption(std::string message);
Status ConstraintViolation(std::string message);
Status ParseError(std::string message);
Status TypeError(std::string message);
Status IoError(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);
Status DeadlineExceeded(std::string message);
Status Unavailable(std::string message);

}  // namespace mdm

/// Propagate a non-OK Status to the caller.
#define MDM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mdm::Status _mdm_status = (expr);             \
    if (!_mdm_status.ok()) return _mdm_status;      \
  } while (0)

#endif  // MDM_COMMON_STATUS_H_

#ifndef MDM_COMMON_STATUS_H_
#define MDM_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mdm {

/// Error codes for operations across the music data manager.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input from the caller
  kNotFound,          // named object or instance does not exist
  kAlreadyExists,     // duplicate definition or key
  kFailedPrecondition,// operation not legal in the current state
  kOutOfRange,        // ordinal position / offset out of bounds
  kCorruption,        // storage-level invariant violated
  kConstraintViolation, // data-model invariant (e.g. ordering cycle)
  kParseError,        // DDL / QUEL / DARMS syntax error
  kTypeError,         // attribute or operand type mismatch
  kIoError,           // underlying file I/O failed
  kUnimplemented,
  kInternal,
};

/// Human-readable name of a status code ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail but returns no value.
///
/// MDM is built without C++ exceptions; every fallible public operation
/// returns a Status (or a Result<T>, see result.h). A Status is cheap to
/// copy in the OK case (no message allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NotFound: no entity type named FOO" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Corruption(std::string message);
Status ConstraintViolation(std::string message);
Status ParseError(std::string message);
Status TypeError(std::string message);
Status IoError(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);

}  // namespace mdm

/// Propagate a non-OK Status to the caller.
#define MDM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mdm::Status _mdm_status = (expr);             \
    if (!_mdm_status.ok()) return _mdm_status;      \
  } while (0)

#endif  // MDM_COMMON_STATUS_H_

#ifndef MDM_COMMON_STRINGS_H_
#define MDM_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mdm {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// ASCII lower-casing (locale independent).
std::string AsciiLower(std::string_view text);
/// ASCII upper-casing (locale independent).
std::string AsciiUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mdm

#endif  // MDM_COMMON_STRINGS_H_

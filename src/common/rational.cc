#include "common/rational.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

namespace mdm {

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  assert(den != 0 && "Rational denominator must be nonzero");
  if (den_ == 0) {  // release-mode fallback: treat as zero
    num_ = 0;
    den_ = 1;
    return;
  }
  Normalize();
}

void Rational::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  int64_t g = std::gcd(std::abs(num_), den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

bool Rational::Parse(const std::string& text, Rational* out) {
  if (text.empty() || out == nullptr) return false;
  size_t slash = text.find('/');
  char* end = nullptr;
  errno = 0;
  int64_t num = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || errno != 0) return false;
  if (slash == std::string::npos) {
    if (*end != '\0') return false;
    *out = Rational(num);
    return true;
  }
  if (static_cast<size_t>(end - text.c_str()) != slash) return false;
  const char* den_start = text.c_str() + slash + 1;
  if (*den_start == '\0') return false;
  errno = 0;
  int64_t den = std::strtoll(den_start, &end, 10);
  if (*end != '\0' || errno != 0 || den == 0) return false;
  *out = Rational(num, den);
  return true;
}

int64_t Rational::Floor() const {
  int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

Rational Rational::operator+(const Rational& o) const {
  // Reduce cross terms first to delay overflow.
  int64_t g = std::gcd(den_, o.den_);
  int64_t lden = den_ / g;
  return Rational(num_ * (o.den_ / g) + o.num_ * lden, lden * o.den_);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  int64_t g1 = std::gcd(std::abs(num_), o.den_);
  int64_t g2 = std::gcd(std::abs(o.num_), den_);
  return Rational((num_ / g1) * (o.num_ / g2), (den_ / g2) * (o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  assert(!o.IsZero() && "Rational division by zero");
  if (o.IsZero()) return Rational();
  return *this * Rational(o.den_, o.num_);
}

bool operator<(const Rational& a, const Rational& b) {
  // a.num/a.den < b.num/b.den  <=>  a.num*b.den < b.num*a.den (dens > 0).
  // Use 128-bit intermediate to avoid overflow on large score offsets.
  return static_cast<__int128>(a.num_) * b.den_ <
         static_cast<__int128>(b.num_) * a.den_;
}

}  // namespace mdm

#ifndef MDM_COMMON_BYTES_H_
#define MDM_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mdm {

/// Little-endian binary encoding helpers used by the storage layer, the
/// tuple codec, WAL records, and the SMF writer (which is big-endian and
/// has its own helpers in src/midi).
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Length-prefixed (varint) byte string.
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t n);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reader over a byte span; all getters fail with Corruption if the
/// buffer is exhausted.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetF64(double* v);
  Status GetVarint(uint64_t* v);
  Status GetString(std::string* s);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC32 (IEEE polynomial, reflected) — used for WAL record checksums.
uint32_t Crc32(const void* data, size_t n);

}  // namespace mdm

#endif  // MDM_COMMON_BYTES_H_

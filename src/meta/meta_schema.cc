#include "meta/meta_schema.h"

#include "common/strings.h"
#include "ddl/parser.h"

namespace mdm::meta {

using er::Database;
using er::EntityId;
using er::kInvalidEntityId;
using rel::Value;
using rel::ValueType;

namespace {

constexpr char kMetaDdl[] = R"(
  define entity ENTITY (entity_name = string)
  define entity RELATIONSHIP (relationship_name = string)
  define entity ATTRIBUTE (attribute_name = string,
                           attribute_type = string)
  define entity ORDERING (order_name = string, order_parent = ENTITY)
  define ordering entity_attributes (ATTRIBUTE) under ENTITY
  define ordering relationship_attributes (ATTRIBUTE) under RELATIONSHIP
  define relationship order_child (child = ENTITY, ordering = ORDERING)
)";

// Secondary-index catalog (Fig 9 discipline: physical design is data
// too). Kept separate from kMetaDdl so InstallMetaSchema can upgrade
// databases whose meta-schema predates indexes.
constexpr char kIndexDefDdl[] = R"(
  define entity INDEX_DEF (index_name = string, index_entity = ENTITY,
                           index_attribute = string)
)";

constexpr char kGraphicsDdl[] = R"(
  define entity GraphDef (name = string, function = string)
  define relationship GDefUse (graphdef = GraphDef, entity = ENTITY)
  define relationship GParmUse (graphdef = GraphDef,
                                attribute = ATTRIBUTE, set_up = string)
)";

Result<EntityId> FindByStringAttr(const Database& db,
                                  const std::string& type,
                                  const std::string& attr,
                                  const std::string& value) {
  EntityId found = kInvalidEntityId;
  MDM_RETURN_IF_ERROR(db.ForEachEntity(type, [&](EntityId id) {
    auto v = db.GetAttribute(id, attr);
    if (v.ok() && !v->is_null() && v->type() == ValueType::kString &&
        EqualsIgnoreCase(v->AsString(), value)) {
      found = id;
      return false;
    }
    return true;
  }));
  if (found == kInvalidEntityId)
    return NotFound(StrFormat("no %s catalogued with %s = %s", type.c_str(),
                              attr.c_str(), value.c_str()));
  return found;
}

// The displayed type of an attribute in the ATTRIBUTE catalog: the
// scalar domain name, or the referenced entity type.
std::string AttrTypeName(const er::AttributeDef& attr) {
  return attr.type == ValueType::kRef ? attr.ref_target
                                      : rel::ValueTypeName(attr.type);
}

Status CatalogAttributes(Database* db, const std::vector<er::AttributeDef>&
                             attrs,
                         const std::string& ordering, EntityId owner) {
  // Idempotency: skip if the owner already has catalogued attributes.
  MDM_ASSIGN_OR_RETURN(uint64_t existing, db->ChildCount(ordering, owner));
  if (existing > 0) return Status::OK();
  for (const er::AttributeDef& attr : attrs) {
    MDM_ASSIGN_OR_RETURN(EntityId aid, db->CreateEntity("ATTRIBUTE"));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(aid, "attribute_name", Value::String(attr.name)));
    MDM_RETURN_IF_ERROR(db->SetAttribute(
        aid, "attribute_type", Value::String(AttrTypeName(attr))));
    MDM_RETURN_IF_ERROR(db->AppendChild(ordering, owner, aid));
  }
  return Status::OK();
}

}  // namespace

Status InstallMetaSchema(Database* db) {
  if (db->schema().FindEntityType("ENTITY") == nullptr) {
    auto r = ddl::ExecuteDdl(kMetaDdl, db);
    if (!r.ok()) return r.status();
  }
  if (db->schema().FindEntityType("INDEX_DEF") == nullptr) {
    auto r = ddl::ExecuteDdl(kIndexDefDdl, db);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Status SyncSchemaToMeta(Database* db) {
  if (db->schema().FindEntityType("ENTITY") == nullptr)
    return FailedPrecondition("meta-schema not installed");
  // 1) One ENTITY instance per entity type, self-inclusively.
  for (const er::EntityTypeDef& def : db->schema().entity_types()) {
    Result<EntityId> existing = FindMetaEntity(*db, def.name);
    EntityId eid;
    if (existing.ok()) {
      eid = *existing;
    } else {
      MDM_ASSIGN_OR_RETURN(eid, db->CreateEntity("ENTITY"));
      MDM_RETURN_IF_ERROR(
          db->SetAttribute(eid, "entity_name", Value::String(def.name)));
    }
    MDM_RETURN_IF_ERROR(
        CatalogAttributes(db, def.attributes, "entity_attributes", eid));
  }
  // 2) RELATIONSHIP instances with their attributes.
  for (const er::RelationshipDef& def : db->schema().relationships()) {
    Result<EntityId> existing =
        FindByStringAttr(*db, "RELATIONSHIP", "relationship_name", def.name);
    EntityId rid;
    if (existing.ok()) {
      rid = *existing;
    } else {
      MDM_ASSIGN_OR_RETURN(rid, db->CreateEntity("RELATIONSHIP"));
      MDM_RETURN_IF_ERROR(db->SetAttribute(rid, "relationship_name",
                                           Value::String(def.name)));
    }
    MDM_RETURN_IF_ERROR(CatalogAttributes(db, def.attributes,
                                          "relationship_attributes", rid));
  }
  // 3) ORDERING instances: parent ref + order_child links.
  for (const er::OrderingDef& def : db->schema().orderings()) {
    if (FindByStringAttr(*db, "ORDERING", "order_name", def.name).ok())
      continue;
    MDM_ASSIGN_OR_RETURN(EntityId oid, db->CreateEntity("ORDERING"));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(oid, "order_name", Value::String(def.name)));
    MDM_ASSIGN_OR_RETURN(EntityId parent_meta,
                         FindMetaEntity(*db, def.parent_type));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(oid, "order_parent", Value::Ref(parent_meta)));
    for (const std::string& child : def.child_types) {
      MDM_ASSIGN_OR_RETURN(EntityId child_meta, FindMetaEntity(*db, child));
      MDM_RETURN_IF_ERROR(db->Connect("order_child", {{"child", child_meta},
                                                      {"ordering", oid}})
                              .status());
    }
  }
  // 4) INDEX_DEF instances mirror the secondary-index catalog. Unlike
  //    passes 1-3, indexes can be destroyed (`destroy index`), so rows
  //    for indexes that no longer exist are removed on re-sync.
  if (db->schema().FindEntityType("INDEX_DEF") != nullptr) {
    std::vector<er::AttrIndexDef> defs = db->AttrIndexDefs();
    for (const er::AttrIndexDef& def : defs) {
      if (FindByStringAttr(*db, "INDEX_DEF", "index_name", def.name).ok())
        continue;
      MDM_ASSIGN_OR_RETURN(EntityId iid, db->CreateEntity("INDEX_DEF"));
      MDM_RETURN_IF_ERROR(
          db->SetAttribute(iid, "index_name", Value::String(def.name)));
      MDM_ASSIGN_OR_RETURN(EntityId ent_meta,
                           FindMetaEntity(*db, def.entity_type));
      MDM_RETURN_IF_ERROR(
          db->SetAttribute(iid, "index_entity", Value::Ref(ent_meta)));
      MDM_RETURN_IF_ERROR(
          db->SetAttribute(iid, "index_attribute", Value::String(def.attr)));
    }
    std::vector<EntityId> stale;
    MDM_RETURN_IF_ERROR(db->ForEachEntity("INDEX_DEF", [&](EntityId id) {
      auto v = db->GetAttribute(id, "index_name");
      bool live = false;
      if (v.ok() && !v->is_null()) {
        for (const er::AttrIndexDef& def : defs) {
          if (EqualsIgnoreCase(def.name, v->AsString())) live = true;
        }
      }
      if (!live) stale.push_back(id);
      return true;
    }));
    for (EntityId id : stale) MDM_RETURN_IF_ERROR(db->DeleteEntity(id));
  }
  return Status::OK();
}

Result<EntityId> FindMetaEntity(const Database& db,
                                const std::string& entity_type_name) {
  return FindByStringAttr(db, "ENTITY", "entity_name", entity_type_name);
}

Result<std::vector<std::string>> MetaAttributeNames(
    const Database& db, const std::string& entity_type_name) {
  MDM_ASSIGN_OR_RETURN(EntityId eid, FindMetaEntity(db, entity_type_name));
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> attrs,
                       db.Children("entity_attributes", eid));
  std::vector<std::string> names;
  for (EntityId aid : attrs) {
    MDM_ASSIGN_OR_RETURN(Value v, db.GetAttribute(aid, "attribute_name"));
    names.push_back(v.is_null() ? "" : v.AsString());
  }
  return names;
}

Status InstallGraphicsSchema(Database* db) {
  MDM_RETURN_IF_ERROR(InstallMetaSchema(db));
  if (db->schema().FindEntityType("GraphDef") != nullptr)
    return Status::OK();
  auto r = ddl::ExecuteDdl(kGraphicsDdl, db);
  return r.ok() ? Status::OK() : r.status();
}

Result<EntityId> DefineGraphDef(Database* db, const std::string& name,
                                const std::string& function) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db->CreateEntity("GraphDef"));
  MDM_RETURN_IF_ERROR(db->SetAttribute(id, "name", Value::String(name)));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "function", Value::String(function)));
  return id;
}

Status AttachGraphDef(Database* db, const std::string& entity_type_name,
                      EntityId graphdef) {
  MDM_ASSIGN_OR_RETURN(EntityId meta_entity,
                       FindMetaEntity(*db, entity_type_name));
  return db
      ->Connect("GDefUse", {{"graphdef", graphdef}, {"entity", meta_entity}})
      .status();
}

Status AttachParameter(Database* db, EntityId graphdef,
                       const std::string& entity_type_name,
                       const std::string& attr_name,
                       const std::string& set_up) {
  // Locate the ATTRIBUTE meta-instance under the type's ENTITY instance.
  MDM_ASSIGN_OR_RETURN(EntityId meta_entity,
                       FindMetaEntity(*db, entity_type_name));
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> attrs,
                       db->Children("entity_attributes", meta_entity));
  EntityId attr_meta = kInvalidEntityId;
  for (EntityId aid : attrs) {
    auto v = db->GetAttribute(aid, "attribute_name");
    if (v.ok() && !v->is_null() && EqualsIgnoreCase(v->AsString(), attr_name)) {
      attr_meta = aid;
      break;
    }
  }
  if (attr_meta == kInvalidEntityId)
    return NotFound(StrFormat("attribute %s of %s is not catalogued",
                              attr_name.c_str(), entity_type_name.c_str()));
  MDM_ASSIGN_OR_RETURN(
      er::RelInstanceId link,
      db->Connect("GParmUse",
                  {{"graphdef", graphdef}, {"attribute", attr_meta}}));
  return db->SetRelationshipAttribute(link, "set_up",
                                      Value::String(set_up));
}

Result<graphics::Rendering> DrawEntity(Database* db, EntityId instance) {
  // Step 1: the instance and its type.
  MDM_ASSIGN_OR_RETURN(std::string type_name, db->TypeOf(instance));
  MDM_ASSIGN_OR_RETURN(EntityId meta_entity,
                       FindMetaEntity(*db, type_name));
  // Step 2: the graphical definition via GDefUse.
  EntityId graphdef = kInvalidEntityId;
  MDM_RETURN_IF_ERROR(db->ForEachRelationship(
      "GDefUse", [&](const er::RelationshipInstance& ri) {
        // roles: graphdef, entity
        if (ri.role_refs[1] == meta_entity) {
          graphdef = ri.role_refs[0];
          return false;
        }
        return true;
      }));
  if (graphdef == kInvalidEntityId)
    return NotFound("no graphical definition for entity type " + type_name);

  graphics::PostScriptInterp interp;
  // Step 3: parameters via GParmUse — fetch each value from the
  // instance, push it, and run the set-up fragment.
  Status step3;
  MDM_RETURN_IF_ERROR(db->ForEachRelationship(
      "GParmUse", [&](const er::RelationshipInstance& ri) {
        if (ri.role_refs[0] != graphdef) return true;
        EntityId attr_meta = ri.role_refs[1];
        auto attr_name = db->GetAttribute(attr_meta, "attribute_name");
        if (!attr_name.ok() || attr_name->is_null()) {
          step3 = Corruption("GParmUse references unnamed attribute");
          return false;
        }
        auto value = db->GetAttribute(instance, attr_name->AsString());
        if (!value.ok()) {
          step3 = value.status();
          return false;
        }
        double num;
        if (value->is_null()) {
          num = 0;
        } else if (value->type() == ValueType::kInt) {
          num = static_cast<double>(value->AsInt());
        } else if (value->type() == ValueType::kFloat) {
          num = value->AsFloat();
        } else if (value->type() == ValueType::kRational) {
          num = value->AsRational().ToDouble();
        } else {
          step3 = TypeError(StrFormat(
              "graphical parameter %s is not numeric",
              attr_name->AsString().c_str()));
          return false;
        }
        const er::RelationshipDef* def =
            db->schema().FindRelationship("GParmUse");
        auto set_up_idx = def->AttributeIndex("set_up");
        std::string set_up = "/" + attr_name->AsString() + " exch def";
        if (set_up_idx.has_value() && !ri.attrs[*set_up_idx].is_null())
          set_up = ri.attrs[*set_up_idx].AsString();
        step3 = interp.Run(StrFormat("%.6f %s", num, set_up.c_str()));
        return step3.ok();
      }));
  MDM_RETURN_IF_ERROR(step3);
  // Step 4: execute the drawing function.
  MDM_ASSIGN_OR_RETURN(Value function, db->GetAttribute(graphdef, "function"));
  if (function.is_null())
    return FailedPrecondition("graphdef has no function body");
  MDM_RETURN_IF_ERROR(interp.Run(function.AsString()));
  return interp.Take();
}

}  // namespace mdm::meta

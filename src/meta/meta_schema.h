#ifndef MDM_META_META_SCHEMA_H_
#define MDM_META_META_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/database.h"
#include "graphics/postscript.h"

namespace mdm::meta {

/// §6: "we may actually use our data definition language to define a
/// meta-database: a database that models our definitions of entities,
/// relationships, attributes and orderings."
///
/// InstallMetaSchema executes (the equivalent of) the paper's §6.1 DDL:
///
///   define entity ENTITY (entity_name = string)
///   define entity RELATIONSHIP (relationship_name = string)
///   define entity ATTRIBUTE (attribute_name = string,
///                            attribute_type = string)
///   define entity ORDERING (order_name = string, order_parent = ENTITY)
///   define ordering entity_attributes (ATTRIBUTE) under ENTITY
///   define ordering relationship_attributes (ATTRIBUTE)
///       under RELATIONSHIP
///   define relationship order_child (child = ENTITY,
///                                    ordering = ORDERING)
///   define entity INDEX_DEF (index_name = string,
///                            index_entity = ENTITY,
///                            index_attribute = string)
///
/// into the SAME database whose schema it describes — the paper's
/// schema/data blurring. INDEX_DEF extends Fig 9 to the physical
/// design: each secondary attribute index (docs/INDEXES.md) is
/// catalogued as data. Databases whose meta-schema predates INDEX_DEF
/// are upgraded in place.
Status InstallMetaSchema(er::Database* db);

/// Populates (or refreshes) the meta-database from the database's own
/// schema: one ENTITY instance per entity type (including the meta
/// types themselves), ATTRIBUTE instances hierarchically ordered under
/// their owners, RELATIONSHIP and ORDERING instances, order_child
/// links, and INDEX_DEF rows for the secondary-index catalog.
/// Idempotent: re-running catalogs only definitions added since —
/// except INDEX_DEF rows, which are also deleted when their index has
/// been destroyed.
Status SyncSchemaToMeta(er::Database* db);

/// The ENTITY meta-instance cataloguing `entity_type_name`.
Result<er::EntityId> FindMetaEntity(const er::Database& db,
                                    const std::string& entity_type_name);

/// Attribute names of `entity_type_name`, read back through the
/// meta-database's entity_attributes ordering (not through the schema).
Result<std::vector<std::string>> MetaAttributeNames(
    const er::Database& db, const std::string& entity_type_name);

// ----------------------------------------------------------------------
// §6.2 / fig 10: graphical definitions as data.
// ----------------------------------------------------------------------

/// Installs the application-specific middle layer:
///
///   define entity GraphDef (name = string, function = string)
///   define relationship GDefUse (graphdef = GraphDef, entity = ENTITY)
///   define relationship GParmUse (graphdef = GraphDef,
///                                 attribute = ATTRIBUTE,
///                                 set_up = string)
///
/// (set_up is modeled as a relationship attribute.)
Status InstallGraphicsSchema(er::Database* db);

/// Creates a GraphDef holding a PostScript-dialect drawing function.
Result<er::EntityId> DefineGraphDef(er::Database* db, const std::string& name,
                                    const std::string& function);

/// Associates `graphdef` with the (already catalogued) entity type.
Status AttachGraphDef(er::Database* db, const std::string& entity_type_name,
                      er::EntityId graphdef);

/// Declares that `attr_name` of `entity_type_name` parameterizes
/// `graphdef`; `set_up` is the PostScript fragment run with the
/// attribute value pushed on the operand stack (e.g. "/xpos exch def").
Status AttachParameter(er::Database* db, er::EntityId graphdef,
                       const std::string& entity_type_name,
                       const std::string& attr_name,
                       const std::string& set_up);

/// The paper's four-step drawing procedure (§6.2):
///  (1) find the instance, (2) find the graphical definition for its
///  type via GDefUse, (3) for each GParmUse parameter fetch the value
///  from the instance and execute its set-up code, (4) execute the
///  graphical definition. Returns the rendering.
Result<graphics::Rendering> DrawEntity(er::Database* db,
                                       er::EntityId instance);

}  // namespace mdm::meta

#endif  // MDM_META_META_SCHEMA_H_

#ifndef MDM_CMN_TEMPORAL_H_
#define MDM_CMN_TEMPORAL_H_

#include <vector>

#include "cmn/schema.h"
#include "common/rational.h"
#include "common/result.h"
#include "er/database.h"
#include "mtime/tempo_map.h"

namespace mdm::cmn {

/// One row of the measure table: where each measure of a score starts
/// in absolute score time.
struct MeasureSpan {
  er::EntityId measure = er::kInvalidEntityId;
  Rational start;   // beats from the score start
  Rational length;  // beats in this measure (from its meter)
};

/// Walks movement_in_score / measure_in_movement and accumulates
/// measure start times from each measure's meter attributes.
Result<std::vector<MeasureSpan>> BuildMeasureTable(const er::Database& db,
                                                   er::EntityId score);

/// Absolute score time of a sync: its measure's start plus its beat
/// attribute (§7.2 "a number of beats from the start of the measure").
Result<Rational> SyncScoreTime(const er::Database& db, er::EntityId sync);

/// Fig 15: a group's duration is "a function of the duration of its
/// constituent chords and rests" — here the sum, recursing through
/// nested groups. The computed value is also written back to the
/// group's duration_beats attribute.
Result<Rational> GroupDuration(er::Database* db, er::EntityId group);

/// One performed (sounding) unit: an EVENT resolved to performance
/// time. Tied notes merge into a single performed note (§7.2).
struct PerformedNote {
  int midi_key = 60;
  int velocity = 64;
  double start_seconds = 0;
  double end_seconds = 0;
  Rational start_beats;
  Rational duration_beats;
  er::EntityId source_note = er::kInvalidEntityId;  // first note of event
};

/// Extracts the complete performance of a score: every chord at every
/// sync, notes resolved through ties, dynamics mapped to velocities,
/// staccato shortening applied, all mapped to seconds through `tempo`
/// (the conductor). Results are ordered by start time.
Result<std::vector<PerformedNote>> ExtractPerformance(
    er::Database* db, er::EntityId score, const mtime::TempoMap& tempo);

/// Materializes MIDI_EVENT entities (fig 13 bottom) from the extracted
/// performance, ordering each under its EVENT where one exists.
/// Returns the number of MIDI events created.
Result<uint64_t> MaterializeMidiEvents(er::Database* db, er::EntityId score,
                                       const mtime::TempoMap& tempo);

/// Fig 14: derives the syncs of a score from independent voices. Each
/// voice's chords and rests are walked in voice_seq order, onsets are
/// accumulated, and every distinct onset becomes (or reuses) a sync in
/// the measure containing it; chords are attached to their syncs.
/// Returns the number of syncs in the score afterwards.
Result<uint64_t> AlignVoicesToSyncs(er::Database* db, er::EntityId score,
                                    const std::vector<er::EntityId>& voices);

/// Maps a dynamic marking to a MIDI velocity (pp..ff).
int DynamicToVelocity(const std::string& dynamic);

}  // namespace mdm::cmn

#endif  // MDM_CMN_TEMPORAL_H_

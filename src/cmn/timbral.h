#ifndef MDM_CMN_TIMBRAL_H_
#define MDM_CMN_TIMBRAL_H_

#include <string>
#include <vector>

#include "cmn/temporal.h"
#include "common/result.h"
#include "er/database.h"
#include "midi/midi.h"
#include "mtime/tempo_map.h"

namespace mdm::cmn {

/// The timbral aspect made operational (fig 12: "the timbral aspect
/// refers to how [events] are performed (e.g. by what instrument...)").
///
/// Structure (§7.1): ORCHESTRA > SECTION > INSTRUMENT > PART > VOICE,
/// each level a hierarchical ordering of the CMN schema. An orchestra
/// PERFORMS a score; each voice's notes sound on its instrument's MIDI
/// channel with its program.

/// Builder for the timbral hierarchy.
class OrchestraBuilder {
 public:
  explicit OrchestraBuilder(er::Database* db) : db_(db) {}

  Result<er::EntityId> CreateOrchestra(const std::string& name);
  Result<er::EntityId> AddSection(er::EntityId orchestra,
                                  const std::string& family);
  /// `midi_program` is the General-MIDI patch; `transposition` the
  /// written-vs-sounding offset in semitones (e.g. -2 for Bb clarinet).
  Result<er::EntityId> AddInstrument(er::EntityId section,
                                     const std::string& name,
                                     int midi_program,
                                     int transposition = 0);
  Result<er::EntityId> AddPart(er::EntityId instrument,
                               const std::string& name);
  /// Attaches an existing VOICE to a part.
  Status AssignVoice(er::EntityId part, er::EntityId voice);
  /// Declares that `orchestra` performs `score` (the PERFORMS
  /// relationship of the schema).
  Status Performs(er::EntityId orchestra, er::EntityId score);

  er::Database* db() { return db_; }

 private:
  er::Database* db_;
};

/// Per-voice performance routing derived from the timbral hierarchy.
struct VoiceRouting {
  er::EntityId voice = er::kInvalidEntityId;
  er::EntityId instrument = er::kInvalidEntityId;
  std::string instrument_name;
  int channel = 0;       // assigned by instrument order, round 16
  int midi_program = 0;
  int transposition = 0;
};

/// Walks the orchestra's hierarchy and assigns one MIDI channel per
/// instrument (in section/instrument order, wrapping at 16 and skipping
/// channel 9, the percussion channel).
Result<std::vector<VoiceRouting>> RouteVoices(const er::Database& db,
                                              er::EntityId orchestra);

/// ExtractPerformance + timbral routing: every performed note carries
/// the channel and transposition of its voice's instrument; program
/// changes are emitted at time 0. Voices not routed sound on channel 0.
Result<midi::MidiTrack> PerformWithOrchestra(er::Database* db,
                                             er::EntityId score,
                                             er::EntityId orchestra,
                                             const mtime::TempoMap& tempo);

}  // namespace mdm::cmn

#endif  // MDM_CMN_TIMBRAL_H_

#ifndef MDM_CMN_TRANSFORM_H_
#define MDM_CMN_TRANSFORM_H_

#include <vector>

#include "common/result.h"
#include "er/database.h"

namespace mdm::cmn {

/// Compositional-tool operations (§2's "compositional tools ... are
/// generative" clients): structure-preserving transformations applied
/// directly to the stored score.

/// Transposes every note of `score` by `semitones`: midi_key shifts
/// exactly; the notated degree shifts by the corresponding diatonic
/// amount (rounded toward the nearest diatonic step). Returns the
/// number of notes updated.
Result<uint64_t> TransposeScore(er::Database* db, er::EntityId score,
                                int semitones);

/// Retrogrades a voice: reverses the order of its chords and rests in
/// voice_seq (the classic analysis/composition operation). Syncs are
/// not reassigned; call AlignVoicesToSyncs afterwards to re-derive them.
Status RetrogradeVoice(er::Database* db, er::EntityId voice);

/// Extracts one voice of `score` into a fresh single-voice score (the
/// "part extraction" a performer's part requires). Chords are cloned
/// with their notes and durations; syncs/measures are rebuilt with the
/// same meters. Returns the new score.
Result<er::EntityId> ExtractVoice(er::Database* db, er::EntityId score,
                                  er::EntityId voice);

/// All notes of a score in temporal order (helper shared by the
/// transformations and analysis clients).
Result<std::vector<er::EntityId>> NotesInTemporalOrder(
    const er::Database& db, er::EntityId score);

}  // namespace mdm::cmn

#endif  // MDM_CMN_TRANSFORM_H_

#include "cmn/timbral.h"

#include <algorithm>
#include <set>

#include "cmn/schema.h"
#include "common/strings.h"

namespace mdm::cmn {

using er::Database;
using er::EntityId;
using er::kInvalidEntityId;
using rel::Value;

Result<EntityId> OrchestraBuilder::CreateOrchestra(const std::string& name) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("ORCHESTRA"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "name", Value::String(name)));
  return id;
}

Result<EntityId> OrchestraBuilder::AddSection(EntityId orchestra,
                                              const std::string& family) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("SECTION"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "family", Value::String(family)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kSectionInOrchestra, orchestra, id));
  return id;
}

Result<EntityId> OrchestraBuilder::AddInstrument(EntityId section,
                                                 const std::string& name,
                                                 int midi_program,
                                                 int transposition) {
  if (midi_program < 0 || midi_program > 127)
    return InvalidArgument(StrFormat("MIDI program %d out of range",
                                     midi_program));
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("INSTRUMENT"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "name", Value::String(name)));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "midi_program", Value::Int(midi_program)));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "transposition", Value::Int(transposition)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kInstrumentInSection, section, id));
  return id;
}

Result<EntityId> OrchestraBuilder::AddPart(EntityId instrument,
                                           const std::string& name) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("PART"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "name", Value::String(name)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kPartInInstrument, instrument, id));
  return id;
}

Status OrchestraBuilder::AssignVoice(EntityId part, EntityId voice) {
  return db_->AppendChild(kVoiceInPart, part, voice);
}

Status OrchestraBuilder::Performs(EntityId orchestra, EntityId score) {
  return db_
      ->Connect("PERFORMS", {{"orchestra", orchestra}, {"score", score}})
      .status();
}

Result<std::vector<VoiceRouting>> RouteVoices(const Database& db,
                                              EntityId orchestra) {
  std::vector<VoiceRouting> out;
  int next_channel = 0;
  auto take_channel = [&next_channel]() {
    int ch = next_channel;
    ++next_channel;
    if (next_channel == 9) ++next_channel;  // skip GM percussion
    if (next_channel >= 16) next_channel = 0;
    return ch;
  };
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> sections,
                       db.Children(kSectionInOrchestra, orchestra));
  for (EntityId section : sections) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> instruments,
                         db.Children(kInstrumentInSection, section));
    for (EntityId instrument : instruments) {
      MDM_ASSIGN_OR_RETURN(Value name, db.GetAttribute(instrument, "name"));
      MDM_ASSIGN_OR_RETURN(Value program,
                           db.GetAttribute(instrument, "midi_program"));
      MDM_ASSIGN_OR_RETURN(Value transposition,
                           db.GetAttribute(instrument, "transposition"));
      const int channel = take_channel();
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> parts,
                           db.Children(kPartInInstrument, instrument));
      for (EntityId part : parts) {
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> voices,
                             db.Children(kVoiceInPart, part));
        for (EntityId voice : voices) {
          VoiceRouting route;
          route.voice = voice;
          route.instrument = instrument;
          route.instrument_name = name.is_null() ? "" : name.AsString();
          route.channel = channel;
          route.midi_program =
              program.is_null() ? 0 : static_cast<int>(program.AsInt());
          route.transposition =
              transposition.is_null()
                  ? 0
                  : static_cast<int>(transposition.AsInt());
          out.push_back(route);
        }
      }
    }
  }
  return out;
}

Result<midi::MidiTrack> PerformWithOrchestra(Database* db, EntityId score,
                                             EntityId orchestra,
                                             const mtime::TempoMap& tempo) {
  MDM_ASSIGN_OR_RETURN(std::vector<VoiceRouting> routes,
                       RouteVoices(*db, orchestra));
  MDM_ASSIGN_OR_RETURN(std::vector<PerformedNote> notes,
                       ExtractPerformance(db, score, tempo));
  midi::MidiTrack track;
  // One program change per routed instrument at t = 0.
  std::set<int> programmed;
  for (const VoiceRouting& route : routes) {
    if (!programmed.insert(route.channel).second) continue;
    midi::MidiEvent program;
    program.kind = midi::MidiEvent::Kind::kProgram;
    program.seconds = 0;
    program.channel = static_cast<uint8_t>(route.channel);
    program.value = static_cast<uint8_t>(route.midi_program);
    track.events.push_back(program);
  }
  for (const PerformedNote& pn : notes) {
    // Note -> chord -> voice -> routing.
    const VoiceRouting* route = nullptr;
    MDM_ASSIGN_OR_RETURN(EntityId chord,
                         db->ParentOf(kNoteInChord, pn.source_note));
    if (chord != kInvalidEntityId) {
      MDM_ASSIGN_OR_RETURN(EntityId voice, db->ParentOf(kVoiceSeq, chord));
      for (const VoiceRouting& r : routes)
        if (r.voice == voice) route = &r;
    }
    midi::MidiEvent on;
    on.kind = midi::MidiEvent::Kind::kNoteOn;
    on.seconds = pn.start_seconds;
    int key = pn.midi_key + (route != nullptr ? route->transposition : 0);
    on.key = static_cast<uint8_t>(std::clamp(key, 0, 127));
    on.velocity = static_cast<uint8_t>(std::clamp(pn.velocity, 1, 127));
    on.channel =
        static_cast<uint8_t>(route != nullptr ? route->channel : 0);
    midi::MidiEvent off = on;
    off.kind = midi::MidiEvent::Kind::kNoteOff;
    off.seconds = pn.end_seconds;
    off.velocity = 0;
    track.events.push_back(on);
    track.events.push_back(off);
  }
  track.Sort();
  return track;
}

}  // namespace mdm::cmn

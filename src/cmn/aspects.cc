#include "cmn/aspects.h"

#include "common/strings.h"

namespace mdm::cmn {

const char* AspectName(Aspect aspect) {
  switch (aspect) {
    case Aspect::kTemporal: return "temporal";
    case Aspect::kTimbral: return "timbral";
    case Aspect::kPitch: return "pitch";
    case Aspect::kArticulation: return "articulation";
    case Aspect::kDynamic: return "dynamic";
    case Aspect::kGraphical: return "graphical";
    case Aspect::kTextual: return "textual";
  }
  return "?";
}

namespace {

struct AspectRow {
  const char* type;
  std::vector<Aspect> aspects;
};

// Classification following §7.1.1: notes participate in every aspect;
// MIDI events "have no graphical aspect in CMN"; page furniture is
// purely graphical.
const std::vector<AspectRow>& AspectTable() {
  static const std::vector<AspectRow>& table = *new std::vector<AspectRow>{
      {"SCORE", {Aspect::kTemporal, Aspect::kGraphical}},
      {"MOVEMENT", {Aspect::kTemporal}},
      {"MEASURE", {Aspect::kTemporal, Aspect::kGraphical}},
      {"SYNC", {Aspect::kTemporal, Aspect::kGraphical, Aspect::kTextual}},
      {"GROUP", {Aspect::kTemporal, Aspect::kArticulation,
                 Aspect::kGraphical}},
      {"CHORD", {Aspect::kTemporal, Aspect::kTimbral, Aspect::kGraphical,
                 Aspect::kTextual}},
      {"EVENT", {Aspect::kTemporal, Aspect::kTimbral}},
      {"NOTE",
       {Aspect::kTemporal, Aspect::kTimbral, Aspect::kPitch,
        Aspect::kArticulation, Aspect::kDynamic, Aspect::kGraphical}},
      {"REST", {Aspect::kTemporal, Aspect::kGraphical}},
      {"MIDI_EVENT", {Aspect::kTemporal, Aspect::kTimbral, Aspect::kPitch,
                      Aspect::kDynamic}},
      {"MIDI_CONTROL", {Aspect::kTemporal, Aspect::kTimbral}},
      {"ORCHESTRA", {Aspect::kTimbral}},
      {"SECTION", {Aspect::kTimbral}},
      {"INSTRUMENT", {Aspect::kTimbral, Aspect::kPitch}},
      {"PART", {Aspect::kTimbral, Aspect::kGraphical}},
      {"VOICE", {Aspect::kTimbral, Aspect::kTemporal}},
      {"TEXT", {Aspect::kTextual}},
      {"SYLLABLE", {Aspect::kTextual, Aspect::kGraphical}},
      {"PAGE", {Aspect::kGraphical}},
      {"SYSTEM", {Aspect::kGraphical}},
      {"STAFF", {Aspect::kGraphical, Aspect::kPitch}},
      {"DEGREE", {Aspect::kGraphical, Aspect::kPitch}},
      {"CLEF", {Aspect::kGraphical, Aspect::kPitch}},
      {"KEY_SIGNATURE", {Aspect::kGraphical, Aspect::kPitch}},
      {"METER_SIGNATURE", {Aspect::kGraphical, Aspect::kTemporal}},
      {"STEM", {Aspect::kGraphical}},
      {"NOTE_HEAD", {Aspect::kGraphical}},
      {"ACCIDENTAL_MARK", {Aspect::kGraphical, Aspect::kPitch}},
      {"ANNOTATION", {Aspect::kGraphical, Aspect::kTextual}},
      {"HAIRPIN", {Aspect::kGraphical, Aspect::kDynamic}},
      {"ACCENT", {Aspect::kGraphical, Aspect::kArticulation}},
      {"SLUR", {Aspect::kGraphical, Aspect::kArticulation}},
      {"TIE", {Aspect::kGraphical, Aspect::kTemporal}},
  };
  return table;
}

}  // namespace

std::vector<Aspect> AspectsOf(const std::string& entity_type) {
  for (const AspectRow& row : AspectTable())
    if (EqualsIgnoreCase(row.type, entity_type)) return row.aspects;
  return {};
}

std::vector<Aspect> AttributeAspects(const std::string& entity_type,
                                     const std::string& attribute) {
  // Attribute-level classification: names carry the aspect.
  std::string a = AsciiLower(attribute);
  std::vector<Aspect> out;
  auto has = [&a](const char* needle) {
    return a.find(needle) != std::string::npos;
  };
  if (has("beat") || has("duration") || has("seconds") || has("start") ||
      has("end") || has("meter"))
    out.push_back(Aspect::kTemporal);
  if (has("key") || has("degree") || has("accidental") || has("sharps") ||
      has("pitch") || has("transposition"))
    out.push_back(Aspect::kPitch);
  if (has("articulation") || has("performance")) out.push_back(Aspect::kArticulation);
  if (has("dynamic") || has("velocity")) out.push_back(Aspect::kDynamic);
  if (has("pos") || has("width") || has("height") || has("shape") ||
      has("length") || has("direction") || has("thickness") || has("style") ||
      has("lines") || has("glyph") || has("span"))
    out.push_back(Aspect::kGraphical);
  if (has("text") || has("syllable") || has("language") || has("title") ||
      has("name"))
    out.push_back(Aspect::kTextual);
  if (out.empty()) {
    // Fall back to the owning type's aspects.
    out = AspectsOf(entity_type);
  }
  return out;
}

std::string AspectTreeText() {
  return
      "aspects of musical entities (fig 12)\n"
      "|- temporal      when events are performed\n"
      "|- timbral       how events are performed\n"
      "|  |- pitch          staff degree, accidentals, clefs, key\n"
      "|  |                 signatures, performance pitch\n"
      "|  |- articulation   staccato, marcato, pizzicato, arco\n"
      "|  |- dynamic        forte, pianissimo, inherited from context\n"
      "|- graphical     how events are notated on the page\n"
      "   |- textual        annotations, lyrics/libretti, syllables\n";
}

}  // namespace mdm::cmn

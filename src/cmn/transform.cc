#include "cmn/transform.h"

#include <algorithm>

#include "cmn/schema.h"
#include "cmn/score_builder.h"
#include "cmn/temporal.h"
#include "common/strings.h"
#include "mtime/meter.h"

namespace mdm::cmn {

using er::Database;
using er::EntityId;
using er::kInvalidEntityId;
using rel::Value;
using rel::ValueType;

namespace {

// Semitone offset of each diatonic step from C, and the diatonic step
// count corresponding to a semitone shift (rounded to nearest).
int DiatonicStepsForSemitones(int semitones) {
  // 12 semitones = 7 diatonic steps; round to nearest.
  int sign = semitones < 0 ? -1 : 1;
  int abs_semi = std::abs(semitones);
  return sign * ((abs_semi * 7 + 6) / 12);
}

}  // namespace

Result<std::vector<EntityId>> NotesInTemporalOrder(const Database& db,
                                                   EntityId score) {
  std::vector<EntityId> out;
  MDM_ASSIGN_OR_RETURN(std::vector<MeasureSpan> table,
                       BuildMeasureTable(db, score));
  for (const MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db.Children(kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db.Children(kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db.Children(kNoteInChord, chord));
        out.insert(out.end(), notes.begin(), notes.end());
      }
    }
  }
  return out;
}

Result<uint64_t> TransposeScore(Database* db, EntityId score,
                                int semitones) {
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                       NotesInTemporalOrder(*db, score));
  const int degree_shift = DiatonicStepsForSemitones(semitones);
  uint64_t updated = 0;
  for (EntityId note : notes) {
    MDM_ASSIGN_OR_RETURN(Value key, db->GetAttribute(note, "midi_key"));
    if (!key.is_null()) {
      int64_t shifted = key.AsInt() + semitones;
      if (shifted < 0 || shifted > 127)
        return OutOfRange(StrFormat(
            "transposition by %d pushes a note to MIDI %lld", semitones,
            (long long)shifted));
      MDM_RETURN_IF_ERROR(
          db->SetAttribute(note, "midi_key", Value::Int(shifted)));
    }
    MDM_ASSIGN_OR_RETURN(Value degree, db->GetAttribute(note, "degree"));
    if (!degree.is_null()) {
      MDM_RETURN_IF_ERROR(db->SetAttribute(
          note, "degree", Value::Int(degree.AsInt() + degree_shift)));
    }
    ++updated;
  }
  return updated;
}

Status RetrogradeVoice(Database* db, EntityId voice) {
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> elements,
                       db->Children(kVoiceSeq, voice));
  for (EntityId element : elements)
    MDM_RETURN_IF_ERROR(db->RemoveChild(kVoiceSeq, element));
  for (auto it = elements.rbegin(); it != elements.rend(); ++it)
    MDM_RETURN_IF_ERROR(db->AppendChild(kVoiceSeq, voice, *it));
  return Status::OK();
}

Result<EntityId> ExtractVoice(Database* db, EntityId score,
                              EntityId voice) {
  MDM_ASSIGN_OR_RETURN(Value title, db->GetAttribute(score, "title"));
  ScoreBuilder builder(db);
  MDM_ASSIGN_OR_RETURN(
      EntityId part_score,
      builder.CreateScore((title.is_null() ? "score" : title.AsString()) +
                          " (part)"));
  MDM_ASSIGN_OR_RETURN(EntityId movement,
                       builder.AddMovement(part_score, "part"));
  MDM_ASSIGN_OR_RETURN(EntityId new_voice, builder.AddVoice(1));

  // Recreate the measure skeleton with identical meters.
  MDM_ASSIGN_OR_RETURN(std::vector<MeasureSpan> table,
                       BuildMeasureTable(*db, score));
  std::vector<EntityId> new_measures;
  int number = 1;
  for (const MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(Value num, db->GetAttribute(span.measure,
                                                     "meter_num"));
    MDM_ASSIGN_OR_RETURN(Value den, db->GetAttribute(span.measure,
                                                     "meter_den"));
    mtime::TimeSignature sig{
        num.is_null() ? 4 : static_cast<int>(num.AsInt()),
        den.is_null() ? 4 : static_cast<int>(den.AsInt())};
    MDM_ASSIGN_OR_RETURN(EntityId m,
                         builder.AddMeasure(movement, number++, sig));
    new_measures.push_back(m);
  }

  // Clone the voice's chords (with notes) into the new skeleton at the
  // same temporal positions.
  for (size_t mi = 0; mi < table.size(); ++mi) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(kSyncInMeasure, table[mi].measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(Value beat, db->GetAttribute(sync, "beat"));
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(EntityId chord_voice,
                             db->ParentOf(kVoiceSeq, chord));
        if (chord_voice != voice) continue;
        MDM_ASSIGN_OR_RETURN(Value dur,
                             db->GetAttribute(chord, "duration_beats"));
        MDM_ASSIGN_OR_RETURN(
            EntityId new_sync,
            builder.GetOrAddSync(new_measures[mi], beat.is_null()
                                                       ? Rational(0)
                                                       : beat.AsRational()));
        MDM_ASSIGN_OR_RETURN(
            EntityId new_chord,
            builder.AddChord(new_sync, new_voice,
                             dur.is_null() ? Rational(1)
                                           : dur.AsRational()));
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(kNoteInChord, chord));
        for (EntityId note : notes) {
          MDM_ASSIGN_OR_RETURN(Value key, db->GetAttribute(note, "midi_key"));
          MDM_ASSIGN_OR_RETURN(
              EntityId new_note,
              builder.AddNoteMidi(new_chord, key.is_null()
                                                 ? 60
                                                 : static_cast<int>(
                                                       key.AsInt())));
          MDM_ASSIGN_OR_RETURN(Value degree,
                               db->GetAttribute(note, "degree"));
          if (!degree.is_null())
            MDM_RETURN_IF_ERROR(
                db->SetAttribute(new_note, "degree", degree));
        }
      }
    }
  }
  return part_score;
}

}  // namespace mdm::cmn

#include "cmn/schema.h"

#include "common/strings.h"
#include "ddl/parser.h"

namespace mdm::cmn {

namespace {

// The CMN schema, in the paper's own DDL. Attribute grouping follows
// fig 12: temporal attributes are rational score times / float seconds;
// pitch attributes are staff degrees and accidentals; articulation and
// dynamic attributes are modal strings; graphical attributes are page
// coordinates.
constexpr char kCmnDdl[] = R"(
  -- Temporal aspect (fig 13).
  define entity SCORE (title = string, catalog_id = string,
                       duration_beats = rational)
  define entity MOVEMENT (name = string, number = integer,
                          duration_beats = rational)
  define entity MEASURE (number = integer, meter_num = integer,
                         meter_den = integer)
  define entity SYNC (beat = rational)
  define entity GROUP (function = string, duration_beats = rational)
  define entity CHORD (duration_beats = rational, stem_direction = integer)
  define entity REST (duration_beats = rational)
  define entity EVENT (start_seconds = float, end_seconds = float)
  define entity NOTE (degree = integer, accidental = integer,
                      duration_beats = rational, midi_key = integer,
                      articulation = string, dynamic = string,
                      performance = string)
  define entity MIDI_EVENT (key = integer, velocity = integer,
                            channel = integer, start_seconds = float,
                            end_seconds = float)
  define entity MIDI_CONTROL (controller = integer, value = integer,
                              at_seconds = float)

  -- Timbral aspect.
  define entity ORCHESTRA (name = string)
  define entity SECTION (family = string)
  define entity INSTRUMENT (name = string, midi_program = integer,
                            transposition = integer)
  define entity PART (name = string)
  define entity VOICE (number = integer)
  define entity INSTRUMENT_DEF (name = string, patch = string)

  -- Graphical aspect.
  define entity PAGE (number = integer, width = integer, height = integer)
  define entity SYSTEM (number = integer, ypos = integer)
  define entity STAFF (number = integer, ypos = integer, lines = integer)
  define entity DEGREE (number = integer)
  define entity CLEF (kind = string, at_beat = rational)
  define entity KEY_SIGNATURE (sharps = integer, at_beat = rational)
  define entity METER_SIGNATURE (numerator = integer,
                                 denominator = integer,
                                 at_beat = rational)
  define entity NOTE_HEAD (shape = string, xpos = integer, ypos = integer)
  define entity STEM (xpos = integer, ypos = integer, length = integer,
                      direction = integer)
  define entity FLAG (count = integer)
  define entity DURATION_DOT (count = integer)
  define entity ACCIDENTAL_MARK (kind = integer, xpos = integer)
  define entity BARLINE (style = string)
  define entity BEAM (thickness = integer)
  define entity SLUR (x0 = integer, y0 = integer, x1 = integer,
                      y1 = integer)
  define entity TIE (x0 = integer, x1 = integer)
  define entity HAIRPIN (kind = string, x0 = integer, x1 = integer)
  define entity ACCENT (kind = string)
  define entity ANNOTATION (text = string, xpos = integer, ypos = integer)
  define entity FINGERING (finger = integer)
  define entity ARPEGGIO (span = integer)
  define entity LETTER (glyph = string)

  -- Textual subaspect.
  define entity TEXT (language = string)
  define entity SYLLABLE (text = string, melisma = integer)

  -- Temporal orderings (fig 13).
  define ordering movement_in_score (MOVEMENT) under SCORE
  define ordering measure_in_movement (MEASURE) under MOVEMENT
  define ordering sync_in_measure (SYNC) under MEASURE
  define ordering chord_in_sync (CHORD) under SYNC
  define ordering note_in_chord (NOTE) under CHORD
  -- Fig 15: groups gather chords and rests (and nest: beams in beams).
  define ordering group_seq (GROUP, CHORD, REST) under GROUP
  -- A voice is an ordered sequence of chords and rests (§5.5).
  define ordering voice_seq (CHORD, REST) under VOICE
  -- Ties bind notes under one performed event (§7.2).
  define ordering note_in_event (NOTE) under EVENT
  define ordering midi_in_event (MIDI_EVENT) under EVENT

  -- Timbral orderings.
  define ordering section_in_orchestra (SECTION) under ORCHESTRA
  define ordering instrument_in_section (INSTRUMENT) under SECTION
  define ordering part_in_instrument (PART) under INSTRUMENT
  define ordering staff_in_instrument (STAFF) under INSTRUMENT
  define ordering voice_in_part (VOICE) under PART

  -- Graphical orderings.
  define ordering page_in_score (PAGE) under SCORE
  define ordering system_on_page (SYSTEM) under PAGE
  define ordering staff_in_system (STAFF) under SYSTEM
  define ordering note_on_staff (NOTE) under STAFF
  define ordering degree_on_staff (DEGREE) under STAFF
  define ordering clef_on_staff (CLEF) under STAFF
  define ordering keysig_on_staff (KEY_SIGNATURE) under STAFF
  define ordering syllable_in_text (SYLLABLE) under TEXT

  -- Cross-aspect relationships.
  define relationship PERFORMS (orchestra = ORCHESTRA, score = SCORE)
  define relationship VOICE_OF_EVENT (event = EVENT, voice = VOICE)
  define relationship TEXT_OF_PART (part = PART, text = TEXT)
  define relationship SYLLABLE_OF_NOTE (note = NOTE, syllable = SYLLABLE)
  define relationship INSTRUMENT_PATCH (instrument = INSTRUMENT,
                                        def = INSTRUMENT_DEF)
)";

struct Fig11Row {
  const char* entity;
  const char* description;
};

constexpr Fig11Row kFig11[] = {
    {"Score", "The unit of musical composition"},
    {"Movement", "A temporal subsection of the score"},
    {"Measure", "A temporal subsection of the movement"},
    {"Sync", "Sets of simultaneous events"},
    {"Group", "A group of contiguous chords and rests in a voice"},
    {"Chord", "A set of notes in one voice at one sync"},
    {"Event", "An atomic unit of sound, one or more notes"},
    {"Note", "An atomic unit of music, a pitch in a chord"},
    {"Rest", "A \"chord\" containing no notes"},
    {"MIDI", "A MIDI note event"},
    {"MIDI control", "A MIDI control event at a point in time"},
    {"Orchestra", "A set of Instruments performing a Score"},
    {"Section", "A family of instruments"},
    {"Instrument", "The unit of timbral definition"},
    {"Part", "Music assigned to an individual performer"},
    {"Voice", "The unit of homophony"},
    {"Text", "In vocal music, a line of text associated with the notes"},
    {"Syllable", "The piece of text associated with a single note"},
    {"Page", "One graphical page of the score"},
    {"System", "One line of the score on a page"},
    {"Staff", "A division of the system, associated with an instrument"},
    {"Degree", "A division of the staff (line and space)"},
    {"Graphical Definitions", "All the graphical icons and linears"},
    {"Instrument Definitions", "Instrument patches and specifications"},
    {"Other graphical attributes",
     "Accents, Accidentals, Annotations, Arpeggii, Barlines, Beams, "
     "Clefs, Duration dots, Fingerings, Flags, Hairpins, Key signatures, "
     "Meter signatures, Note heads, Rests, Slurs, Staff lines, Stems, "
     "Ties, Letters, etc"},
};

}  // namespace

Status InstallCmnSchema(er::Database* db) {
  if (db->schema().FindEntityType("SCORE") != nullptr) return Status::OK();
  auto r = ddl::ExecuteDdl(kCmnDdl, db);
  return r.ok() ? Status::OK() : r.status();
}

const std::vector<std::string>& Fig11EntityTypes() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "SCORE",      "MOVEMENT",   "MEASURE",       "SYNC",
      "GROUP",      "CHORD",      "EVENT",         "NOTE",
      "REST",       "MIDI_EVENT", "MIDI_CONTROL",  "ORCHESTRA",
      "SECTION",    "INSTRUMENT", "PART",          "VOICE",
      "TEXT",       "SYLLABLE",   "PAGE",          "SYSTEM",
      "STAFF",      "DEGREE",     "INSTRUMENT_DEF"};
  return names;
}

std::string Fig11Table() {
  std::string out;
  out += StrFormat("%-24s| %s\n", "Entity type", "Description");
  out += std::string(80, '-') + "\n";
  for (const Fig11Row& row : kFig11)
    out += StrFormat("%-24s| %s\n", row.entity, row.description);
  return out;
}

}  // namespace mdm::cmn

#include "cmn/temporal.h"

#include <algorithm>
#include <map>

#include "cmn/score_builder.h"
#include "common/strings.h"
#include "mtime/meter.h"

namespace mdm::cmn {

using er::Database;
using er::EntityId;
using er::kInvalidEntityId;
using rel::Value;
using rel::ValueType;

namespace {

Result<Rational> RationalAttr(const Database& db, EntityId id,
                              const char* attr, Rational fallback) {
  MDM_ASSIGN_OR_RETURN(Value v, db.GetAttribute(id, attr));
  if (v.is_null()) return fallback;
  if (v.type() != ValueType::kRational)
    return TypeError(StrFormat("attribute %s is not rational", attr));
  return v.AsRational();
}

Result<int64_t> IntAttr(const Database& db, EntityId id, const char* attr,
                        int64_t fallback) {
  MDM_ASSIGN_OR_RETURN(Value v, db.GetAttribute(id, attr));
  if (v.is_null()) return fallback;
  return v.AsInt();
}

}  // namespace

Result<std::vector<MeasureSpan>> BuildMeasureTable(const Database& db,
                                                   EntityId score) {
  std::vector<MeasureSpan> table;
  Rational cursor(0);
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> movements,
                       db.Children(kMovementInScore, score));
  for (EntityId movement : movements) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> measures,
                         db.Children(kMeasureInMovement, movement));
    for (EntityId measure : measures) {
      MDM_ASSIGN_OR_RETURN(int64_t num, IntAttr(db, measure, "meter_num", 4));
      MDM_ASSIGN_OR_RETURN(int64_t den, IntAttr(db, measure, "meter_den", 4));
      mtime::TimeSignature sig{static_cast<int>(num), static_cast<int>(den)};
      MeasureSpan span;
      span.measure = measure;
      span.start = cursor;
      span.length = sig.BeatsPerMeasure();
      cursor += span.length;
      table.push_back(span);
    }
  }
  return table;
}

Result<Rational> SyncScoreTime(const Database& db, EntityId sync) {
  MDM_ASSIGN_OR_RETURN(EntityId measure, db.ParentOf(kSyncInMeasure, sync));
  if (measure == kInvalidEntityId)
    return FailedPrecondition("sync is not placed in a measure");
  MDM_ASSIGN_OR_RETURN(Rational beat,
                       RationalAttr(db, sync, "beat", Rational(0)));
  // Walk upward to the score to compute the measure's absolute start.
  MDM_ASSIGN_OR_RETURN(EntityId movement,
                       db.ParentOf(kMeasureInMovement, measure));
  if (movement == kInvalidEntityId)
    return FailedPrecondition("measure is not placed in a movement");
  MDM_ASSIGN_OR_RETURN(EntityId score,
                       db.ParentOf(kMovementInScore, movement));
  if (score == kInvalidEntityId)
    return FailedPrecondition("movement is not placed in a score");
  MDM_ASSIGN_OR_RETURN(std::vector<MeasureSpan> table,
                       BuildMeasureTable(db, score));
  for (const MeasureSpan& span : table)
    if (span.measure == measure) return span.start + beat;
  return Internal("measure missing from its own score's table");
}

Result<Rational> GroupDuration(Database* db, EntityId group) {
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> members,
                       db->Children(kGroupSeq, group));
  Rational total(0);
  for (EntityId member : members) {
    MDM_ASSIGN_OR_RETURN(std::string type, db->TypeOf(member));
    if (type == "GROUP") {
      MDM_ASSIGN_OR_RETURN(Rational inner, GroupDuration(db, member));
      total += inner;
    } else {
      MDM_ASSIGN_OR_RETURN(
          Rational d, RationalAttr(*db, member, "duration_beats", Rational(0)));
      total += d;
    }
  }
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(group, "duration_beats", Value::Rat(total)));
  return total;
}

int DynamicToVelocity(const std::string& dynamic) {
  static const std::pair<const char*, int> kTable[] = {
      {"ppp", 20}, {"pp", 32}, {"p", 44},  {"mp", 56},
      {"mf", 68},  {"f", 84},  {"ff", 100}, {"fff", 116}};
  for (const auto& [name, vel] : kTable)
    if (EqualsIgnoreCase(dynamic, name)) return vel;
  return 64;
}

Result<std::vector<PerformedNote>> ExtractPerformance(
    Database* db, EntityId score, const mtime::TempoMap& tempo) {
  MDM_ASSIGN_OR_RETURN(std::vector<MeasureSpan> table,
                       BuildMeasureTable(*db, score));
  std::vector<PerformedNote> out;
  // Tied continuation notes must not re-trigger: collect every note that
  // is a non-initial member of an EVENT.
  std::map<EntityId, Rational> event_extra;  // first note -> extra beats
  std::map<EntityId, bool> suppressed;       // continuation notes
  for (const MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(kNoteInChord, chord));
        for (EntityId note : notes) {
          MDM_ASSIGN_OR_RETURN(EntityId event,
                               db->ParentOf(kNoteInEvent, note));
          if (event == kInvalidEntityId) continue;
          MDM_ASSIGN_OR_RETURN(std::vector<EntityId> tied,
                               db->Children(kNoteInEvent, event));
          if (tied.empty() || tied.front() == note) continue;
          suppressed[note] = true;
        }
      }
    }
  }
  // Pre-compute tie extensions: for each event, extra duration beyond
  // the first note from the chords of its continuation notes.
  for (const MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(Rational chord_dur,
                             RationalAttr(*db, chord, "duration_beats",
                                          Rational(1)));
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(kNoteInChord, chord));
        for (EntityId note : notes) {
          if (suppressed.find(note) == suppressed.end()) continue;
          MDM_ASSIGN_OR_RETURN(EntityId event,
                               db->ParentOf(kNoteInEvent, note));
          MDM_ASSIGN_OR_RETURN(std::vector<EntityId> tied,
                               db->Children(kNoteInEvent, event));
          EntityId first = tied.front();
          auto [it, inserted] = event_extra.try_emplace(first, chord_dur);
          if (!inserted) it->second += chord_dur;
        }
      }
    }
  }
  // Emit performed notes.
  for (const MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(Rational beat,
                           RationalAttr(*db, sync, "beat", Rational(0)));
      Rational onset = span.start + beat;
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(Rational chord_dur,
                             RationalAttr(*db, chord, "duration_beats",
                                          Rational(1)));
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(kNoteInChord, chord));
        for (EntityId note : notes) {
          if (suppressed.count(note) != 0) continue;
          MDM_ASSIGN_OR_RETURN(int64_t key,
                               IntAttr(*db, note, "midi_key", 60));
          PerformedNote pn;
          pn.midi_key = static_cast<int>(key);
          pn.source_note = note;
          pn.start_beats = onset;
          pn.duration_beats = chord_dur;
          auto extra = event_extra.find(note);
          if (extra != event_extra.end()) pn.duration_beats += extra->second;
          // Dynamics -> velocity; articulation -> duration shaping.
          MDM_ASSIGN_OR_RETURN(Value dyn, db->GetAttribute(note, "dynamic"));
          if (!dyn.is_null()) pn.velocity = DynamicToVelocity(dyn.AsString());
          Rational sounding = pn.duration_beats;
          MDM_ASSIGN_OR_RETURN(Value art,
                               db->GetAttribute(note, "articulation"));
          if (!art.is_null() && EqualsIgnoreCase(art.AsString(), "staccato"))
            sounding = sounding * Rational(1, 2);
          pn.start_seconds = tempo.ToSeconds(pn.start_beats);
          pn.end_seconds = tempo.ToSeconds(pn.start_beats + sounding);
          out.push_back(pn);
          // Record performance times on the EVENT when one exists.
          MDM_ASSIGN_OR_RETURN(EntityId event,
                               db->ParentOf(kNoteInEvent, note));
          if (event != kInvalidEntityId) {
            MDM_RETURN_IF_ERROR(db->SetAttribute(
                event, "start_seconds", Value::Float(pn.start_seconds)));
            MDM_RETURN_IF_ERROR(db->SetAttribute(
                event, "end_seconds", Value::Float(pn.end_seconds)));
          }
        }
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PerformedNote& a, const PerformedNote& b) {
                     return a.start_seconds < b.start_seconds;
                   });
  return out;
}

Result<uint64_t> MaterializeMidiEvents(Database* db, EntityId score,
                                       const mtime::TempoMap& tempo) {
  MDM_ASSIGN_OR_RETURN(std::vector<PerformedNote> notes,
                       ExtractPerformance(db, score, tempo));
  uint64_t created = 0;
  for (const PerformedNote& pn : notes) {
    MDM_ASSIGN_OR_RETURN(EntityId midi, db->CreateEntity("MIDI_EVENT"));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(midi, "key", Value::Int(pn.midi_key)));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(midi, "velocity", Value::Int(pn.velocity)));
    MDM_RETURN_IF_ERROR(db->SetAttribute(midi, "channel", Value::Int(0)));
    MDM_RETURN_IF_ERROR(db->SetAttribute(midi, "start_seconds",
                                         Value::Float(pn.start_seconds)));
    MDM_RETURN_IF_ERROR(
        db->SetAttribute(midi, "end_seconds", Value::Float(pn.end_seconds)));
    MDM_ASSIGN_OR_RETURN(EntityId event,
                         db->ParentOf(kNoteInEvent, pn.source_note));
    if (event != kInvalidEntityId)
      MDM_RETURN_IF_ERROR(db->AppendChild(kMidiInEvent, event, midi));
    ++created;
  }
  return created;
}

Result<uint64_t> AlignVoicesToSyncs(Database* db, EntityId score,
                                    const std::vector<EntityId>& voices) {
  MDM_ASSIGN_OR_RETURN(std::vector<MeasureSpan> table,
                       BuildMeasureTable(*db, score));
  if (table.empty())
    return FailedPrecondition("score has no measures to align into");
  auto find_measure = [&table](const Rational& onset)
      -> Result<std::pair<EntityId, Rational>> {
    for (const MeasureSpan& span : table) {
      if (!(onset < span.start) && onset < span.start + span.length)
        return std::make_pair(span.measure, onset - span.start);
    }
    return OutOfRange(StrFormat("onset %s beyond the final measure",
                                onset.ToString().c_str()));
  };
  ScoreBuilder builder(db);
  for (EntityId voice : voices) {
    Rational cursor(0);
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> elements,
                         db->Children(kVoiceSeq, voice));
    for (EntityId element : elements) {
      MDM_ASSIGN_OR_RETURN(std::string type, db->TypeOf(element));
      MDM_ASSIGN_OR_RETURN(
          Rational dur,
          RationalAttr(*db, element, "duration_beats", Rational(1)));
      if (type == "CHORD") {
        MDM_ASSIGN_OR_RETURN(auto location, find_measure(cursor));
        MDM_ASSIGN_OR_RETURN(
            EntityId sync,
            builder.GetOrAddSync(location.first, location.second));
        // A chord already aligned (e.g. re-running alignment) stays put.
        MDM_ASSIGN_OR_RETURN(EntityId existing,
                             db->ParentOf(kChordInSync, element));
        if (existing == kInvalidEntityId)
          MDM_RETURN_IF_ERROR(db->AppendChild(kChordInSync, sync, element));
      }
      cursor += dur;  // rests advance time but produce no sync entry
    }
  }
  uint64_t total_syncs = 0;
  for (const MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(uint64_t n,
                         db->ChildCount(kSyncInMeasure, span.measure));
    total_syncs += n;
  }
  return total_syncs;
}

}  // namespace mdm::cmn

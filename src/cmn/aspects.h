#ifndef MDM_CMN_ASPECTS_H_
#define MDM_CMN_ASPECTS_H_

#include <string>
#include <vector>

namespace mdm::cmn {

/// The aspects of musical entities (fig 12). Timbral subdivides into
/// pitch, articulation and dynamic subaspects; graphical has a textual
/// subaspect.
enum class Aspect {
  kTemporal,
  kTimbral,
  kPitch,         // subaspect of timbral
  kArticulation,  // subaspect of timbral
  kDynamic,       // subaspect of timbral
  kGraphical,
  kTextual,       // subaspect of graphical
};

const char* AspectName(Aspect aspect);

/// The aspects in which an entity type of the CMN schema participates
/// ("many entities appear in the graphs for several aspects"). Unknown
/// types participate in none.
std::vector<Aspect> AspectsOf(const std::string& entity_type);

/// The aspects in which a (entity type, attribute) pair participates —
/// the fig 12 "views on the musical schema" at attribute granularity.
std::vector<Aspect> AttributeAspects(const std::string& entity_type,
                                     const std::string& attribute);

/// Regenerates fig 12 as an indented tree.
std::string AspectTreeText();

}  // namespace mdm::cmn

#endif  // MDM_CMN_ASPECTS_H_

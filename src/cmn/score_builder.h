#ifndef MDM_CMN_SCORE_BUILDER_H_
#define MDM_CMN_SCORE_BUILDER_H_

#include <string>

#include "cmn/pitch.h"
#include "cmn/schema.h"
#include "common/rational.h"
#include "common/result.h"
#include "er/database.h"
#include "mtime/meter.h"

namespace mdm::cmn {

/// Convenience layer for constructing CMN scores in an MDM database.
///
/// The builder is a thin typed facade over the ER operations — every
/// object it creates is an ordinary entity reachable through QUEL and
/// the ordering API. A typesetting or composition client (§2) would sit
/// exactly here.
class ScoreBuilder {
 public:
  /// The database must already have the CMN schema installed.
  explicit ScoreBuilder(er::Database* db) : db_(db) {}

  Result<er::EntityId> CreateScore(const std::string& title,
                                   const std::string& catalog_id = "");

  Result<er::EntityId> AddMovement(er::EntityId score,
                                   const std::string& name);

  /// Appends measure `number` with the given meter.
  Result<er::EntityId> AddMeasure(er::EntityId movement, int number,
                                  mtime::TimeSignature meter = {4, 4});

  /// Returns the sync at `beat` within the measure, creating it (in
  /// sorted position) if absent. Beats are quarter-note units from the
  /// measure start (fig 14).
  Result<er::EntityId> GetOrAddSync(er::EntityId measure,
                                    const Rational& beat);

  Result<er::EntityId> AddVoice(int number);

  /// Creates a chord of the given duration, attached both temporally
  /// (chord_in_sync) and timbrally (voice_seq).
  Result<er::EntityId> AddChord(er::EntityId sync, er::EntityId voice,
                                const Rational& duration);

  /// Appends a rest to the voice (rests occupy score time but produce
  /// no performance information, §7.2).
  Result<er::EntityId> AddRest(er::EntityId voice, const Rational& duration);

  /// Adds a note to a chord by notated position: staff degree under a
  /// clef, with an explicit accidental. The performance (MIDI) pitch is
  /// derived per §4.3 and stored alongside.
  Result<er::EntityId> AddNote(er::EntityId chord, Clef clef, int degree,
                               Accidental acc = Accidental::kNone,
                               AccidentalState* state = nullptr);

  /// Adds a note directly by MIDI key (for event-stream clients).
  Result<er::EntityId> AddNoteMidi(er::EntityId chord, int midi_key);

  /// Ties two notes into one performed EVENT (§7.2: "the Tie is a
  /// musical construct that binds multiple note entities under a single
  /// event entity"). `a` may already be tied; `b` must not be.
  Status Tie(er::EntityId a, er::EntityId b);

  /// Creates a GROUP with the given function ("beam", "slur", "tuplet")
  /// — fig 15 — and attaches elements in order.
  Result<er::EntityId> AddGroup(const std::string& function);
  Status AddToGroup(er::EntityId group, er::EntityId element);

  er::Database* db() { return db_; }

 private:
  er::Database* db_;
};

}  // namespace mdm::cmn

#endif  // MDM_CMN_SCORE_BUILDER_H_

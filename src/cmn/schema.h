#ifndef MDM_CMN_SCHEMA_H_
#define MDM_CMN_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "er/database.h"

namespace mdm::cmn {

// Ordering names used by the CMN schema (figs 13/15 and the timbral and
// graphical aspects). Exposed so clients and QUEL queries can name them.
inline constexpr char kMovementInScore[] = "movement_in_score";
inline constexpr char kMeasureInMovement[] = "measure_in_movement";
inline constexpr char kSyncInMeasure[] = "sync_in_measure";
inline constexpr char kChordInSync[] = "chord_in_sync";
inline constexpr char kNoteInChord[] = "note_in_chord";
inline constexpr char kGroupSeq[] = "group_seq";          // recursive
inline constexpr char kVoiceSeq[] = "voice_seq";          // chords+rests
inline constexpr char kNoteInEvent[] = "note_in_event";   // ties
inline constexpr char kMidiInEvent[] = "midi_in_event";
inline constexpr char kSectionInOrchestra[] = "section_in_orchestra";
inline constexpr char kInstrumentInSection[] = "instrument_in_section";
inline constexpr char kPartInInstrument[] = "part_in_instrument";
inline constexpr char kStaffInInstrument[] = "staff_in_instrument";
inline constexpr char kVoiceInPart[] = "voice_in_part";
inline constexpr char kPageInScore[] = "page_in_score";
inline constexpr char kSystemOnPage[] = "system_on_page";
inline constexpr char kStaffInSystem[] = "staff_in_system";
inline constexpr char kNoteOnStaff[] = "note_on_staff";
inline constexpr char kDegreeOnStaff[] = "degree_on_staff";
inline constexpr char kSyllableInText[] = "syllable_in_text";
inline constexpr char kClefOnStaff[] = "clef_on_staff";
inline constexpr char kKeySigOnStaff[] = "keysig_on_staff";

/// Installs the complete CMN schema of fig 11 — every entity type the
/// paper enumerates, with attributes grouped by aspect (fig 12), the
/// temporal-aspect orderings of fig 13, the group structure of fig 15,
/// and the timbral/graphical orderings described in §7.1.
///
/// Idempotent: a database that already has SCORE installed is left
/// unchanged.
Status InstallCmnSchema(er::Database* db);

/// Names of every entity type fig 11 lists (used to regenerate the
/// figure and by coverage tests).
const std::vector<std::string>& Fig11EntityTypes();

/// Regenerates fig 11 as a two-column text table (entity | description).
std::string Fig11Table();

}  // namespace mdm::cmn

#endif  // MDM_CMN_SCHEMA_H_

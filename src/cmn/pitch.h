#ifndef MDM_CMN_PITCH_H_
#define MDM_CMN_PITCH_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mdm::cmn {

/// Clefs supported by the CMN schema. The clef is the paper's §4.3
/// example of meta-musical information: it determines "a mapping from
/// staff degree to scale pitch" for everything after it on the staff.
enum class Clef { kTreble, kBass, kAlto, kTenor };

const char* ClefName(Clef clef);
Result<Clef> ParseClef(const std::string& name);

/// Explicit accidental marks. kNone means "inherit from the key
/// signature and any earlier accidental in the measure".
enum class Accidental {
  kNone = 0,
  kNatural,
  kSharp,
  kFlat,
  kDoubleSharp,
  kDoubleFlat,
};

/// Semitone offset contributed by an explicit accidental (natural = 0).
int AccidentalAlter(Accidental acc);

/// A diatonic pitch: step 0..6 = C D E F G A B, octave in scientific
/// pitch notation (octave 4 contains middle C), alter in semitones.
struct Pitch {
  int step = 0;
  int octave = 4;
  int alter = 0;

  /// MIDI key number (C4 = 60). Clamped to [0, 127].
  int MidiKey() const;
  /// "F#4", "Bb2", "C4".
  std::string Name() const;
};

/// Staff degrees use the DARMS convention: degree 1 is the bottom staff
/// line, 2 the bottom space, and so on upward; 0 and negatives continue
/// below the staff (ledger lines). DegreeToPitch applies the clef's
/// mapping ("Every Good Boy Does Fine" for the treble clef) and yields
/// the unaltered diatonic pitch.
Pitch DegreeToPitch(Clef clef, int degree);

/// Inverse of DegreeToPitch, ignoring alteration.
int PitchToDegree(Clef clef, const Pitch& pitch);

/// A key signature as a count of sharps (positive) or flats (negative),
/// e.g. +3 = A major / f# minor (the paper's §4.3 example), -2 = Bb
/// major / g minor (BWV 578's key).
///
/// Declarative reading: names the tonality. Procedural reading (also
/// §4.3): "perform all notes notated as F, C, or G one semitone higher
/// than written" — KeyAlter implements exactly that.
struct KeySignature {
  int sharps = 0;

  /// Semitone alteration the signature applies to `step` (0..6).
  int AlterFor(int step) const;
  /// Major-key name of the tonality ("A major", "Bb major").
  std::string MajorName() const;
};

/// Tracks accidentals within one measure: an explicit accidental on a
/// (step, octave) holds for the rest of the measure, overriding the key
/// signature (standard CMN semantics). Reset at each barline.
class AccidentalState {
 public:
  explicit AccidentalState(KeySignature key) : key_(key) {}

  /// Effective alteration for an unmarked note at (step, octave).
  int EffectiveAlter(int step, int octave) const;

  /// Records an explicit accidental; returns its alteration.
  int Apply(int step, int octave, Accidental acc);

  /// Barline: explicit accidentals expire.
  void Reset();

  const KeySignature& key() const { return key_; }

 private:
  KeySignature key_;
  // (step, octave) -> alteration; small, linear scan is fine.
  std::vector<std::pair<std::pair<int, int>, int>> marks_;
};

/// The complete §4.3 derivation: performance pitch of a note given its
/// staff degree, the governing clef and key signature, and any explicit
/// accidental, with `state` carrying earlier accidentals in the measure.
/// Returns the MIDI key and (via `out_pitch`) the spelled pitch.
int PerformancePitch(Clef clef, int degree, Accidental acc,
                     AccidentalState* state, Pitch* out_pitch);

}  // namespace mdm::cmn

#endif  // MDM_CMN_PITCH_H_

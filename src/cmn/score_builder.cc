#include "cmn/score_builder.h"

#include "common/strings.h"

namespace mdm::cmn {

using er::EntityId;
using rel::Value;

Result<EntityId> ScoreBuilder::CreateScore(const std::string& title,
                                           const std::string& catalog_id) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("SCORE"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "title", Value::String(title)));
  if (!catalog_id.empty())
    MDM_RETURN_IF_ERROR(
        db_->SetAttribute(id, "catalog_id", Value::String(catalog_id)));
  return id;
}

Result<EntityId> ScoreBuilder::AddMovement(EntityId score,
                                           const std::string& name) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("MOVEMENT"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "name", Value::String(name)));
  MDM_ASSIGN_OR_RETURN(uint64_t n, db_->ChildCount(kMovementInScore, score));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "number", Value::Int(static_cast<int64_t>(n))));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kMovementInScore, score, id));
  return id;
}

Result<EntityId> ScoreBuilder::AddMeasure(EntityId movement, int number,
                                          mtime::TimeSignature meter) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("MEASURE"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "number", Value::Int(number)));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "meter_num", Value::Int(meter.numerator)));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "meter_den", Value::Int(meter.denominator)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kMeasureInMovement, movement, id));
  return id;
}

Result<EntityId> ScoreBuilder::GetOrAddSync(EntityId measure,
                                            const Rational& beat) {
  if (beat.IsNegative())
    return InvalidArgument("sync beat must be non-negative");
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                       db_->Children(kSyncInMeasure, measure));
  // Keep syncs sorted by beat; reuse an existing sync at the same point
  // of alignment (fig 14: syncs are shared by simultaneous events).
  size_t insert_at = syncs.size();
  for (size_t i = 0; i < syncs.size(); ++i) {
    MDM_ASSIGN_OR_RETURN(Value v, db_->GetAttribute(syncs[i], "beat"));
    if (v.is_null()) continue;
    const Rational& b = v.AsRational();
    if (b == beat) return syncs[i];
    if (beat < b) {
      insert_at = i;
      break;
    }
  }
  MDM_ASSIGN_OR_RETURN(EntityId sync, db_->CreateEntity("SYNC"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(sync, "beat", Value::Rat(beat)));
  MDM_RETURN_IF_ERROR(
      db_->InsertChildAt(kSyncInMeasure, measure, sync, insert_at));
  return sync;
}

Result<EntityId> ScoreBuilder::AddVoice(int number) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("VOICE"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "number", Value::Int(number)));
  return id;
}

Result<EntityId> ScoreBuilder::AddChord(EntityId sync, EntityId voice,
                                        const Rational& duration) {
  if (duration.IsNegative() || duration.IsZero())
    return InvalidArgument("chord duration must be positive");
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("CHORD"));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "duration_beats", Value::Rat(duration)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kChordInSync, sync, id));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kVoiceSeq, voice, id));
  return id;
}

Result<EntityId> ScoreBuilder::AddRest(EntityId voice,
                                       const Rational& duration) {
  if (duration.IsNegative() || duration.IsZero())
    return InvalidArgument("rest duration must be positive");
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("REST"));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "duration_beats", Value::Rat(duration)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kVoiceSeq, voice, id));
  return id;
}

Result<EntityId> ScoreBuilder::AddNote(EntityId chord, Clef clef, int degree,
                                       Accidental acc,
                                       AccidentalState* state) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("NOTE"));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "degree", Value::Int(degree)));
  MDM_RETURN_IF_ERROR(db_->SetAttribute(
      id, "accidental", Value::Int(static_cast<int64_t>(acc))));
  Pitch pitch;
  int midi = PerformancePitch(clef, degree, acc, state, &pitch);
  MDM_RETURN_IF_ERROR(db_->SetAttribute(id, "midi_key", Value::Int(midi)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kNoteInChord, chord, id));
  return id;
}

Result<EntityId> ScoreBuilder::AddNoteMidi(EntityId chord, int midi_key) {
  if (midi_key < 0 || midi_key > 127)
    return InvalidArgument(StrFormat("MIDI key %d out of range", midi_key));
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("NOTE"));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "midi_key", Value::Int(midi_key)));
  MDM_RETURN_IF_ERROR(db_->AppendChild(kNoteInChord, chord, id));
  return id;
}

Status ScoreBuilder::Tie(EntityId a, EntityId b) {
  MDM_ASSIGN_OR_RETURN(std::string type_a, db_->TypeOf(a));
  MDM_ASSIGN_OR_RETURN(std::string type_b, db_->TypeOf(b));
  if (type_a != "NOTE" || type_b != "NOTE")
    return TypeError("ties bind notes");
  MDM_ASSIGN_OR_RETURN(EntityId event_a, db_->ParentOf(kNoteInEvent, a));
  MDM_ASSIGN_OR_RETURN(EntityId event_b, db_->ParentOf(kNoteInEvent, b));
  if (event_b != er::kInvalidEntityId)
    return ConstraintViolation("note is already tied into an event");
  if (event_a == er::kInvalidEntityId) {
    MDM_ASSIGN_OR_RETURN(event_a, db_->CreateEntity("EVENT"));
    MDM_RETURN_IF_ERROR(db_->AppendChild(kNoteInEvent, event_a, a));
  }
  return db_->AppendChild(kNoteInEvent, event_a, b);
}

Result<EntityId> ScoreBuilder::AddGroup(const std::string& function) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db_->CreateEntity("GROUP"));
  MDM_RETURN_IF_ERROR(
      db_->SetAttribute(id, "function", Value::String(function)));
  return id;
}

Status ScoreBuilder::AddToGroup(EntityId group, EntityId element) {
  return db_->AppendChild(kGroupSeq, group, element);
}

}  // namespace mdm::cmn

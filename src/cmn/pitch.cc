#include "cmn/pitch.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"

namespace mdm::cmn {

const char* ClefName(Clef clef) {
  switch (clef) {
    case Clef::kTreble: return "treble";
    case Clef::kBass: return "bass";
    case Clef::kAlto: return "alto";
    case Clef::kTenor: return "tenor";
  }
  return "?";
}

Result<Clef> ParseClef(const std::string& name) {
  std::string n = AsciiLower(name);
  if (n == "treble" || n == "g") return Clef::kTreble;
  if (n == "bass" || n == "f") return Clef::kBass;
  if (n == "alto" || n == "c") return Clef::kAlto;
  if (n == "tenor") return Clef::kTenor;
  return InvalidArgument("unknown clef " + name);
}

int AccidentalAlter(Accidental acc) {
  switch (acc) {
    case Accidental::kNone:
    case Accidental::kNatural:
      return 0;
    case Accidental::kSharp: return 1;
    case Accidental::kFlat: return -1;
    case Accidental::kDoubleSharp: return 2;
    case Accidental::kDoubleFlat: return -2;
  }
  return 0;
}

namespace {

// Semitones above C for each diatonic step C D E F G A B.
constexpr int kStepSemis[7] = {0, 2, 4, 5, 7, 9, 11};
constexpr char kStepNames[7] = {'C', 'D', 'E', 'F', 'G', 'A', 'B'};

// Absolute diatonic index (octave*7 + step) of staff degree 1 (the
// bottom line) for each clef: E4 (treble), G2 (bass), F3 (alto), D3
// (tenor).
int BottomLineDiatonic(Clef clef) {
  switch (clef) {
    case Clef::kTreble: return 4 * 7 + 2;  // E4
    case Clef::kBass: return 2 * 7 + 4;    // G2
    case Clef::kAlto: return 3 * 7 + 3;    // F3
    case Clef::kTenor: return 3 * 7 + 1;   // D3
  }
  return 4 * 7;
}

// Order in which sharps (F C G D A E B) and flats (B E A D G C F) are
// applied, as step indices.
constexpr int kSharpOrder[7] = {3, 0, 4, 1, 5, 2, 6};
constexpr int kFlatOrder[7] = {6, 2, 5, 1, 4, 0, 3};

}  // namespace

int Pitch::MidiKey() const {
  int key = 12 * (octave + 1) + kStepSemis[((step % 7) + 7) % 7] + alter;
  return std::clamp(key, 0, 127);
}

std::string Pitch::Name() const {
  std::string out(1, kStepNames[((step % 7) + 7) % 7]);
  int a = alter;
  while (a > 0) {
    out += '#';
    --a;
  }
  while (a < 0) {
    out += 'b';
    ++a;
  }
  out += std::to_string(octave);
  return out;
}

Pitch DegreeToPitch(Clef clef, int degree) {
  int diatonic = BottomLineDiatonic(clef) + (degree - 1);
  Pitch p;
  p.octave = diatonic >= 0 ? diatonic / 7 : (diatonic - 6) / 7;
  p.step = diatonic - p.octave * 7;
  p.alter = 0;
  return p;
}

int PitchToDegree(Clef clef, const Pitch& pitch) {
  int diatonic = pitch.octave * 7 + pitch.step;
  return diatonic - BottomLineDiatonic(clef) + 1;
}

int KeySignature::AlterFor(int step) const {
  int n = std::clamp(sharps, -7, 7);
  if (n > 0) {
    for (int i = 0; i < n; ++i)
      if (kSharpOrder[i] == step) return 1;
  } else if (n < 0) {
    for (int i = 0; i < -n; ++i)
      if (kFlatOrder[i] == step) return -1;
  }
  return 0;
}

std::string KeySignature::MajorName() const {
  // Circle of fifths from C.
  static const char* kNames[] = {"Cb", "Gb", "Db", "Ab", "Eb", "Bb", "F",
                                 "C",  "G",  "D",  "A",  "E",  "B",  "F#",
                                 "C#"};
  int n = std::clamp(sharps, -7, 7);
  return std::string(kNames[n + 7]) + " major";
}

int AccidentalState::EffectiveAlter(int step, int octave) const {
  for (auto it = marks_.rbegin(); it != marks_.rend(); ++it)
    if (it->first == std::make_pair(step, octave)) return it->second;
  return key_.AlterFor(step);
}

int AccidentalState::Apply(int step, int octave, Accidental acc) {
  if (acc == Accidental::kNone) return EffectiveAlter(step, octave);
  int alter = AccidentalAlter(acc);
  marks_.push_back({{step, octave}, alter});
  return alter;
}

void AccidentalState::Reset() { marks_.clear(); }

int PerformancePitch(Clef clef, int degree, Accidental acc,
                     AccidentalState* state, Pitch* out_pitch) {
  Pitch p = DegreeToPitch(clef, degree);
  p.alter = state != nullptr
                ? state->Apply(p.step, p.octave, acc)
                : (acc == Accidental::kNone ? 0 : AccidentalAlter(acc));
  if (out_pitch != nullptr) *out_pitch = p;
  return p.MidiKey();
}

}  // namespace mdm::cmn

#include "analysis/harmony.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "cmn/schema.h"
#include "common/strings.h"

namespace mdm::analysis {

using cmn::PerformedNote;
using er::Database;
using er::EntityId;

const char* ChordQualityName(ChordQuality quality) {
  switch (quality) {
    case ChordQuality::kMajor: return "maj";
    case ChordQuality::kMinor: return "min";
    case ChordQuality::kDiminished: return "dim";
    case ChordQuality::kAugmented: return "aug";
    case ChordQuality::kDominantSeventh: return "7";
    case ChordQuality::kMajorSeventh: return "maj7";
    case ChordQuality::kMinorSeventh: return "min7";
    case ChordQuality::kOther: return "?";
  }
  return "?";
}

namespace {

const char* kPcNames[12] = {"C",  "C#", "D",  "Eb", "E",  "F",
                            "F#", "G",  "Ab", "A",  "Bb", "B"};

struct Template {
  ChordQuality quality;
  std::vector<int> intervals;  // semitones above the root
};

const std::vector<Template>& Templates() {
  static const std::vector<Template>& t = *new std::vector<Template>{
      // Sevenths first so they win over their embedded triads.
      {ChordQuality::kDominantSeventh, {0, 4, 7, 10}},
      {ChordQuality::kMajorSeventh, {0, 4, 7, 11}},
      {ChordQuality::kMinorSeventh, {0, 3, 7, 10}},
      {ChordQuality::kMajor, {0, 4, 7}},
      {ChordQuality::kMinor, {0, 3, 7}},
      {ChordQuality::kDiminished, {0, 3, 6}},
      {ChordQuality::kAugmented, {0, 4, 8}},
  };
  return t;
}

}  // namespace

std::string ChordLabel::Name() const {
  return StrFormat("%s %s", kPcNames[((root_pc % 12) + 12) % 12],
                   ChordQualityName(quality));
}

ChordLabel ClassifyChord(const std::vector<int>& midi_keys) {
  ChordLabel label;
  if (midi_keys.empty()) return label;
  int lowest = *std::min_element(midi_keys.begin(), midi_keys.end());
  label.root_pc = ((lowest % 12) + 12) % 12;

  std::set<int> pcs;
  for (int key : midi_keys) pcs.insert(((key % 12) + 12) % 12);
  if (pcs.size() < 3) return label;

  // Try every pitch class present as a candidate root, in every
  // template; exact pitch-class-set match (inversions fold away).
  for (const Template& t : Templates()) {
    if (t.intervals.size() != pcs.size()) continue;
    for (int root : pcs) {
      bool all = true;
      for (int interval : t.intervals) {
        if (pcs.count((root + interval) % 12) == 0) {
          all = false;
          break;
        }
      }
      if (all) {
        label.root_pc = root;
        label.quality = t.quality;
        return label;
      }
    }
  }
  return label;
}

Result<std::vector<ChordLabel>> AnalyzeHarmony(Database* db, EntityId score,
                                               int min_notes) {
  MDM_ASSIGN_OR_RETURN(std::vector<cmn::MeasureSpan> table,
                       cmn::BuildMeasureTable(*db, score));
  std::vector<ChordLabel> out;
  for (const cmn::MeasureSpan& span : table) {
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(cmn::kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(rel::Value beat, db->GetAttribute(sync, "beat"));
      std::vector<int> keys;
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(cmn::kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(cmn::kNoteInChord, chord));
        for (EntityId note : notes) {
          MDM_ASSIGN_OR_RETURN(rel::Value key,
                               db->GetAttribute(note, "midi_key"));
          if (!key.is_null()) keys.push_back(static_cast<int>(key.AsInt()));
        }
      }
      if (static_cast<int>(keys.size()) < min_notes) continue;
      ChordLabel label = ClassifyChord(keys);
      label.score_time =
          span.start + (beat.is_null() ? Rational(0) : beat.AsRational());
      out.push_back(label);
    }
  }
  return out;
}

std::string KeyEstimate::Name() const {
  return StrFormat("%s %s", kPcNames[((tonic_pc % 12) + 12) % 12],
                   minor ? "minor" : "major");
}

KeyEstimate EstimateKey(const std::vector<PerformedNote>& notes) {
  // Krumhansl–Kessler probe-tone profiles.
  static const double kMajorProfile[12] = {6.35, 2.23, 3.48, 2.33, 4.38,
                                           4.09, 2.52, 5.19, 2.39, 3.66,
                                           2.29, 2.88};
  static const double kMinorProfile[12] = {6.33, 2.68, 3.52, 5.38, 2.60,
                                           3.53, 2.54, 4.75, 3.98, 2.69,
                                           3.34, 3.17};
  double histogram[12] = {};
  for (const PerformedNote& n : notes) {
    double weight = std::max(1e-6, n.end_seconds - n.start_seconds);
    histogram[((n.midi_key % 12) + 12) % 12] += weight;
  }
  auto correlate = [&histogram](const double* profile, int rotation) {
    double mean_h = 0, mean_p = 0;
    for (int i = 0; i < 12; ++i) {
      mean_h += histogram[i];
      mean_p += profile[i];
    }
    mean_h /= 12;
    mean_p /= 12;
    double num = 0, den_h = 0, den_p = 0;
    for (int i = 0; i < 12; ++i) {
      double h = histogram[(i + rotation) % 12] - mean_h;
      double p = profile[i] - mean_p;
      num += h * p;
      den_h += h * h;
      den_p += p * p;
    }
    double den = std::sqrt(den_h * den_p);
    return den == 0 ? 0.0 : num / den;
  };
  KeyEstimate best;
  best.correlation = -2;
  for (int tonic = 0; tonic < 12; ++tonic) {
    double major = correlate(kMajorProfile, tonic);
    double minor = correlate(kMinorProfile, tonic);
    if (major > best.correlation) {
      best = {tonic, false, major};
    }
    if (minor > best.correlation) {
      best = {tonic, true, minor};
    }
  }
  return best;
}

MelodicProfile ProfileMelody(const std::vector<PerformedNote>& notes) {
  MelodicProfile p;
  p.notes = static_cast<int>(notes.size());
  if (notes.empty()) return p;
  int lo = 127, hi = 0;
  int ascent = 0, descent = 0;
  for (size_t i = 0; i < notes.size(); ++i) {
    lo = std::min(lo, notes[i].midi_key);
    hi = std::max(hi, notes[i].midi_key);
    if (i == 0) continue;
    int interval = notes[i].midi_key - notes[i - 1].midi_key;
    if (interval == 0) {
      ++p.repeats;
      ascent = descent = 0;
    } else if (std::abs(interval) <= 2) {
      ++p.steps;
    } else {
      ++p.leaps;
    }
    if (interval > 0) {
      ascent += 1;
      descent = 0;
      p.longest_ascent = std::max(p.longest_ascent, ascent);
    } else if (interval < 0) {
      descent += 1;
      ascent = 0;
      p.longest_descent = std::max(p.longest_descent, descent);
    }
  }
  p.ambitus = hi - lo;
  return p;
}

}  // namespace mdm::analysis

#ifndef MDM_ANALYSIS_HARMONY_H_
#define MDM_ANALYSIS_HARMONY_H_

#include <string>
#include <vector>

#include "cmn/temporal.h"
#include "common/result.h"
#include "er/database.h"

namespace mdm::analysis {

/// §2: "Music Analysis Systems: ... systems that perform various sorts
/// of harmonic analysis, or those that determine melodic structure."
/// This module is such a client, built purely on the MDM's public API.

/// Triad/seventh qualities recognized by the classifier.
enum class ChordQuality {
  kMajor,
  kMinor,
  kDiminished,
  kAugmented,
  kDominantSeventh,
  kMajorSeventh,
  kMinorSeventh,
  kOther,
};

const char* ChordQualityName(ChordQuality quality);

/// A classified vertical sonority.
struct ChordLabel {
  int root_pc = 0;  // pitch class 0..11 (C = 0)
  ChordQuality quality = ChordQuality::kOther;
  Rational score_time;  // onset in beats from the score start

  /// "G min", "D maj7", "B dim" ...
  std::string Name() const;
};

/// Classifies a set of MIDI keys as a chord: octave-folds to pitch
/// classes and matches against triad/seventh templates in any
/// inversion. Fewer than 3 distinct pitch classes, or no template
/// match, yields kOther with the lowest note as root.
ChordLabel ClassifyChord(const std::vector<int>& midi_keys);

/// Harmonic analysis of a stored score: for every sync, the sounding
/// notes across all voices are gathered and classified. Syncs with
/// fewer than `min_notes` sounding notes are skipped.
Result<std::vector<ChordLabel>> AnalyzeHarmony(er::Database* db,
                                               er::EntityId score,
                                               int min_notes = 3);

/// A key estimate with its correlation score.
struct KeyEstimate {
  int tonic_pc = 0;
  bool minor = false;
  double correlation = 0;

  std::string Name() const;  // "G minor"
};

/// Krumhansl–Schmuckler key finding: correlates the duration-weighted
/// pitch-class distribution of the performance against the 24
/// major/minor key profiles and returns the best match.
KeyEstimate EstimateKey(const std::vector<cmn::PerformedNote>& notes);

/// Melodic-structure report (§2's "determine melodic structure"):
/// counts of steps/leaps/repeats, ambitus, and the longest ascending
/// and descending runs of a monophonic line.
struct MelodicProfile {
  int notes = 0;
  int steps = 0;
  int leaps = 0;
  int repeats = 0;
  int ambitus = 0;
  int longest_ascent = 0;
  int longest_descent = 0;
};

MelodicProfile ProfileMelody(const std::vector<cmn::PerformedNote>& notes);

}  // namespace mdm::analysis

#endif  // MDM_ANALYSIS_HARMONY_H_

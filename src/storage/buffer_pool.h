#ifndef MDM_STORAGE_BUFFER_POOL_H_
#define MDM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mdm::storage {

/// Counters exposed for tests and the storage benchmarks. This is the
/// per-pool view; process-wide totals are mirrored on the obs registry
/// as mdm_storage_bufferpool_* (see docs/OBSERVABILITY.md).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Fixed-capacity page cache with LRU eviction over unpinned frames.
///
/// Protocol: FetchPage/NewPage return a pinned frame; the caller must
/// balance every fetch with UnpinPage(id, dirty). A pinned page is never
/// evicted.
///
/// Thread safety: all public methods are safe to call concurrently.
/// One pool mutex guards the page table, LRU state, free list and
/// stats; miss I/O and dirty writebacks run under it (simple and
/// correct — see docs/CONCURRENCY.md for the trade-off). A returned
/// Page* stays valid while pinned; concurrent readers/writers of the
/// same frame coordinate through the per-frame `Page::latch`, which
/// they must release before calling back into the pool (lock
/// hierarchy: pool mutex → frame latch, never the reverse from a
/// client). Destruction must be externally quiesced.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the frame for `id`, reading it from disk on a miss.
  Result<Page*> FetchPage(PageId id);

  /// Allocates a new page on disk and returns its pinned frame.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the frame as modified.
  Status UnpinPage(PageId id, bool dirty);

  /// Writes back all dirty frames and syncs the disk manager.
  Status FlushAll();

  /// Snapshot of the counters (by value: safe under concurrency).
  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  size_t capacity() const { return capacity_; }
  DiskManager* disk() const { return disk_; }

 private:
  // Returns a free frame, evicting the LRU unpinned page if needed.
  // Requires mu_ held.
  Result<Page*> GetVictimFrame();
  void TouchLru(PageId id);  // Requires mu_ held.

  DiskManager* disk_;
  size_t capacity_;
  // mu_ guards everything below it (frames_ itself is immutable after
  // construction; the Page objects it owns are guarded as documented
  // on Page).
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, Page*> page_table_;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_pos_;
  std::vector<Page*> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_BUFFER_POOL_H_

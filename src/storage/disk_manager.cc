#include "storage/disk_manager.h"

#include <cstring>

#include "common/strings.h"

namespace mdm::storage {

MemoryDiskManager::MemoryDiskManager() {
  PageId id;
  (void)AllocatePage(&id);  // page 0: database header
}

Status MemoryDiskManager::AllocatePage(PageId* id) {
  *id = static_cast<PageId>(pages_.size());
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  pages_.push_back(std::move(buf));
  return Status::OK();
}

Status MemoryDiskManager::ReadPage(PageId id, uint8_t* out) {
  if (id >= pages_.size())
    return OutOfRange(StrFormat("read of unallocated page %u", id));
  std::memcpy(out, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemoryDiskManager::WritePage(PageId id, const uint8_t* data) {
  if (id >= pages_.size())
    return OutOfRange(StrFormat("write of unallocated page %u", id));
  std::memcpy(pages_[id].get(), data, kPageSize);
  return Status::OK();
}

uint32_t MemoryDiskManager::NumPages() const {
  return static_cast<uint32_t>(pages_.size());
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return IoError("cannot open database file " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return IoError("seek failed on " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return IoError("ftell failed on " + path);
  }
  if (size % static_cast<long>(kPageSize) != 0) {
    std::fclose(f);
    return Corruption(StrFormat("database file %s has partial page (size %ld)",
                                path.c_str(), size));
  }
  auto dm = std::unique_ptr<FileDiskManager>(
      new FileDiskManager(f, static_cast<uint32_t>(size / kPageSize)));
  if (dm->num_pages_ == 0) {
    PageId id;
    MDM_RETURN_IF_ERROR(dm->AllocatePage(&id));  // page 0: header
  }
  return dm;
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::AllocatePage(PageId* id) {
  uint8_t zeros[kPageSize] = {};
  *id = num_pages_;
  if (std::fseek(file_, static_cast<long>(num_pages_) * kPageSize, SEEK_SET) !=
          0 ||
      std::fwrite(zeros, 1, kPageSize, file_) != kPageSize)
    return IoError("page allocation write failed");
  ++num_pages_;
  return Status::OK();
}

Status FileDiskManager::ReadPage(PageId id, uint8_t* out) {
  if (id >= num_pages_)
    return OutOfRange(StrFormat("read of unallocated page %u", id));
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize)
    return IoError(StrFormat("page %u read failed", id));
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const uint8_t* data) {
  if (id >= num_pages_)
    return OutOfRange(StrFormat("write of unallocated page %u", id));
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize)
    return IoError(StrFormat("page %u write failed", id));
  return Status::OK();
}

uint32_t FileDiskManager::NumPages() const { return num_pages_; }

Status FileDiskManager::Sync() {
  if (std::fflush(file_) != 0) return IoError("fflush failed");
  return Status::OK();
}

}  // namespace mdm::storage

#include "storage/disk_manager.h"

#include <cstring>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/io.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace mdm::storage {

namespace {

obs::Counter* PageReads() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_storage_page_reads_total",
      "Pages read through a disk manager (memory or file backed)");
  return c;
}

obs::Counter* PageWrites() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_storage_page_writes_total",
      "Pages written through a disk manager (memory or file backed)");
  return c;
}

obs::Counter* PageAllocs() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_storage_page_allocs_total", "Pages allocated");
  return c;
}

obs::Counter* ChecksumFailures() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_storage_checksum_failures_total",
      "Page frames rejected as torn, bit-flipped or misdirected");
  return c;
}

}  // namespace

MemoryDiskManager::MemoryDiskManager() {
  PageId id;
  (void)AllocatePage(&id);  // page 0: database header
}

Status MemoryDiskManager::AllocatePage(PageId* id) {
  *id = static_cast<PageId>(pages_.size());
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  pages_.push_back(std::move(buf));
  PageAllocs()->Inc();
  return Status::OK();
}

Status MemoryDiskManager::ReadPage(PageId id, uint8_t* out) {
  if (id >= pages_.size())
    return OutOfRange(StrFormat("read of unallocated page %u", id));
  std::memcpy(out, pages_[id].get(), kPageSize);
  PageReads()->Inc();
  return Status::OK();
}

Status MemoryDiskManager::WritePage(PageId id, const uint8_t* data) {
  if (id >= pages_.size())
    return OutOfRange(StrFormat("write of unallocated page %u", id));
  std::memcpy(pages_[id].get(), data, kPageSize);
  PageWrites()->Inc();
  return Status::OK();
}

uint32_t MemoryDiskManager::NumPages() const {
  return static_cast<uint32_t>(pages_.size());
}

namespace {

void PutU32At(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32At(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

long FrameOffset(PageId id) {
  return static_cast<long>(kSuperblockSize) +
         static_cast<long>(id) * static_cast<long>(kPageFrameSize);
}

/// Fills the 16-byte frame header and returns the frame CRC: CRC32 over
/// page_id + reserved + data, i.e. everything after the crc field.
void BuildFrame(PageId id, const uint8_t* data, uint8_t* frame) {
  std::memset(frame, 0, kPageFrameHeaderSize);
  PutU32At(frame + 4, id);
  std::memcpy(frame + kPageFrameHeaderSize, data, kPageSize);
  uint32_t crc = Crc32(frame + 4, kPageFrameSize - 4);
  PutU32At(frame, crc);
}

void BuildSuperblock(uint8_t* block) {
  std::memset(block, 0, kSuperblockSize);
  std::memcpy(block, kDbFileMagic, 4);
  PutU32At(block + 4, kPageFormatVersion);
  PutU32At(block + 8, static_cast<uint32_t>(kPageFrameSize));
  PutU32At(block + 12, Crc32(block, 12));
}

Status WriteSuperblock(std::FILE* f) {
  uint8_t block[kSuperblockSize];
  BuildSuperblock(block);
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fwrite(block, 1, kSuperblockSize, f) != kSuperblockSize)
    return IoError("superblock write failed");
  return Status::OK();
}

/// Rewrites a version-1 file (raw 4 KiB pages, no checksums) into the
/// checksummed v2 format via a temporary file + rename, returning the
/// reopened stream.
Result<std::FILE*> MigrateV1File(const std::string& path, std::FILE* old_f,
                                 long old_size) {
  uint32_t num_pages = static_cast<uint32_t>(old_size / kPageSize);
  std::string tmp = path + ".upgrade";
  std::FILE* nf = std::fopen(tmp.c_str(), "wb");
  if (nf == nullptr) {
    std::fclose(old_f);
    return IoError("cannot create migration file " + tmp);
  }
  Status st = WriteSuperblock(nf);
  uint8_t data[kPageSize];
  uint8_t frame[kPageFrameSize];
  for (PageId id = 0; st.ok() && id < num_pages; ++id) {
    if (std::fseek(old_f, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
        std::fread(data, 1, kPageSize, old_f) != kPageSize) {
      st = IoError(StrFormat("migration read of page %u failed", id));
      break;
    }
    BuildFrame(id, data, frame);
    if (std::fwrite(frame, 1, kPageFrameSize, nf) != kPageFrameSize)
      st = IoError(StrFormat("migration write of page %u failed", id));
  }
  if (st.ok()) st = SyncStream(nf, tmp);
  std::fclose(old_f);
  std::fclose(nf);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return IoError("migration rename failed for " + path);
  MDM_RETURN_IF_ERROR(SyncParentDir(path));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return IoError("cannot reopen migrated file " + path);
  return f;
}

}  // namespace

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return IoError("cannot open database file " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return IoError("seek failed on " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return IoError("ftell failed on " + path);
  }
  if (size == 0) {
    // Fresh database: superblock, then the conventional header page.
    Status st = WriteSuperblock(f);
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    auto dm = std::unique_ptr<FileDiskManager>(
        new FileDiskManager(f, path, 0));
    PageId id;
    MDM_RETURN_IF_ERROR(dm->AllocatePage(&id));  // page 0: header
    return dm;
  }
  uint8_t head[16] = {};
  bool has_magic = false;
  if (std::fseek(f, 0, SEEK_SET) == 0 &&
      std::fread(head, 1, sizeof(head), f) == sizeof(head))
    has_magic = std::memcmp(head, kDbFileMagic, 4) == 0;
  if (!has_magic) {
    // Version-1 candidate: a bare sequence of 4 KiB pages.
    if (size % static_cast<long>(kPageSize) != 0) {
      std::fclose(f);
      return Corruption(StrFormat(
          "database file %s has partial page (size %ld)", path.c_str(),
          size));
    }
    MDM_ASSIGN_OR_RETURN(f, MigrateV1File(path, f, size));
    if (std::fseek(f, 0, SEEK_END) != 0 || (size = std::ftell(f)) < 0) {
      std::fclose(f);
      return IoError("seek failed on migrated " + path);
    }
  } else {
    if (GetU32At(head + 4) != kPageFormatVersion) {
      std::fclose(f);
      return Corruption(StrFormat("database file %s has unsupported format "
                                  "version %u",
                                  path.c_str(), GetU32At(head + 4)));
    }
    if (GetU32At(head + 12) != Crc32(head, 12)) {
      std::fclose(f);
      return Corruption("database file " + path +
                        " has a corrupt superblock");
    }
  }
  long body = size - static_cast<long>(kSuperblockSize);
  if (body < 0 || body % static_cast<long>(kPageFrameSize) != 0) {
    std::fclose(f);
    return Corruption(StrFormat(
        "database file %s has partial page frame (size %ld)", path.c_str(),
        size));
  }
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager(
      f, path, static_cast<uint32_t>(body / kPageFrameSize)));
  if (dm->num_pages_ == 0) {
    PageId id;
    MDM_RETURN_IF_ERROR(dm->AllocatePage(&id));  // page 0: header
  }
  return dm;
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::WriteFrame(PageId id, const uint8_t* data,
                                   double keep_fraction) {
  uint8_t frame[kPageFrameSize];
  BuildFrame(id, data, frame);
  size_t n = kPageFrameSize;
  if (keep_fraction < 1.0) {
    n = static_cast<size_t>(static_cast<double>(kPageFrameSize) *
                            keep_fraction);
    if (n > kPageFrameSize) n = kPageFrameSize;
  }
  if (std::fseek(file_, FrameOffset(id), SEEK_SET) != 0 ||
      std::fwrite(frame, 1, n, file_) != n)
    return IoError(StrFormat("page %u write failed", id));
  return Status::OK();
}

Status FileDiskManager::AllocatePage(PageId* id) {
  FaultDecision fault = FailpointRegistry::Global()->Eval("disk.file.alloc");
  if (fault.kind == FaultKind::kError)
    return IoError("injected allocation failure");
  uint8_t zeros[kPageSize] = {};
  *id = num_pages_;
  double keep = fault.fired() ? fault.keep_fraction : 1.0;
  Status st = WriteFrame(num_pages_, zeros, keep);
  if (!st.ok()) return st;
  if (fault.kind == FaultKind::kShortWrite ||
      fault.kind == FaultKind::kPowerCut)
    return IoError(StrFormat("injected short allocation of page %u",
                             num_pages_));
  ++num_pages_;
  PageAllocs()->Inc();
  return Status::OK();
}

Status FileDiskManager::ReadPage(PageId id, uint8_t* out) {
  if (id >= num_pages_)
    return OutOfRange(StrFormat("read of unallocated page %u", id));
  if (FailpointRegistry::Global()->Eval("disk.file.read").fired())
    return IoError(StrFormat("injected read failure for page %u", id));
  uint8_t frame[kPageFrameSize];
  if (std::fseek(file_, FrameOffset(id), SEEK_SET) != 0 ||
      std::fread(frame, 1, kPageFrameSize, file_) != kPageFrameSize)
    return IoError(StrFormat("page %u read failed", id));
  uint32_t stored_crc = GetU32At(frame);
  uint32_t stored_id = GetU32At(frame + 4);
  if (stored_id != id) {
    ChecksumFailures()->Inc();
    return Corruption(StrFormat(
        "page %u frame carries page id %u (misdirected write)", id,
        stored_id));
  }
  if (Crc32(frame + 4, kPageFrameSize - 4) != stored_crc) {
    ChecksumFailures()->Inc();
    return Corruption(
        StrFormat("page %u failed checksum verification (torn or "
                  "bit-flipped page)",
                  id));
  }
  std::memcpy(out, frame + kPageFrameHeaderSize, kPageSize);
  PageReads()->Inc();
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const uint8_t* data) {
  if (id >= num_pages_)
    return OutOfRange(StrFormat("write of unallocated page %u", id));
  FaultDecision fault = FailpointRegistry::Global()->Eval("disk.file.write");
  if (fault.kind == FaultKind::kError)
    return IoError(StrFormat("injected write failure for page %u", id));
  double keep = fault.fired() ? fault.keep_fraction : 1.0;
  MDM_RETURN_IF_ERROR(WriteFrame(id, data, keep));
  if (fault.kind == FaultKind::kShortWrite ||
      fault.kind == FaultKind::kPowerCut)
    return IoError(StrFormat("injected short write of page %u", id));
  PageWrites()->Inc();
  return Status::OK();
}

uint32_t FileDiskManager::NumPages() const { return num_pages_; }

Status FileDiskManager::Sync() {
  if (FailpointRegistry::Global()->Eval("disk.file.sync").fired())
    return IoError("injected sync failure for " + path_);
  return SyncStream(file_, path_);
}

}  // namespace mdm::storage

#ifndef MDM_STORAGE_DISK_MANAGER_H_
#define MDM_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace mdm::storage {

/// Abstraction over the backing store for pages.
///
/// Two implementations: memory-backed (tests, benchmarks, ephemeral
/// databases) and file-backed (persistent databases). Page 0 always
/// exists after construction and is conventionally the database header.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Status AllocatePage(PageId* id) = 0;
  virtual Status ReadPage(PageId id, uint8_t* out) = 0;
  virtual Status WritePage(PageId id, const uint8_t* data) = 0;
  virtual uint32_t NumPages() const = 0;
  /// Flushes everything to durable storage (no-op for memory).
  virtual Status Sync() = 0;
};

/// Memory-backed store.
class MemoryDiskManager : public DiskManager {
 public:
  MemoryDiskManager();

  Status AllocatePage(PageId* id) override;
  Status ReadPage(PageId id, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;
  uint32_t NumPages() const override;
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

/// File-backed store over a single database file of checksummed page
/// frames (format v2, see page.h). ReadPage verifies the per-frame CRC
/// and stored page id, returning Corruption instead of garbage for
/// torn, bit-flipped, or misdirected pages. Sync performs a real fsync.
/// Version-1 files (raw 4 KiB pages) are migrated on open.
///
/// Physical-level fault injection: every file I/O evaluates a failpoint
/// on FailpointRegistry::Global() — "disk.file.read", "disk.file.write",
/// "disk.file.alloc", "disk.file.sync". A torn write at this level
/// persists a partial frame, which the checksum catches on read.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (or creates) the database file at `path`.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);
  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  Status AllocatePage(PageId* id) override;
  Status ReadPage(PageId id, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;
  uint32_t NumPages() const override;
  Status Sync() override;

 private:
  FileDiskManager(std::FILE* file, std::string path, uint32_t num_pages)
      : file_(file), path_(std::move(path)), num_pages_(num_pages) {}

  Status WriteFrame(PageId id, const uint8_t* data, double keep_fraction);

  std::FILE* file_;
  std::string path_;
  uint32_t num_pages_;
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_DISK_MANAGER_H_

#ifndef MDM_STORAGE_HEAP_FILE_H_
#define MDM_STORAGE_HEAP_FILE_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace mdm::storage {

/// An unordered collection of variable-length records stored in a chain
/// of slotted pages. One HeapFile backs one relation.
///
/// The file is identified by its first page; the chain is threaded
/// through each page's next_page header field. Appends go to the tail
/// page, allocating a new page when the record does not fit.
///
/// Thread safety: a HeapFile is NOT internally synchronized — callers
/// serialize access per file (in the MDM, the owning database's latch
/// does this: heap scans run under the shared latch only together with
/// other readers, and appends/deletes under the exclusive latch). The
/// BufferPool underneath is safe to share across files and threads.
class HeapFile {
 public:
  /// Creates a new heap file; returns its header (first) page id.
  static Result<PageId> Create(BufferPool* pool);

  /// Opens an existing heap file rooted at `first_page`.
  HeapFile(BufferPool* pool, PageId first_page);

  PageId first_page() const { return first_page_; }

  /// Appends a record and returns its RID.
  Result<Rid> Append(std::string_view record);

  /// Reads the record at `rid` into `out`.
  Status Read(const Rid& rid, std::string* out) const;

  /// Deletes the record at `rid`.
  Status Delete(const Rid& rid);

  /// Replaces the record at `rid` in place; fails with OutOfRange if the
  /// new value no longer fits in its page (callers then delete+append).
  Status Update(const Rid& rid, std::string_view record);

  /// Calls `fn(rid, bytes)` for every live record in file order. If `fn`
  /// returns false the scan stops early.
  Status Scan(
      const std::function<bool(const Rid&, std::string_view)>& fn) const;

  /// Number of live records (computed by scanning).
  Result<uint64_t> Count() const;

 private:
  BufferPool* pool_;
  PageId first_page_;
  mutable PageId tail_hint_;  // last known tail page, fast-path appends
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_HEAP_FILE_H_

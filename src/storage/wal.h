#ifndef MDM_STORAGE_WAL_H_
#define MDM_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mdm::storage {

/// Kinds of log records.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kOp = 4,  // opaque redo payload, interpreted by the client (the ER layer)
};

struct WalRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  WalRecordType type = WalRecordType::kOp;
  std::string payload;  // only for kOp
};

/// Sink for log bytes: an in-memory buffer (tests, crash injection) or a
/// file.
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual Status Append(const std::vector<uint8_t>& bytes) = 0;
  virtual Status Sync() = 0;
};

class MemoryWalSink : public WalSink {
 public:
  Status Append(const std::vector<uint8_t>& bytes) override;
  Status Sync() override { return Status::OK(); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  /// Truncates the log to `n` bytes — simulates a crash mid-record for
  /// recovery tests.
  void TruncateTo(size_t n);

 private:
  std::vector<uint8_t> bytes_;
};

/// File-backed sink. Sync performs a real fsync, so a record whose
/// Commit returned OK survives power loss. Every physical operation
/// evaluates a failpoint on FailpointRegistry::Global() — "wal.open",
/// "wal.append", "wal.sync" — enabling torn-tail and power-cut
/// simulation against real log files.
class FileWalSink : public WalSink {
 public:
  static Result<std::unique_ptr<FileWalSink>> Open(const std::string& path);
  ~FileWalSink() override;

  Status Append(const std::vector<uint8_t>& bytes) override;
  Status Sync() override;

 private:
  FileWalSink(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  std::FILE* file_;
  std::string path_;
};

/// Redo-only write-ahead log.
///
/// Record wire format: u32 crc (over the rest), u32 length, then
/// { varint lsn, varint txn_id, u8 type, string payload }. A torn tail
/// (bad crc or truncated record) terminates recovery cleanly, matching
/// the crash-consistency contract: everything up to the last fully
/// synced commit is replayed.
///
/// Thread safety: externally synchronized. A WalWriter is attached to
/// one er::Database and only ever written from mutation paths, which
/// run under that database's exclusive latch (see docs/CONCURRENCY.md);
/// the latch serializes Begin/LogOp/Commit so the writer needs no lock
/// of its own, and LSNs stay monotone.
class WalWriter {
 public:
  explicit WalWriter(WalSink* sink) : sink_(sink) {}

  Result<uint64_t> Begin();  // returns new txn id
  Status LogOp(uint64_t txn_id, std::string payload);
  Status Commit(uint64_t txn_id);  // syncs the sink
  /// Writes the commit record WITHOUT syncing and returns its LSN.
  /// The transaction is durable only once a later Sync() covers that
  /// LSN — the group-commit split (er::CommitCoordinator batches the
  /// Sync over every commit record appended in the same window).
  Result<uint64_t> CommitNoSync(uint64_t txn_id);
  /// Syncs the sink: every record appended so far is durable on OK.
  /// Unlike Append/Commit (exclusive-latch callers only), Sync may be
  /// called concurrently with appends — FILE* streams lock internally,
  /// and a commit record racing past the fsync is simply covered by the
  /// next one; recovery tolerates the torn tail either way.
  Status Sync() { return sink_->Sync(); }
  Status Abort(uint64_t txn_id);

  uint64_t next_lsn() const { return next_lsn_; }

 private:
  Status AppendRecord(uint64_t txn_id, WalRecordType type,
                      std::string payload);

  WalSink* sink_;
  uint64_t next_lsn_ = 1;
  uint64_t next_txn_ = 1;
};

/// Replays a log buffer. Ops belonging to transactions that committed
/// are delivered to `apply` in log order; ops from unfinished or aborted
/// transactions are discarded. Returns the number of records scanned
/// (including control records).
Result<uint64_t> WalRecover(
    const std::vector<uint8_t>& log,
    const std::function<Status(const WalRecord&)>& apply);

/// Reads a whole WAL file into memory for recovery.
Result<std::vector<uint8_t>> ReadWalFile(const std::string& path);

}  // namespace mdm::storage

#endif  // MDM_STORAGE_WAL_H_

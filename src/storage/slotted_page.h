#ifndef MDM_STORAGE_SLOTTED_PAGE_H_
#define MDM_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace mdm::storage {

/// View over a page formatted as a slotted record page.
///
/// Layout (little-endian):
///   [0..3]   next_page (PageId, chain link for heap files)
///   [4..5]   num_slots (u16)
///   [6..7]   free_end  (u16; records occupy [free_end, kPageSize))
///   [8..]    slot array: per slot { u16 offset, u16 length }
/// A deleted slot has offset == kDeletedSlot. Records grow downward from
/// the end of the page; the slot array grows upward. Freed space is
/// reclaimed by Compact() when an insert would otherwise fail.
class SlottedPage {
 public:
  static constexpr uint16_t kDeletedSlot = 0xFFFF;

  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats a fresh page (zeroes the header, no slots).
  void Init();

  PageId next_page() const;
  void set_next_page(PageId id);

  uint16_t num_slots() const;

  /// Bytes available for a new record including its slot entry.
  size_t FreeSpace() const;

  /// Inserts a record; fails with OutOfRange if it cannot fit even after
  /// compaction. Records larger than kMaxRecordSize are rejected.
  Result<uint16_t> Insert(std::string_view record);

  /// Returns the record bytes for `slot` (view into the page; invalidated
  /// by any mutation of the page).
  Result<std::string_view> Get(uint16_t slot) const;

  /// Marks `slot` deleted. Idempotent on already-deleted slots is an
  /// error (callers track liveness through RIDs).
  Status Delete(uint16_t slot);

  /// Replaces the record at `slot`. May move the record within the page;
  /// fails with OutOfRange if the new value cannot fit.
  Status Update(uint16_t slot, std::string_view record);

  /// True if `slot` exists and is not deleted.
  bool IsLive(uint16_t slot) const;

  /// Largest record that can ever fit in one page.
  static constexpr size_t kMaxRecordSize = kPageSize - 16;

 private:
  uint16_t GetU16(size_t off) const;
  void SetU16(size_t off, uint16_t v);
  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLength(uint16_t slot) const;
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length);
  // Slides live records to the end of the page, squeezing out holes.
  void Compact();

  Page* page_;
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_SLOTTED_PAGE_H_

#include "storage/heap_file.h"

#include "common/strings.h"
#include "storage/slotted_page.h"

namespace mdm::storage {

Result<PageId> HeapFile::Create(BufferPool* pool) {
  MDM_ASSIGN_OR_RETURN(Page * page, pool->NewPage());
  SlottedPage sp(page);
  sp.Init();
  PageId id = page->id;
  MDM_RETURN_IF_ERROR(pool->UnpinPage(id, /*dirty=*/true));
  return id;
}

HeapFile::HeapFile(BufferPool* pool, PageId first_page)
    : pool_(pool), first_page_(first_page), tail_hint_(first_page) {}

Result<Rid> HeapFile::Append(std::string_view record) {
  if (record.size() > SlottedPage::kMaxRecordSize)
    return InvalidArgument(
        StrFormat("record of %zu bytes exceeds page capacity; large values "
                  "must be chunked by the caller",
                  record.size()));
  PageId pid = tail_hint_;
  while (true) {
    MDM_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
    SlottedPage sp(page);
    PageId next = sp.next_page();
    if (next != kInvalidPageId) {
      // Not the tail; follow the chain (hint was stale).
      MDM_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
      pid = next;
      continue;
    }
    Result<uint16_t> slot = sp.Insert(record);
    if (slot.ok()) {
      MDM_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/true));
      tail_hint_ = pid;
      return Rid{pid, *slot};
    }
    if (slot.status().code() != StatusCode::kOutOfRange) {
      MDM_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
      return slot.status();
    }
    // Tail page full: grow the chain.
    MDM_ASSIGN_OR_RETURN(Page * fresh, pool_->NewPage());
    SlottedPage fresh_sp(fresh);
    fresh_sp.Init();
    PageId fresh_id = fresh->id;
    sp.set_next_page(fresh_id);
    MDM_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/true));
    MDM_RETURN_IF_ERROR(pool_->UnpinPage(fresh_id, /*dirty=*/true));
    pid = fresh_id;
    tail_hint_ = fresh_id;
  }
}

Status HeapFile::Read(const Rid& rid, std::string* out) const {
  MDM_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  Result<std::string_view> rec = sp.Get(rid.slot);
  Status status = rec.ok() ? Status::OK() : rec.status();
  if (rec.ok()) out->assign(rec->data(), rec->size());
  MDM_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, /*dirty=*/false));
  return status;
}

Status HeapFile::Delete(const Rid& rid) {
  MDM_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  Status status = sp.Delete(rid.slot);
  MDM_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, /*dirty=*/status.ok()));
  return status;
}

Status HeapFile::Update(const Rid& rid, std::string_view record) {
  MDM_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  Status status = sp.Update(rid.slot, record);
  MDM_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, /*dirty=*/status.ok()));
  return status;
}

Status HeapFile::Scan(
    const std::function<bool(const Rid&, std::string_view)>& fn) const {
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    MDM_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
    SlottedPage sp(page);
    uint16_t n = sp.num_slots();
    bool keep_going = true;
    for (uint16_t s = 0; s < n && keep_going; ++s) {
      if (!sp.IsLive(s)) continue;
      Result<std::string_view> rec = sp.Get(s);
      if (!rec.ok()) {
        MDM_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
        return rec.status();
      }
      keep_going = fn(Rid{pid, s}, *rec);
    }
    PageId next = sp.next_page();
    MDM_RETURN_IF_ERROR(pool_->UnpinPage(pid, /*dirty=*/false));
    if (!keep_going) break;
    pid = next;
  }
  return Status::OK();
}

Result<uint64_t> HeapFile::Count() const {
  uint64_t n = 0;
  MDM_RETURN_IF_ERROR(Scan([&n](const Rid&, std::string_view) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace mdm::storage

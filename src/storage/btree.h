#ifndef MDM_STORAGE_BTREE_H_
#define MDM_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace mdm::storage {

/// B+tree index mapping int64 keys to record ids.
///
/// Duplicate keys are allowed (an index on, say, note pitch has many
/// records per key); entries are ordered by (key, rid). Deletion is
/// lazy: entries are removed but nodes are not re-merged, which keeps
/// the structure valid at some space cost — the workloads the paper
/// implies (score editing) are strongly insert/read dominated.
///
/// The tree lives in memory; Table persists it by rebuilding from the
/// heap file on open (see rel/table.h).
class BTree {
 public:
  /// `max_entries` is the node fan-out (>= 4).
  explicit BTree(size_t max_entries = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;

  void Insert(int64_t key, const Rid& rid);

  /// Removes the exact (key, rid) entry; false if absent.
  bool Erase(int64_t key, const Rid& rid);

  /// All rids for `key`, in rid order.
  std::vector<Rid> Find(int64_t key) const;

  /// True if at least one entry with `key` exists.
  bool Contains(int64_t key) const;

  /// Calls `fn(key, rid)` for all entries with lo <= key <= hi in key
  /// order; stops early if `fn` returns false.
  void ScanRange(int64_t lo, int64_t hi,
                 const std::function<bool(int64_t, const Rid&)>& fn) const;

  /// Full in-order scan.
  void ScanAll(const std::function<bool(int64_t, const Rid&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Height of the tree (1 = a single leaf). Exposed for tests.
  int Height() const;

  /// Verifies structural invariants (ordering, leaf chaining, uniform
  /// depth). Exposed for property tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    int64_t key;
    Rid rid;
  };

  Node* FindLeaf(int64_t key) const;
  // Splits `node` (which is full); inserts the separator into the parent.
  void SplitChild(Node* parent, size_t child_index);
  void InsertNonFull(Node* node, int64_t key, const Rid& rid);

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t size_ = 0;
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_BTREE_H_

#ifndef MDM_STORAGE_PAGE_H_
#define MDM_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <shared_mutex>

namespace mdm::storage {

using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;
inline constexpr size_t kPageSize = 4096;

// ---------------------------------------------------------------------
// On-disk format (FileDiskManager), version 2.
//
// A database file is a 4 KiB superblock followed by fixed-size page
// frames. Each frame carries a 16-byte header ahead of the 4 KiB of
// page data:
//
//   [u32 crc] [u32 page_id] [u64 reserved] [kPageSize data bytes]
//
// `crc` is CRC32 over everything after it (page_id + reserved + data),
// so both a torn/bit-flipped page and a misdirected write (right bytes,
// wrong slot) surface as Corruption on read. Version-1 files (raw
// 4 KiB pages, no superblock, no checksums) are migrated in place on
// open. In-memory Page frames are unchanged: 4 KiB of data.
// ---------------------------------------------------------------------
inline constexpr uint32_t kPageFormatVersion = 2;
inline constexpr size_t kSuperblockSize = kPageSize;
inline constexpr size_t kPageFrameHeaderSize = 16;
inline constexpr size_t kPageFrameSize = kPageSize + kPageFrameHeaderSize;
inline constexpr char kDbFileMagic[4] = {'M', 'D', 'M', 'P'};

/// A frame holding one page of data, managed by the BufferPool.
///
/// `pin_count` and `dirty` are maintained by the pool; clients obtain
/// pinned pages from BufferPool::FetchPage / NewPage and must unpin them.
///
/// Thread safety: `latch` is the per-frame content latch. A client that
/// shares a pool across threads takes `latch` shared to read `data` and
/// exclusive to write it, and must RELEASE the latch before calling back
/// into any BufferPool method on the same pool (the pool flushes dirty
/// frames under its own mutex while holding `latch` shared; see the
/// lock hierarchy in docs/CONCURRENCY.md). `id`, `dirty` and
/// `pin_count` belong to the pool and are only read/written under the
/// pool mutex — clients must not touch them directly.
struct Page {
  PageId id = kInvalidPageId;
  bool dirty = false;
  int pin_count = 0;
  mutable std::shared_mutex latch;
  uint8_t data[kPageSize] = {};

  void Zero() { std::memset(data, 0, kPageSize); }
};

/// Record identifier: a physical address (page, slot) in a heap file.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool IsValid() const { return page_id != kInvalidPageId; }

  friend bool operator==(const Rid& a, const Rid& b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
  friend bool operator!=(const Rid& a, const Rid& b) { return !(a == b); }
  friend bool operator<(const Rid& a, const Rid& b) {
    if (a.page_id != b.page_id) return a.page_id < b.page_id;
    return a.slot < b.slot;
  }
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_PAGE_H_

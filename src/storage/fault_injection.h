#ifndef MDM_STORAGE_FAULT_INJECTION_H_
#define MDM_STORAGE_FAULT_INJECTION_H_

#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace mdm::storage {

/// DiskManager decorator that injects faults at page-I/O boundaries.
///
/// Evaluates named failpoints on `fps` (default: the process-global
/// registry): "disk.alloc", "disk.read", "disk.write", "disk.sync".
/// Semantics per FaultKind:
///   kError       — the call fails with IoError, nothing reaches `base`;
///   kShortWrite  — a torn page (prefix of the new data spliced onto
///                  the old contents) reaches `base`, the call fails;
///   kTornWrite   — the same torn page reaches `base` but the call
///                  reports success: silent corruption, detectable only
///                  by a checksumming layer underneath;
///   kPowerCut    — as kShortWrite, and the registry latches power-out
///                  so every later I/O fails.
///
/// Note: this decorator sits *above* its base manager. A torn write
/// through it into a FileDiskManager is checksummed as-is (the tear
/// happened above the checksum layer); to simulate a physical tear that
/// checksums catch, arm FileDiskManager's own "disk.file.*" points.
class FaultInjectingDiskManager : public DiskManager {
 public:
  explicit FaultInjectingDiskManager(DiskManager* base,
                                     FailpointRegistry* fps = nullptr)
      : base_(base),
        fps_(fps != nullptr ? fps : FailpointRegistry::Global()) {}

  Status AllocatePage(PageId* id) override;
  Status ReadPage(PageId id, uint8_t* out) override;
  Status WritePage(PageId id, const uint8_t* data) override;
  uint32_t NumPages() const override { return base_->NumPages(); }
  Status Sync() override;

 private:
  DiskManager* base_;
  FailpointRegistry* fps_;
  Rng garbage_rng_{0x70524E5Eull};  // fills torn tails when old data is gone
};

/// WalSink decorator injecting faults at append/sync boundaries via the
/// failpoints "walsink.append" and "walsink.sync". Short and torn
/// appends persist a prefix of the record bytes — exactly the torn tail
/// WalRecover must stop at cleanly.
class FaultInjectingWalSink : public WalSink {
 public:
  explicit FaultInjectingWalSink(WalSink* base,
                                 FailpointRegistry* fps = nullptr)
      : base_(base),
        fps_(fps != nullptr ? fps : FailpointRegistry::Global()) {}

  Status Append(const std::vector<uint8_t>& bytes) override;
  Status Sync() override;

 private:
  WalSink* base_;
  FailpointRegistry* fps_;
};

}  // namespace mdm::storage

#endif  // MDM_STORAGE_FAULT_INJECTION_H_

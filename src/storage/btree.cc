#include "storage/btree.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace mdm::storage {

struct BTree::Node {
  bool is_leaf;
  // Internal nodes: keys.size() + 1 == children.size(); subtree
  // children[i] holds keys < keys[i] (by (key) comparison, duplicates may
  // straddle — search always descends then walks the leaf chain).
  std::vector<int64_t> keys;
  std::vector<std::unique_ptr<Node>> children;  // internal only
  std::vector<Entry> entries;                   // leaf only
  Node* next = nullptr;                         // leaf chain

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

BTree::BTree(size_t max_entries)
    : root_(std::make_unique<Node>(/*leaf=*/true)),
      max_entries_(max_entries < 4 ? 4 : max_entries) {}

BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

BTree::Node* BTree::FindLeaf(int64_t key) const {
  // Descend with lower_bound: duplicates of a key may straddle a
  // separator (left child holds keys <= separator), so searches must
  // start at the LEFTMOST leaf that can contain `key` and then walk the
  // leaf chain rightward.
  Node* node = root_.get();
  while (!node->is_leaf) {
    size_t i = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[i].get();
  }
  return node;
}

void BTree::SplitChild(Node* parent, size_t child_index) {
  Node* child = parent->children[child_index].get();
  auto right = std::make_unique<Node>(child->is_leaf);
  int64_t separator;
  if (child->is_leaf) {
    size_t mid = child->entries.size() / 2;
    separator = child->entries[mid].key;
    right->entries.assign(child->entries.begin() + mid, child->entries.end());
    child->entries.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    size_t mid = child->keys.size() / 2;
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i)
      right->children.push_back(std::move(child->children[i]));
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + child_index, separator);
  parent->children.insert(parent->children.begin() + child_index + 1,
                          std::move(right));
}

void BTree::InsertNonFull(Node* node, int64_t key, const Rid& rid) {
  while (!node->is_leaf) {
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    Node* child = node->children[i].get();
    bool full = child->is_leaf ? child->entries.size() >= max_entries_
                               : child->keys.size() >= max_entries_;
    if (full) {
      SplitChild(node, i);
      if (key >= node->keys[i]) ++i;
      child = node->children[i].get();
    }
    node = child;
  }
  Entry e{key, rid};
  auto pos = std::upper_bound(
      node->entries.begin(), node->entries.end(), e,
      [](const Entry& a, const Entry& b) {
        if (a.key != b.key) return a.key < b.key;
        return a.rid < b.rid;
      });
  node->entries.insert(pos, e);
}

void BTree::Insert(int64_t key, const Rid& rid) {
  Node* root = root_.get();
  bool full = root->is_leaf ? root->entries.size() >= max_entries_
                            : root->keys.size() >= max_entries_;
  if (full) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
  ++size_;
}

bool BTree::Erase(int64_t key, const Rid& rid) {
  Node* leaf = FindLeaf(key);
  // Duplicates of `key` may continue into following leaves.
  while (leaf != nullptr) {
    auto it = std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), key,
        [](const Entry& e, int64_t k) { return e.key < k; });
    for (; it != leaf->entries.end() && it->key == key; ++it) {
      if (it->rid == rid) {
        leaf->entries.erase(it);
        --size_;
        return true;
      }
    }
    if (it != leaf->entries.end()) return false;  // passed all dups
    leaf = leaf->next;
    if (leaf != nullptr && !leaf->entries.empty() &&
        leaf->entries.front().key > key)
      return false;
  }
  return false;
}

std::vector<Rid> BTree::Find(int64_t key) const {
  std::vector<Rid> out;
  ScanRange(key, key, [&out](int64_t, const Rid& rid) {
    out.push_back(rid);
    return true;
  });
  return out;
}

bool BTree::Contains(int64_t key) const {
  bool found = false;
  ScanRange(key, key, [&found](int64_t, const Rid&) {
    found = true;
    return false;
  });
  return found;
}

void BTree::ScanRange(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const Rid&)>& fn) const {
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    auto it = std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), lo,
        [](const Entry& e, int64_t k) { return e.key < k; });
    for (; it != leaf->entries.end(); ++it) {
      if (it->key > hi) return;
      if (!fn(it->key, it->rid)) return;
    }
    leaf = leaf->next;
  }
}

void BTree::ScanAll(const std::function<bool(int64_t, const Rid&)>& fn) const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  while (node != nullptr) {
    for (const Entry& e : node->entries)
      if (!fn(e.key, e.rid)) return;
    node = node->next;
  }
}

int BTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

Status BTree::CheckInvariants() const {
  // 1) Uniform leaf depth.
  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack{{root_.get(), 1}};
  int leaf_depth = -1;
  const Node* prev_leaf = nullptr;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.node->is_leaf) {
      if (leaf_depth == -1) leaf_depth = f.depth;
      if (f.depth != leaf_depth)
        return Corruption("b+tree leaves at non-uniform depth");
      for (size_t i = 1; i < f.node->entries.size(); ++i) {
        const Entry& a = f.node->entries[i - 1];
        const Entry& b = f.node->entries[i];
        if (a.key > b.key || (a.key == b.key && !(a.rid < b.rid)))
          return Corruption("b+tree leaf entries out of order");
      }
      (void)prev_leaf;
      prev_leaf = f.node;
    } else {
      if (f.node->children.size() != f.node->keys.size() + 1)
        return Corruption("b+tree internal child/key count mismatch");
      if (!std::is_sorted(f.node->keys.begin(), f.node->keys.end()))
        return Corruption("b+tree internal keys out of order");
      // Push children right-to-left so traversal visits leaves
      // left-to-right.
      for (size_t i = f.node->children.size(); i-- > 0;)
        stack.push_back({f.node->children[i].get(), f.depth + 1});
    }
  }
  // 2) Leaf chain yields globally sorted entries and exactly size_ items.
  size_t count = 0;
  int64_t last_key = INT64_MIN;
  bool ordered = true;
  ScanAll([&](int64_t key, const Rid&) {
    if (key < last_key) ordered = false;
    last_key = key;
    ++count;
    return true;
  });
  if (!ordered) return Corruption("b+tree leaf chain out of order");
  if (count != size_)
    return Corruption(
        StrFormat("b+tree size mismatch: chain has %zu, size() is %zu", count,
                  size_));
  return Status::OK();
}

}  // namespace mdm::storage

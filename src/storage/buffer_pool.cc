#include "storage/buffer_pool.h"

#include <mutex>
#include <shared_mutex>

#include "common/strings.h"
#include "obs/metrics.h"

namespace mdm::storage {

namespace {

/// Process-wide counters mirroring the per-pool BufferPoolStats (which
/// remain the per-instance view for tests and benches).
struct PoolCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* writebacks;
  static const PoolCounters& Get() {
    static PoolCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_storage_bufferpool_hits_total",
            "Buffer pool fetches served from a resident frame"),
        obs::Registry::Global()->GetCounter(
            "mdm_storage_bufferpool_misses_total",
            "Buffer pool fetches that read from the disk manager"),
        obs::Registry::Global()->GetCounter(
            "mdm_storage_bufferpool_evictions_total",
            "Frames evicted to make room"),
        obs::Registry::Global()->GetCounter(
            "mdm_storage_bufferpool_writebacks_total",
            "Dirty frames written back to the disk manager")};
    return c;
  }
};

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(frames_.back().get());
  }
}

void BufferPool::TouchLru(PageId id) {
  auto it = lru_pos_.find(id);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
}

Result<Page*> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    Page* frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // Evict the least-recently-used unpinned page.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    PageId victim_id = *it;
    Page* victim = page_table_.at(victim_id);
    if (victim->pin_count > 0) continue;
    if (victim->dirty) {
      // Unpinned ⇒ no client legally holds the content latch; taken
      // anyway so the writeback read is ordered after the last writer.
      std::shared_lock<std::shared_mutex> content(victim->latch);
      MDM_RETURN_IF_ERROR(disk_->WritePage(victim_id, victim->data));
      ++stats_.dirty_writebacks;
      PoolCounters::Get().writebacks->Inc();
    }
    page_table_.erase(victim_id);
    lru_.erase(lru_pos_.at(victim_id));
    lru_pos_.erase(victim_id);
    ++stats_.evictions;
    PoolCounters::Get().evictions->Inc();
    victim->dirty = false;
    victim->id = kInvalidPageId;
    return victim;
  }
  return FailedPrecondition(
      StrFormat("buffer pool exhausted: all %zu frames pinned", capacity_));
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    PoolCounters::Get().hits->Inc();
    Page* page = it->second;
    ++page->pin_count;
    TouchLru(id);
    return page;
  }
  ++stats_.misses;
  PoolCounters::Get().misses->Inc();
  MDM_ASSIGN_OR_RETURN(Page * frame, GetVictimFrame());
  MDM_RETURN_IF_ERROR(disk_->ReadPage(id, frame->data));
  frame->id = id;
  frame->dirty = false;
  frame->pin_count = 1;
  page_table_[id] = frame;
  TouchLru(id);
  return frame;
}

Result<Page*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId id;
  MDM_RETURN_IF_ERROR(disk_->AllocatePage(&id));
  MDM_ASSIGN_OR_RETURN(Page * frame, GetVictimFrame());
  frame->Zero();
  frame->id = id;
  frame->dirty = true;
  frame->pin_count = 1;
  page_table_[id] = frame;
  TouchLru(id);
  return frame;
}

Status BufferPool::UnpinPage(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end())
    return NotFound(StrFormat("unpin of non-resident page %u", id));
  Page* page = it->second;
  if (page->pin_count <= 0)
    return FailedPrecondition(StrFormat("page %u is not pinned", id));
  --page->pin_count;
  if (dirty) page->dirty = true;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, page] : page_table_) {
    if (page->dirty) {
      // Shared content latch: a pinned frame may be concurrently read by
      // a latch-holding client; clients never hold the latch across pool
      // calls, so this cannot deadlock (pool mutex → frame latch).
      std::shared_lock<std::shared_mutex> content(page->latch);
      MDM_RETURN_IF_ERROR(disk_->WritePage(id, page->data));
      page->dirty = false;
      ++stats_.dirty_writebacks;
      PoolCounters::Get().writebacks->Inc();
    }
  }
  return disk_->Sync();
}

}  // namespace mdm::storage

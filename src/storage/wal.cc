#include "storage/wal.h"

#include <cstdio>
#include <map>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/io.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace mdm::storage {

namespace {

obs::Counter* WalRecords() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_wal_records_total", "WAL records framed and appended");
  return c;
}

obs::Counter* WalBytes() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_wal_bytes_total", "Framed WAL bytes handed to the sink");
  return c;
}

obs::Counter* WalCommits() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_wal_commits_total", "Transactions committed through the WAL");
  return c;
}

}  // namespace

Status MemoryWalSink::Append(const std::vector<uint8_t>& bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return Status::OK();
}

void MemoryWalSink::TruncateTo(size_t n) {
  if (n < bytes_.size()) bytes_.resize(n);
}

Result<std::unique_ptr<FileWalSink>> FileWalSink::Open(
    const std::string& path) {
  if (FailpointRegistry::Global()->Eval("wal.open").fired())
    return IoError("injected open failure for WAL file " + path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return IoError("cannot open WAL file " + path);
  return std::unique_ptr<FileWalSink>(new FileWalSink(f, path));
}

FileWalSink::~FileWalSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWalSink::Append(const std::vector<uint8_t>& bytes) {
  FaultDecision fault = FailpointRegistry::Global()->Eval("wal.append");
  if (fault.kind == FaultKind::kError)
    return IoError("injected WAL append failure");
  size_t n = bytes.size();
  if (fault.fired()) {
    n = static_cast<size_t>(static_cast<double>(n) * fault.keep_fraction);
    if (n > bytes.size()) n = bytes.size();
  }
  if (std::fwrite(bytes.data(), 1, n, file_) != n)
    return IoError("WAL append failed");
  if (fault.kind == FaultKind::kShortWrite ||
      fault.kind == FaultKind::kPowerCut) {
    (void)std::fflush(file_);  // the torn prefix is what survives
    return IoError("injected torn WAL append");
  }
  return Status::OK();
}

Status FileWalSink::Sync() {
  if (FailpointRegistry::Global()->Eval("wal.sync").fired())
    return IoError("injected WAL sync failure");
  return SyncStream(file_, path_);
}

Status WalWriter::AppendRecord(uint64_t txn_id, WalRecordType type,
                               std::string payload) {
  ByteWriter body;
  body.PutVarint(next_lsn_++);
  body.PutVarint(txn_id);
  body.PutU8(static_cast<uint8_t>(type));
  body.PutString(payload);

  ByteWriter framed;
  framed.PutU32(Crc32(body.data().data(), body.size()));
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutBytes(body.data().data(), body.size());
  WalRecords()->Inc();
  WalBytes()->Inc(framed.size());
  return sink_->Append(framed.data());
}

Result<uint64_t> WalWriter::Begin() {
  uint64_t txn = next_txn_++;
  MDM_RETURN_IF_ERROR(AppendRecord(txn, WalRecordType::kBegin, ""));
  return txn;
}

Status WalWriter::LogOp(uint64_t txn_id, std::string payload) {
  return AppendRecord(txn_id, WalRecordType::kOp, std::move(payload));
}

Status WalWriter::Commit(uint64_t txn_id) {
  MDM_RETURN_IF_ERROR(AppendRecord(txn_id, WalRecordType::kCommit, ""));
  MDM_RETURN_IF_ERROR(sink_->Sync());
  WalCommits()->Inc();
  return Status::OK();
}

Result<uint64_t> WalWriter::CommitNoSync(uint64_t txn_id) {
  uint64_t lsn = next_lsn_;  // the commit record's own LSN
  MDM_RETURN_IF_ERROR(AppendRecord(txn_id, WalRecordType::kCommit, ""));
  WalCommits()->Inc();
  return lsn;
}

Status WalWriter::Abort(uint64_t txn_id) {
  return AppendRecord(txn_id, WalRecordType::kAbort, "");
}

Result<uint64_t> WalRecover(
    const std::vector<uint8_t>& log,
    const std::function<Status(const WalRecord&)>& apply) {
  // Pass 1: parse records until the log ends or turns torn; remember the
  // fate of each transaction.
  std::vector<WalRecord> records;
  std::map<uint64_t, bool> committed;  // txn -> committed?
  ByteReader reader(log.data(), log.size());
  while (!reader.AtEnd()) {
    uint32_t crc, len;
    if (!reader.GetU32(&crc).ok()) break;   // torn tail
    if (!reader.GetU32(&len).ok()) break;   // torn tail
    if (reader.remaining() < len) break;    // torn tail
    const uint8_t* body = log.data() + reader.pos();
    if (Crc32(body, len) != crc) break;     // corrupt record ends replay
    ByteReader body_reader(body, len);
    WalRecord rec;
    uint8_t type;
    if (!body_reader.GetVarint(&rec.lsn).ok() ||
        !body_reader.GetVarint(&rec.txn_id).ok() ||
        !body_reader.GetU8(&type).ok() ||
        !body_reader.GetString(&rec.payload).ok())
      break;
    rec.type = static_cast<WalRecordType>(type);
    // Advance past the body we just parsed.
    for (uint32_t i = 0; i < len; ++i) {
      uint8_t dummy;
      (void)reader.GetU8(&dummy);
    }
    if (rec.type == WalRecordType::kCommit) committed[rec.txn_id] = true;
    if (rec.type == WalRecordType::kAbort) committed[rec.txn_id] = false;
    records.push_back(std::move(rec));
  }
  // Pass 2: redo committed ops in log order.
  for (const WalRecord& rec : records) {
    if (rec.type != WalRecordType::kOp) continue;
    auto it = committed.find(rec.txn_id);
    if (it == committed.end() || !it->second) continue;
    MDM_RETURN_IF_ERROR(apply(rec));
  }
  return static_cast<uint64_t>(records.size());
}

Result<std::vector<uint8_t>> ReadWalFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::vector<uint8_t>{};  // no log yet: empty
  std::vector<uint8_t> out;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  // A mid-read I/O error must not masquerade as a short-but-valid log —
  // recovery would silently drop the committed suffix.
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return IoError("read error on WAL file " + path);
  return out;
}

}  // namespace mdm::storage

#include "storage/fault_injection.h"

#include <cstring>

namespace mdm::storage {

namespace {

size_t KeepBytes(size_t n, double keep_fraction) {
  size_t keep = static_cast<size_t>(static_cast<double>(n) * keep_fraction);
  return keep > n ? n : keep;
}

}  // namespace

Status FaultInjectingDiskManager::AllocatePage(PageId* id) {
  if (fps_->Eval("disk.alloc").fired())
    return IoError("injected allocation failure");
  return base_->AllocatePage(id);
}

Status FaultInjectingDiskManager::ReadPage(PageId id, uint8_t* out) {
  if (fps_->Eval("disk.read").fired())
    return IoError("injected read failure");
  return base_->ReadPage(id, out);
}

Status FaultInjectingDiskManager::WritePage(PageId id, const uint8_t* data) {
  FaultDecision fault = fps_->Eval("disk.write");
  if (!fault.fired()) return base_->WritePage(id, data);
  if (fault.kind == FaultKind::kError)
    return IoError("injected write failure");
  // Torn page: a prefix of the new data lands, the rest keeps the old
  // contents (or turns to garbage when the old page is unreadable).
  uint8_t torn[kPageSize];
  if (!base_->ReadPage(id, torn).ok())
    for (size_t i = 0; i < kPageSize; ++i)
      torn[i] = static_cast<uint8_t>(garbage_rng_.Next());
  size_t keep = KeepBytes(kPageSize, fault.keep_fraction);
  std::memcpy(torn, data, keep);
  MDM_RETURN_IF_ERROR(base_->WritePage(id, torn));
  if (fault.kind == FaultKind::kTornWrite) return Status::OK();  // silent
  return IoError("injected torn write");
}

Status FaultInjectingDiskManager::Sync() {
  if (fps_->Eval("disk.sync").fired())
    return IoError("injected sync failure");
  return base_->Sync();
}

Status FaultInjectingWalSink::Append(const std::vector<uint8_t>& bytes) {
  FaultDecision fault = fps_->Eval("walsink.append");
  if (!fault.fired()) return base_->Append(bytes);
  if (fault.kind == FaultKind::kError)
    return IoError("injected WAL append failure");
  std::vector<uint8_t> prefix(
      bytes.begin(),
      bytes.begin() +
          static_cast<long>(KeepBytes(bytes.size(), fault.keep_fraction)));
  MDM_RETURN_IF_ERROR(base_->Append(prefix));
  if (fault.kind == FaultKind::kTornWrite) return Status::OK();  // silent
  return IoError("injected torn WAL append");
}

Status FaultInjectingWalSink::Sync() {
  if (fps_->Eval("walsink.sync").fired())
    return IoError("injected WAL sync failure");
  return base_->Sync();
}

}  // namespace mdm::storage

#include "storage/slotted_page.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace mdm::storage {

namespace {
constexpr size_t kNextPageOff = 0;
constexpr size_t kNumSlotsOff = 4;
constexpr size_t kFreeEndOff = 6;
constexpr size_t kSlotArrayOff = 8;
constexpr size_t kSlotEntrySize = 4;
}  // namespace

uint16_t SlottedPage::GetU16(size_t off) const {
  return static_cast<uint16_t>(page_->data[off]) |
         static_cast<uint16_t>(page_->data[off + 1]) << 8;
}

void SlottedPage::SetU16(size_t off, uint16_t v) {
  page_->data[off] = static_cast<uint8_t>(v);
  page_->data[off + 1] = static_cast<uint8_t>(v >> 8);
}

void SlottedPage::Init() {
  std::memset(page_->data, 0, kPageSize);
  set_next_page(kInvalidPageId);
  SetU16(kNumSlotsOff, 0);
  static_assert(kPageSize <= 0xFFFF, "free_end must fit in u16");
  SetU16(kFreeEndOff, static_cast<uint16_t>(kPageSize));
}

PageId SlottedPage::next_page() const {
  PageId id = 0;
  for (int i = 0; i < 4; ++i)
    id |= static_cast<PageId>(page_->data[kNextPageOff + i]) << (8 * i);
  return id;
}

void SlottedPage::set_next_page(PageId id) {
  for (int i = 0; i < 4; ++i)
    page_->data[kNextPageOff + i] = static_cast<uint8_t>(id >> (8 * i));
}

uint16_t SlottedPage::num_slots() const { return GetU16(kNumSlotsOff); }

uint16_t SlottedPage::SlotOffset(uint16_t slot) const {
  return GetU16(kSlotArrayOff + slot * kSlotEntrySize);
}

uint16_t SlottedPage::SlotLength(uint16_t slot) const {
  return GetU16(kSlotArrayOff + slot * kSlotEntrySize + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  SetU16(kSlotArrayOff + slot * kSlotEntrySize, offset);
  SetU16(kSlotArrayOff + slot * kSlotEntrySize + 2, length);
}

size_t SlottedPage::FreeSpace() const {
  size_t slots_end = kSlotArrayOff + num_slots() * kSlotEntrySize;
  size_t free_end = GetU16(kFreeEndOff);
  if (free_end < slots_end) return 0;
  return free_end - slots_end;
}

bool SlottedPage::IsLive(uint16_t slot) const {
  return slot < num_slots() && SlotOffset(slot) != kDeletedSlot;
}

void SlottedPage::Compact() {
  struct LiveRecord {
    uint16_t slot;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<LiveRecord> live;
  uint16_t n = num_slots();
  for (uint16_t s = 0; s < n; ++s) {
    if (SlotOffset(s) != kDeletedSlot)
      live.push_back({s, SlotOffset(s), SlotLength(s)});
  }
  // Move records to the end of the page, highest offset first so shifts
  // never overlap destructively.
  std::sort(live.begin(), live.end(),
            [](const LiveRecord& a, const LiveRecord& b) {
              return a.offset > b.offset;
            });
  size_t free_end = kPageSize;
  for (const LiveRecord& r : live) {
    free_end -= r.length;
    std::memmove(page_->data + free_end, page_->data + r.offset, r.length);
    SetSlot(r.slot, static_cast<uint16_t>(free_end), r.length);
  }
  SetU16(kFreeEndOff, static_cast<uint16_t>(free_end));
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kMaxRecordSize)
    return InvalidArgument(
        StrFormat("record of %zu bytes exceeds page capacity", record.size()));
  // Reuse a deleted slot if one exists (keeps slot array from growing).
  uint16_t n = num_slots();
  uint16_t target_slot = n;
  for (uint16_t s = 0; s < n; ++s) {
    if (SlotOffset(s) == kDeletedSlot) {
      target_slot = s;
      break;
    }
  }
  size_t slot_cost = (target_slot == n) ? kSlotEntrySize : 0;
  if (FreeSpace() < record.size() + slot_cost) {
    Compact();
    if (FreeSpace() < record.size() + slot_cost)
      return OutOfRange("page full");
  }
  uint16_t free_end = GetU16(kFreeEndOff);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(page_->data + offset, record.data(), record.size());
  SetU16(kFreeEndOff, offset);
  if (target_slot == n) SetU16(kNumSlotsOff, n + 1);
  SetSlot(target_slot, offset, static_cast<uint16_t>(record.size()));
  return target_slot;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (!IsLive(slot))
    return NotFound(StrFormat("slot %u is empty or deleted", slot));
  return std::string_view(
      reinterpret_cast<const char*>(page_->data + SlotOffset(slot)),
      SlotLength(slot));
}

Status SlottedPage::Delete(uint16_t slot) {
  if (!IsLive(slot))
    return NotFound(StrFormat("delete of empty slot %u", slot));
  SetSlot(slot, kDeletedSlot, 0);
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, std::string_view record) {
  if (!IsLive(slot))
    return NotFound(StrFormat("update of empty slot %u", slot));
  uint16_t old_len = SlotLength(slot);
  if (record.size() <= old_len) {
    // Shrinking update in place (tail bytes become an unreclaimed hole
    // until the next Compact).
    std::memcpy(page_->data + SlotOffset(slot), record.data(), record.size());
    SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // Growing update: check fit first (free space plus the record's own
  // bytes, which compaction reclaims) so failure leaves the page intact.
  if (FreeSpace() + old_len < record.size())
    return OutOfRange("page full on growing update");
  SetSlot(slot, kDeletedSlot, 0);
  if (FreeSpace() < record.size()) Compact();
  uint16_t free_end = GetU16(kFreeEndOff);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(page_->data + offset, record.data(), record.size());
  SetU16(kFreeEndOff, offset);
  SetSlot(slot, offset, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

}  // namespace mdm::storage

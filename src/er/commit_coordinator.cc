#include "er/commit_coordinator.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace mdm::er {

namespace {

struct GroupCommitMetrics {
  obs::Counter* groups;
  obs::Histogram* batch_size;
  static const GroupCommitMetrics& Get() {
    static GroupCommitMetrics m = {
        obs::Registry::Global()->GetCounter(
            "mdm_wal_group_commits_total",
            "Group-commit fsyncs issued by a leader"),
        obs::Registry::Global()->GetHistogram(
            "mdm_wal_commit_batch_size",
            "Committers covered by one group-commit fsync")};
    return m;
  }
};

}  // namespace

Status CommitCoordinator::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  if (lsn <= synced_) return Status::OK();

  requested_ = std::max(requested_, lsn);
  ++waiters_;
  // Waking the leader early once the batch is full beats waiting out
  // the grace window.
  if (leader_active_ && waiters_ >= options_.max_batch) cv_.notify_all();

  while (leader_active_) {
    cv_.wait(lock);
    if (!poison_.ok()) {
      --waiters_;
      return poison_;
    }
    if (lsn <= synced_) {
      --waiters_;
      return Status::OK();
    }
  }

  // Leader: hold the batch open for the grace window (or until it
  // fills), then fsync once for everyone queued.
  leader_active_ = true;
  if (options_.interval_us > 0 && waiters_ < options_.max_batch)
    cv_.wait_for(lock, std::chrono::microseconds(options_.interval_us),
                 [&] { return waiters_ >= options_.max_batch; });
  const uint64_t target = requested_;
  const uint32_t batch = waiters_;
  lock.unlock();

  // The sync covers every record appended before it — including commit
  // records appended (under the latch) after `target` was captured;
  // those waiters simply find lsn <= synced_ already on arrival.
  Status synced = wal_->Sync();

  lock.lock();
  leader_active_ = false;
  --waiters_;
  if (!synced.ok()) {
    poison_ = synced;
    cv_.notify_all();
    return synced;
  }
  synced_ = std::max(synced_, target);
  GroupCommitMetrics::Get().groups->Inc();
  GroupCommitMetrics::Get().batch_size->Observe(batch);
  cv_.notify_all();
  return Status::OK();
}

}  // namespace mdm::er

#ifndef MDM_ER_PERSIST_H_
#define MDM_ER_PERSIST_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "er/database.h"
#include "storage/wal.h"

namespace mdm::er {

/// A durable MDM database: a snapshot file plus a write-ahead journal.
///
/// Lifecycle:
///   auto handle = DurableDatabase::Open("scores.mdm");   // recovers
///   handle->db()->CreateEntity(...);                     // journaled
///   handle->Checkpoint();   // compacts: snapshot + truncated journal
///
/// Crash contract: every operation whose (auto-)commit record reached
/// the journal before the crash is recovered by the next Open; a torn
/// journal tail is discarded cleanly (see storage::WalRecover).
class DurableDatabase {
 public:
  /// Opens (or creates) the database at `path`. Expects `path` to be a
  /// snapshot file ("<path>" may not exist yet) and "<path>.wal" the
  /// journal. Recovery = restore snapshot, then replay the journal.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& path);

  ~DurableDatabase();
  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  Database* db() { return &db_; }

  /// Writes a fresh snapshot and truncates the journal. Called at
  /// convenient quiesce points; crash-safe (snapshot is written to a
  /// temporary file and renamed over the old one before the journal is
  /// truncated).
  Status Checkpoint();

  const std::string& path() const { return path_; }

 private:
  explicit DurableDatabase(std::string path) : path_(std::move(path)) {}
  Status AttachFreshJournal(bool truncate);

  std::string path_;
  Database db_;
  std::unique_ptr<storage::FileWalSink> wal_sink_;
  std::unique_ptr<storage::WalWriter> wal_;
};

/// One-shot helpers for clients that do not need a journal.
Status SaveSnapshot(const Database& db, const std::string& path);
Result<Database> LoadSnapshot(const std::string& path);

}  // namespace mdm::er

#endif  // MDM_ER_PERSIST_H_

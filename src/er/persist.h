#ifndef MDM_ER_PERSIST_H_
#define MDM_ER_PERSIST_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "er/commit_coordinator.h"
#include "er/database.h"
#include "storage/wal.h"

namespace mdm::er {

/// A durable MDM database: a checksummed snapshot file plus a
/// write-ahead journal.
///
/// Lifecycle:
///   auto handle = DurableDatabase::Open("scores.mdm");   // recovers
///   handle->db()->CreateEntity(...);                     // journaled
///   handle->Checkpoint();   // compacts: snapshot + fresh journal
///
/// Crash contract (see docs/DURABILITY.md): every operation whose
/// (auto-)commit record was fsynced to the journal before the crash is
/// recovered by the next Open; a torn journal tail is discarded cleanly
/// (storage::WalRecover); a corrupt snapshot surfaces as Corruption,
/// never as a half-restored database.
///
/// The snapshot and journal are paired through a checkpoint epoch: the
/// snapshot header names the epoch it covers and recovery replays only
/// that epoch's journal file ("<path>.wal" for epoch 0, "<path>.wal.N"
/// after the Nth checkpoint). A crash anywhere inside Checkpoint leaves
/// either the old pair or the new pair — never the new snapshot with
/// the old journal replayed on top (double apply).
class DurableDatabase {
 public:
  /// Opens (or creates) the database at `path` and recovers: restore
  /// and verify the snapshot, then replay the current epoch's journal.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& path);

  ~DurableDatabase();
  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  Database* db() { return &db_; }

  /// Writes a fresh snapshot (to a temporary file, fsynced, renamed,
  /// directory fsynced, then read back and verified) and switches to
  /// the next epoch's empty journal. Crash-safe at every intermediate
  /// point. On failure the previous snapshot and journal stay intact;
  /// if the new journal cannot be attached the handle is poisoned and
  /// every further mutation fails rather than silently going
  /// unjournaled.
  Status Checkpoint();

  const std::string& path() const { return path_; }
  uint64_t epoch() const { return epoch_; }
  /// The journal file backing the current epoch.
  std::string wal_path() const;

  /// Turns on WAL group commit (docs/WRITEPATH.md): commits append
  /// their record under the latch and batch into one fsync in the
  /// coordinator. Survives Checkpoint (the coordinator is re-attached
  /// to each epoch's journal). Call before concurrent use.
  void EnableGroupCommit(CommitCoordinator::Options options);
  /// Detaches the coordinator; commits go back to one fsync each.
  void DisableGroupCommit();
  CommitCoordinator* commit_coordinator() { return coordinator_.get(); }

 private:
  /// Sink attached when the real journal cannot be opened: every append
  /// fails, so no mutation is acknowledged without being logged.
  struct BrokenWalSink : storage::WalSink {
    Status Append(const std::vector<uint8_t>&) override {
      return IoError("journal unavailable (previous attach failed)");
    }
    Status Sync() override {
      return IoError("journal unavailable (previous attach failed)");
    }
  };

  explicit DurableDatabase(std::string path) : path_(std::move(path)) {}
  Status AttachJournal(bool truncate);

  std::string path_;
  uint64_t epoch_ = 0;
  Database db_;
  std::unique_ptr<storage::FileWalSink> wal_sink_;
  std::unique_ptr<storage::WalWriter> wal_;
  std::unique_ptr<CommitCoordinator> coordinator_;
  BrokenWalSink broken_sink_;
};

/// One-shot helpers for clients that do not need a journal. The file
/// carries a checksummed envelope; LoadSnapshot returns Corruption on
/// any bit rot (legacy unchecksummed files are still readable).
Status SaveSnapshot(const Database& db, const std::string& path);
Result<Database> LoadSnapshot(const std::string& path);

}  // namespace mdm::er

#endif  // MDM_ER_PERSIST_H_

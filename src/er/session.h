#ifndef MDM_ER_SESSION_H_
#define MDM_ER_SESSION_H_

#include <shared_mutex>

#include "er/database.h"

namespace mdm::er {

/// RAII guards implementing the external-locking contract documented on
/// er::Database (see docs/CONCURRENCY.md for the lock hierarchy).
///
/// A ReadGuard holds the database latch shared for its lifetime: every
/// read made through it sees one snapshot-consistent state — no
/// structural mutation can interleave, and index lookups inside
/// Before/After/Under resolve against atomically-published snapshots.
/// A WriteGuard holds the latch exclusively and is the required bracket
/// for any mutation (including EnableOrderingIndex, AttachJournal and
/// ReplayJournal).
///
/// Guards do not nest: acquiring a second guard on the same database
/// from the same thread deadlocks (std::shared_mutex is not
/// recursive). In particular, do not call QuelSession::Execute — which
/// takes the latch itself — while holding a guard.
class ReadGuard {
 public:
  explicit ReadGuard(const Database& db) : lock_(db.latch()), db_(&db) {}

  const Database* operator->() const { return db_; }
  const Database& operator*() const { return *db_; }
  const Database* db() const { return db_; }

 private:
  std::shared_lock<std::shared_mutex> lock_;
  const Database* db_;
};

class WriteGuard {
 public:
  explicit WriteGuard(Database& db) : lock_(db.latch()), db_(&db) {
    db_->BeginWriteScope();
  }
  /// Publishes the snapshot BEFORE releasing the latch, so latch-free
  /// snapshot readers (TryPinSnapshot) always see the last completed
  /// write bracket, never a half-applied one.
  ~WriteGuard() {
    db_->EndWriteScope();
    lock_.unlock();
  }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;
  WriteGuard(WriteGuard&&) = delete;
  WriteGuard& operator=(WriteGuard&&) = delete;

  Database* operator->() const { return db_; }
  Database& operator*() const { return *db_; }
  Database* db() const { return db_; }

 private:
  std::unique_lock<std::shared_mutex> lock_;
  Database* db_;
};

/// One client's connection to a shared Database — the paper's fig 1
/// picture of many simultaneous clients against one music data
/// manager. A Session is cheap (a pointer); create one per client
/// thread and take guards around each logical operation:
///
///   er::Session s(&db);
///   { auto r = s.Read(); auto v = r->Before(h, a, b); ... }
///   { auto w = s.Write(); w->AppendChild(h, chord, note); ... }
///
/// Guard acquisition is mirrored on the obs registry as
/// mdm_er_read_guards_total / mdm_er_write_guards_total.
class Session {
 public:
  explicit Session(Database* db) : db_(db) {}

  ReadGuard Read() const;
  WriteGuard Write() const;
  Database* db() const { return db_; }

 private:
  Database* db_;
};

}  // namespace mdm::er

#endif  // MDM_ER_SESSION_H_

#ifndef MDM_ER_PMAP_H_
#define MDM_ER_PMAP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace mdm::er {

/// Deterministic treap priority: a fixed avalanche mix of the key, so
/// the tree shape depends only on the key set (replay- and
/// snapshot-stable; no RNG state to carry).
inline uint64_t PMapMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t PMapPriority(uint64_t key) { return PMapMix64(key); }
inline uint64_t PMapPriority(uint32_t key) {
  return PMapMix64(static_cast<uint64_t>(key));
}
inline uint64_t PMapPriority(int64_t key) {
  return PMapMix64(static_cast<uint64_t>(key));
}
inline uint64_t PMapPriority(const std::string& key) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return PMapMix64(h);
}

/// A persistent (immutable, structurally shared) ordered map — the
/// copy-on-write substrate behind er::Tables snapshots. Insert/Erase
/// path-copy O(log n) nodes and leave every previously taken copy of
/// the map untouched, so publishing a database snapshot is a handful of
/// root-pointer copies regardless of data volume, and readers traverse
/// their pinned version without any lock.
///
/// Implementation: a treap with deterministic hash-derived priorities,
/// maintained via path-copying split/merge. Iteration (ForEach) is
/// in key order; entity/relationship ids are monotonically assigned, so
/// key order doubles as creation order for the id-keyed sets.
///
/// Thread safety: a PMap value is NOT synchronized — the owner mutates
/// it under the database's exclusive latch. Copies of the map (sharing
/// nodes) may be read freely from any thread: shared nodes are
/// immutable after publication, and shared_ptr refcounts handle
/// retirement once the last snapshot referencing a version drains.
template <typename K, typename V>
class PMap {
 public:
  PMap() = default;

  size_t size() const { return root_ ? root_->count : 0; }
  bool empty() const { return root_ == nullptr; }

  /// Pointer to the value for `key`, or nullptr. The pointee lives as
  /// long as any map version containing the node does.
  const V* Find(const K& key) const {
    const Node* n = root_.get();
    while (n != nullptr) {
      if (key < n->key)
        n = n->left.get();
      else if (n->key < key)
        n = n->right.get();
      else
        return &n->value;
    }
    return nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Inserts or overwrites. O(log n) expected; path-copies the spine.
  void Insert(const K& key, V value) {
    NodePtr l, e, r;
    SplitAt(root_, key, &l, &e, &r);
    NodePtr fresh = std::make_shared<Node>(key, std::move(value));
    root_ = Merge(Merge(std::move(l), std::move(fresh)), std::move(r));
  }

  /// Removes `key` if present. O(log n) expected.
  void Erase(const K& key) {
    NodePtr l, e, r;
    SplitAt(root_, key, &l, &e, &r);
    root_ = Merge(std::move(l), std::move(r));
  }

  /// In-key-order traversal; return false from `fn` to stop early.
  bool ForEach(const std::function<bool(const K&, const V&)>& fn) const {
    return Walk(root_.get(), fn);
  }

 private:
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct Node {
    Node(K k, V v)
        : key(std::move(k)),
          value(std::move(v)),
          priority(PMapPriority(key)) {}
    Node(const Node& o, NodePtr l, NodePtr r)
        : key(o.key),
          value(o.value),
          priority(o.priority),
          left(std::move(l)),
          right(std::move(r)),
          count(1 + (left ? left->count : 0) + (right ? right->count : 0)) {}

    K key;
    V value;
    uint64_t priority;
    NodePtr left;
    NodePtr right;
    size_t count = 1;
  };

  static NodePtr WithChildren(const NodePtr& n, NodePtr l, NodePtr r) {
    return std::make_shared<Node>(*n, std::move(l), std::move(r));
  }

  /// Splits `n` into keys < key (*l), the key node if present (*e), and
  /// keys > key (*r). Path-copies the split spine.
  static void SplitAt(const NodePtr& n, const K& key, NodePtr* l, NodePtr* e,
                      NodePtr* r) {
    if (!n) {
      l->reset();
      e->reset();
      r->reset();
      return;
    }
    if (key < n->key) {
      NodePtr rl;
      SplitAt(n->left, key, l, e, &rl);
      *r = WithChildren(n, std::move(rl), n->right);
    } else if (n->key < key) {
      NodePtr lr;
      SplitAt(n->right, key, &lr, e, r);
      *l = WithChildren(n, n->left, std::move(lr));
    } else {
      *l = n->left;
      *e = n;
      *r = n->right;
    }
  }

  static NodePtr Merge(NodePtr a, NodePtr b) {
    if (!a) return b;
    if (!b) return a;
    if (a->priority >= b->priority)
      return WithChildren(a, a->left, Merge(a->right, std::move(b)));
    return WithChildren(b, Merge(std::move(a), b->left), b->right);
  }

  static bool Walk(const Node* n,
                   const std::function<bool(const K&, const V&)>& fn) {
    if (n == nullptr) return true;
    if (!Walk(n->left.get(), fn)) return false;
    if (!fn(n->key, n->value)) return false;
    return Walk(n->right.get(), fn);
  }

  NodePtr root_;
};

}  // namespace mdm::er

#endif  // MDM_ER_PMAP_H_

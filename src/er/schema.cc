#include "er/schema.h"

#include <algorithm>

#include "common/strings.h"

namespace mdm::er {

std::optional<size_t> EntityTypeDef::AttributeIndex(
    const std::string& attr) const {
  for (size_t i = 0; i < attributes.size(); ++i)
    if (EqualsIgnoreCase(attributes[i].name, attr)) return i;
  return std::nullopt;
}

std::optional<size_t> RelationshipDef::RoleIndex(const std::string& role)
    const {
  for (size_t i = 0; i < roles.size(); ++i)
    if (EqualsIgnoreCase(roles[i].name, role)) return i;
  return std::nullopt;
}

std::optional<size_t> RelationshipDef::AttributeIndex(
    const std::string& attr) const {
  for (size_t i = 0; i < attributes.size(); ++i)
    if (EqualsIgnoreCase(attributes[i].name, attr)) return i;
  return std::nullopt;
}

bool OrderingDef::IsRecursive() const { return HasChildType(parent_type); }

bool OrderingDef::HasChildType(const std::string& type) const {
  for (const std::string& c : child_types)
    if (EqualsIgnoreCase(c, type)) return true;
  return false;
}

namespace {

Status CheckAttributes(const ErSchema& schema,
                       const std::vector<AttributeDef>& attrs,
                       const std::string& owner) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      if (EqualsIgnoreCase(attrs[i].name, attrs[j].name))
        return AlreadyExists(StrFormat("duplicate attribute %s in %s",
                                       attrs[i].name.c_str(), owner.c_str()));
    }
    if (attrs[i].type == rel::ValueType::kRef &&
        schema.FindEntityType(attrs[i].ref_target) == nullptr)
      return NotFound(StrFormat(
          "attribute %s of %s references undefined entity type %s",
          attrs[i].name.c_str(), owner.c_str(), attrs[i].ref_target.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status ErSchema::AddEntityType(EntityTypeDef def) {
  if (def.name.empty()) return InvalidArgument("entity type needs a name");
  if (FindEntityType(def.name) != nullptr)
    return AlreadyExists("entity type " + def.name + " already defined");
  MDM_RETURN_IF_ERROR(
      CheckAttributes(*this, def.attributes, "entity " + def.name));
  entity_index_[AsciiUpper(def.name)] = entity_types_.size();
  entity_types_.push_back(std::move(def));
  return Status::OK();
}

Status ErSchema::AddRelationship(RelationshipDef def) {
  if (def.name.empty()) return InvalidArgument("relationship needs a name");
  if (FindRelationship(def.name) != nullptr)
    return AlreadyExists("relationship " + def.name + " already defined");
  if (def.roles.size() < 2)
    return InvalidArgument("relationship " + def.name +
                           " needs at least two roles");
  for (const RelationshipRole& role : def.roles) {
    if (FindEntityType(role.entity_type) == nullptr)
      return NotFound(StrFormat("relationship %s role %s references "
                                "undefined entity type %s",
                                def.name.c_str(), role.name.c_str(),
                                role.entity_type.c_str()));
  }
  MDM_RETURN_IF_ERROR(
      CheckAttributes(*this, def.attributes, "relationship " + def.name));
  relationship_index_[AsciiUpper(def.name)] = relationships_.size();
  relationships_.push_back(std::move(def));
  return Status::OK();
}

Status ErSchema::AddOrdering(OrderingDef def) {
  if (def.child_types.empty())
    return InvalidArgument("ordering needs at least one child type");
  if (FindEntityType(def.parent_type) == nullptr)
    return NotFound("ordering parent type " + def.parent_type +
                    " is not defined");
  for (const std::string& child : def.child_types) {
    if (FindEntityType(child) == nullptr)
      return NotFound("ordering child type " + child + " is not defined");
  }
  for (size_t i = 0; i < def.child_types.size(); ++i)
    for (size_t j = i + 1; j < def.child_types.size(); ++j)
      if (EqualsIgnoreCase(def.child_types[i], def.child_types[j]))
        return AlreadyExists("ordering repeats child type " +
                             def.child_types[i]);
  if (def.name.empty()) {
    std::string base = AsciiLower(StrJoin(def.child_types, "_")) + "_under_" +
                       AsciiLower(def.parent_type);
    std::string candidate = base;
    int suffix = 2;
    while (FindOrdering(candidate) != nullptr)
      candidate = base + "_" + std::to_string(suffix++);
    def.name = candidate;
  } else if (FindOrdering(def.name) != nullptr) {
    return AlreadyExists("ordering " + def.name + " already defined");
  }
  ordering_index_[AsciiUpper(def.name)] = orderings_.size();
  orderings_.push_back(std::move(def));
  return Status::OK();
}

const EntityTypeDef* ErSchema::FindEntityType(const std::string& name) const {
  auto it = entity_index_.find(AsciiUpper(name));
  return it == entity_index_.end() ? nullptr : &entity_types_[it->second];
}

const RelationshipDef* ErSchema::FindRelationship(
    const std::string& name) const {
  auto it = relationship_index_.find(AsciiUpper(name));
  return it == relationship_index_.end() ? nullptr
                                         : &relationships_[it->second];
}

const OrderingDef* ErSchema::FindOrdering(const std::string& name) const {
  auto it = ordering_index_.find(AsciiUpper(name));
  return it == ordering_index_.end() ? nullptr : &orderings_[it->second];
}

std::optional<size_t> ErSchema::FindOrderingIndex(
    const std::string& name) const {
  auto it = ordering_index_.find(AsciiUpper(name));
  if (it == ordering_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<const OrderingDef*> ErSchema::OrderingsWithChild(
    const std::string& type) const {
  std::vector<const OrderingDef*> out;
  for (const OrderingDef& o : orderings_)
    if (o.HasChildType(type)) out.push_back(&o);
  return out;
}

std::vector<const OrderingDef*> ErSchema::OrderingsWithParent(
    const std::string& type) const {
  std::vector<const OrderingDef*> out;
  for (const OrderingDef& o : orderings_)
    if (EqualsIgnoreCase(o.parent_type, type)) out.push_back(&o);
  return out;
}

std::string ErSchema::ToHoGraphDot() const {
  std::string dot = "digraph ho_graph {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const EntityTypeDef& e : entity_types_)
    dot += "  \"" + e.name + "\";\n";
  for (const OrderingDef& o : orderings_) {
    for (const std::string& child : o.child_types) {
      dot += "  \"" + o.parent_type + "\" -> \"" + child + "\" [label=\"" +
             o.name + "\"];\n";
    }
  }
  dot += "}\n";
  return dot;
}

namespace {

void EncodeAttributes(const std::vector<AttributeDef>& attrs, ByteWriter* w) {
  w->PutVarint(attrs.size());
  for (const AttributeDef& a : attrs) {
    w->PutString(a.name);
    w->PutU8(static_cast<uint8_t>(a.type));
    w->PutString(a.ref_target);
  }
}

Status DecodeAttributes(ByteReader* r, std::vector<AttributeDef>* attrs) {
  uint64_t n;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n));
  attrs->clear();
  for (uint64_t i = 0; i < n; ++i) {
    AttributeDef a;
    MDM_RETURN_IF_ERROR(r->GetString(&a.name));
    uint8_t t;
    MDM_RETURN_IF_ERROR(r->GetU8(&t));
    a.type = static_cast<rel::ValueType>(t);
    MDM_RETURN_IF_ERROR(r->GetString(&a.ref_target));
    attrs->push_back(std::move(a));
  }
  return Status::OK();
}

}  // namespace

void EncodeEntityTypeDef(const EntityTypeDef& def, ByteWriter* w) {
  w->PutString(def.name);
  EncodeAttributes(def.attributes, w);
}

Status DecodeEntityTypeDef(ByteReader* r, EntityTypeDef* out) {
  MDM_RETURN_IF_ERROR(r->GetString(&out->name));
  return DecodeAttributes(r, &out->attributes);
}

void EncodeRelationshipDef(const RelationshipDef& def, ByteWriter* w) {
  w->PutString(def.name);
  w->PutVarint(def.roles.size());
  for (const RelationshipRole& role : def.roles) {
    w->PutString(role.name);
    w->PutString(role.entity_type);
  }
  EncodeAttributes(def.attributes, w);
}

Status DecodeRelationshipDef(ByteReader* r, RelationshipDef* out) {
  MDM_RETURN_IF_ERROR(r->GetString(&out->name));
  uint64_t n_roles;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_roles));
  out->roles.clear();
  for (uint64_t j = 0; j < n_roles; ++j) {
    RelationshipRole role;
    MDM_RETURN_IF_ERROR(r->GetString(&role.name));
    MDM_RETURN_IF_ERROR(r->GetString(&role.entity_type));
    out->roles.push_back(std::move(role));
  }
  return DecodeAttributes(r, &out->attributes);
}

void EncodeOrderingDef(const OrderingDef& def, ByteWriter* w) {
  w->PutString(def.name);
  w->PutVarint(def.child_types.size());
  for (const std::string& c : def.child_types) w->PutString(c);
  w->PutString(def.parent_type);
}

Status DecodeOrderingDef(ByteReader* r, OrderingDef* out) {
  MDM_RETURN_IF_ERROR(r->GetString(&out->name));
  uint64_t n_children;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_children));
  out->child_types.clear();
  for (uint64_t j = 0; j < n_children; ++j) {
    std::string c;
    MDM_RETURN_IF_ERROR(r->GetString(&c));
    out->child_types.push_back(std::move(c));
  }
  return r->GetString(&out->parent_type);
}

void ErSchema::Encode(ByteWriter* w) const {
  w->PutVarint(entity_types_.size());
  for (const EntityTypeDef& e : entity_types_) EncodeEntityTypeDef(e, w);
  w->PutVarint(relationships_.size());
  for (const RelationshipDef& rdef : relationships_)
    EncodeRelationshipDef(rdef, w);
  w->PutVarint(orderings_.size());
  for (const OrderingDef& o : orderings_) EncodeOrderingDef(o, w);
}

Status ErSchema::Decode(ByteReader* r, ErSchema* out) {
  *out = ErSchema();
  uint64_t n_entities;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_entities));
  for (uint64_t i = 0; i < n_entities; ++i) {
    EntityTypeDef e;
    MDM_RETURN_IF_ERROR(DecodeEntityTypeDef(r, &e));
    MDM_RETURN_IF_ERROR(out->AddEntityType(std::move(e)));
  }
  uint64_t n_rels;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_rels));
  for (uint64_t i = 0; i < n_rels; ++i) {
    RelationshipDef rdef;
    MDM_RETURN_IF_ERROR(DecodeRelationshipDef(r, &rdef));
    MDM_RETURN_IF_ERROR(out->AddRelationship(std::move(rdef)));
  }
  uint64_t n_orders;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_orders));
  for (uint64_t i = 0; i < n_orders; ++i) {
    OrderingDef o;
    MDM_RETURN_IF_ERROR(DecodeOrderingDef(r, &o));
    MDM_RETURN_IF_ERROR(out->AddOrdering(std::move(o)));
  }
  return Status::OK();
}

}  // namespace mdm::er

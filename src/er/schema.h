#ifndef MDM_ER_SCHEMA_H_
#define MDM_ER_SCHEMA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/value.h"

namespace mdm::er {

/// Surrogate identifier of an entity instance; 0 is never assigned.
using EntityId = uint64_t;
inline constexpr EntityId kInvalidEntityId = 0;

/// One attribute of an entity or relationship type.
///
/// An attribute whose declared type names another entity type (the
/// paper's `composition_date = DATE`) is stored as a kRef value with
/// `ref_target` naming the target type — Chen's implicit "1 to n"
/// relationship (§5.1).
struct AttributeDef {
  std::string name;
  rel::ValueType type = rel::ValueType::kNull;
  std::string ref_target;  // set iff type == kRef
};

/// `define entity NAME (attr = type, ...)` (§5.1).
struct EntityTypeDef {
  std::string name;
  std::vector<AttributeDef> attributes;

  std::optional<size_t> AttributeIndex(const std::string& attr) const;
};

/// One role of a relationship (e.g. composer = PERSON).
struct RelationshipRole {
  std::string name;
  std::string entity_type;
};

/// `define relationship NAME (role = TYPE, ...)` — an "m to n"
/// relationship among entity types (§5.1).
struct RelationshipDef {
  std::string name;
  std::vector<RelationshipRole> roles;
  std::vector<AttributeDef> attributes;  // relationship attributes

  std::optional<size_t> RoleIndex(const std::string& role) const;
  std::optional<size_t> AttributeIndex(const std::string& attr) const;
};

/// `define ordering [name] (child, ...) under parent` (§5.4).
///
/// The paper's five configurations are all expressible:
///  - multiple levels: an entity type may be parent in one ordering and
///    child in another;
///  - multiple orderings under one parent: two defs with the same parent;
///  - inhomogeneous orderings: several child types in one def;
///  - multiple parents: the same child type in defs with different
///    parents;
///  - recursive orderings: the parent type also appears among the child
///    types (instance-level cycles are rejected at insert time, §5.5).
struct OrderingDef {
  std::string name;
  std::vector<std::string> child_types;
  std::string parent_type;

  bool IsRecursive() const;
  bool HasChildType(const std::string& type) const;
};

/// A resolved reference to one ordering of a schema. Orderings are
/// append-only, so a handle stays valid for the lifetime of the
/// database that issued it (Database::ResolveOrderingHandle). Passing
/// a handle instead of a name skips per-call name normalization and
/// lookup on every ordering operation — resolve once per statement,
/// then use the handle in hot paths.
class OrderingHandle {
 public:
  OrderingHandle() = default;

  bool valid() const { return index_ != kInvalid; }
  /// Position in ErSchema::orderings().
  uint32_t index() const { return index_; }

  /// Wraps a raw ordering index. Prefer Database::ResolveOrderingHandle;
  /// this exists for callers that already iterate schema.orderings().
  static OrderingHandle FromIndex(size_t index) {
    OrderingHandle h;
    h.index_ = static_cast<uint32_t>(index);
    return h;
  }

  friend bool operator==(OrderingHandle a, OrderingHandle b) {
    return a.index_ == b.index_;
  }

 private:
  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;
  uint32_t index_ = kInvalid;
};

/// The schema of one MDM database: entity types, relationships and
/// orderings, with name-based lookup and referential validation.
class ErSchema {
 public:
  ErSchema() = default;

  Status AddEntityType(EntityTypeDef def);
  Status AddRelationship(RelationshipDef def);
  /// If `def.name` is empty a unique name `<children>_under_<parent>` is
  /// generated (the paper makes the order name optional).
  Status AddOrdering(OrderingDef def);

  const EntityTypeDef* FindEntityType(const std::string& name) const;
  const RelationshipDef* FindRelationship(const std::string& name) const;
  const OrderingDef* FindOrdering(const std::string& name) const;
  /// Index of the ordering in orderings(), for handle resolution.
  std::optional<size_t> FindOrderingIndex(const std::string& name) const;

  const std::vector<EntityTypeDef>& entity_types() const {
    return entity_types_;
  }
  const std::vector<RelationshipDef>& relationships() const {
    return relationships_;
  }
  const std::vector<OrderingDef>& orderings() const { return orderings_; }

  /// All orderings in which `type` participates as a child / as parent.
  std::vector<const OrderingDef*> OrderingsWithChild(
      const std::string& type) const;
  std::vector<const OrderingDef*> OrderingsWithParent(
      const std::string& type) const;

  /// Emits the schema's hierarchical-ordering graph (fig 7/9/13 style)
  /// in Graphviz DOT: solid edges parent->child per ordering.
  std::string ToHoGraphDot() const;

  void Encode(ByteWriter* w) const;
  static Status Decode(ByteReader* r, ErSchema* out);

 private:
  std::vector<EntityTypeDef> entity_types_;
  std::vector<RelationshipDef> relationships_;
  std::vector<OrderingDef> orderings_;
  std::map<std::string, size_t> entity_index_;
  std::map<std::string, size_t> relationship_index_;
  std::map<std::string, size_t> ordering_index_;
};

/// Standalone def serialization (used by the journal's schema ops).
void EncodeEntityTypeDef(const EntityTypeDef& def, ByteWriter* w);
Status DecodeEntityTypeDef(ByteReader* r, EntityTypeDef* out);
void EncodeRelationshipDef(const RelationshipDef& def, ByteWriter* w);
Status DecodeRelationshipDef(ByteReader* r, RelationshipDef* out);
void EncodeOrderingDef(const OrderingDef& def, ByteWriter* w);
Status DecodeOrderingDef(ByteReader* r, OrderingDef* out);

}  // namespace mdm::er

#endif  // MDM_ER_SCHEMA_H_

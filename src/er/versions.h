#ifndef MDM_ER_VERSIONS_H_
#define MDM_ER_VERSIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "er/database.h"

namespace mdm::er {

/// Version identifier (1-based; 0 is "no parent").
using VersionId = uint64_t;

/// Version control for MDM databases, after the paper's pointers to
/// [KaL82] ("Storage Structures for Versions and Alternatives") and
/// [Dan86] (a score structure with versions and multiple views).
///
/// Each committed version is a full database image tagged with a name,
/// a message, and a parent version — so alternative readings of a score
/// (ossia, editorial variants) form a tree, and any version can be
/// checked out as a live database. Storage is snapshot-per-version;
/// delta encoding is an orthogonal storage-structure optimization.
class VersionStore {
 public:
  struct VersionInfo {
    VersionId id = 0;
    VersionId parent = 0;
    std::string name;
    std::string message;
    uint64_t entity_count = 0;
    size_t snapshot_bytes = 0;
  };

  /// Differences between two versions, by entity id.
  struct Diff {
    uint64_t added = 0;     // in b but not a
    uint64_t removed = 0;   // in a but not b
    uint64_t modified = 0;  // in both with different attribute values
  };

  VersionStore() = default;

  /// Commits the current state of `db` as a child of `parent`
  /// (kNoParent for a root). Returns the new version id.
  static constexpr VersionId kNoParent = 0;
  Result<VersionId> Commit(const Database& db, VersionId parent,
                           const std::string& name,
                           const std::string& message);

  /// Materializes a version as a live database.
  Result<Database> Checkout(VersionId id) const;

  Result<VersionInfo> Info(VersionId id) const;
  Result<VersionId> FindByName(const std::string& name) const;
  std::vector<VersionInfo> List() const;

  /// The ids on the path from `id` back to its root (inclusive).
  Result<std::vector<VersionId>> Lineage(VersionId id) const;

  /// Entity-level diff between two versions.
  Result<Diff> DiffVersions(VersionId a, VersionId b) const;

  size_t size() const { return versions_.size(); }

 private:
  struct Stored {
    VersionInfo info;
    std::vector<uint8_t> snapshot;
  };
  const Stored* Find(VersionId id) const;

  std::vector<Stored> versions_;
};

}  // namespace mdm::er

#endif  // MDM_ER_VERSIONS_H_

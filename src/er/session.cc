#include "er/session.h"

#include "obs/metrics.h"

namespace mdm::er {

namespace {

struct SessionCounters {
  obs::Counter* read_guards;
  obs::Counter* write_guards;
  static const SessionCounters& Get() {
    static SessionCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_er_read_guards_total",
            "Shared-latch read guards taken on a database"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_write_guards_total",
            "Exclusive-latch write guards taken on a database")};
    return c;
  }
};

}  // namespace

ReadGuard Session::Read() const {
  SessionCounters::Get().read_guards->Inc();
  return ReadGuard(*db_);
}

WriteGuard Session::Write() const {
  SessionCounters::Get().write_guards->Inc();
  return WriteGuard(*db_);
}

}  // namespace mdm::er

#include "er/persist.h"

#include <cstdio>

#include "common/bytes.h"

namespace mdm::er {

namespace {

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot create " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed)
    return IoError("short write to " + path);
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no file at " + path);
  std::vector<uint8_t> out;
  uint8_t buf[8192];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  std::fclose(f);
  return out;
}

}  // namespace

Status SaveSnapshot(const Database& db, const std::string& path) {
  ByteWriter w;
  db.Snapshot(&w);
  // Write-then-rename so a crash mid-save never clobbers the old image.
  std::string tmp = path + ".tmp";
  MDM_RETURN_IF_ERROR(WriteFile(tmp, w.data()));
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return IoError("rename failed for " + path);
  return Status::OK();
}

Result<Database> LoadSnapshot(const std::string& path) {
  MDM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
  ByteReader r(bytes.data(), bytes.size());
  Database db;
  MDM_RETURN_IF_ERROR(Database::Restore(&r, &db));
  return db;
}

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& path) {
  auto handle = std::unique_ptr<DurableDatabase>(new DurableDatabase(path));
  // 1. Restore the snapshot if one exists.
  Result<std::vector<uint8_t>> snapshot = ReadFile(path);
  if (snapshot.ok()) {
    ByteReader r(snapshot->data(), snapshot->size());
    MDM_RETURN_IF_ERROR(Database::Restore(&r, &handle->db_));
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }
  // 2. Replay the journal (absent journal = empty).
  MDM_ASSIGN_OR_RETURN(std::vector<uint8_t> log,
                       storage::ReadWalFile(path + ".wal"));
  MDM_RETURN_IF_ERROR(handle->db_.ReplayJournal(log));
  // 3. Journal subsequent mutations (appending to the existing log).
  MDM_RETURN_IF_ERROR(handle->AttachFreshJournal(/*truncate=*/false));
  return handle;
}

DurableDatabase::~DurableDatabase() {
  db_.AttachJournal(nullptr);
}

Status DurableDatabase::AttachFreshJournal(bool truncate) {
  db_.AttachJournal(nullptr);
  wal_.reset();
  wal_sink_.reset();
  if (truncate) {
    std::FILE* f = std::fopen((path_ + ".wal").c_str(), "wb");
    if (f == nullptr) return IoError("cannot truncate journal");
    std::fclose(f);
  }
  MDM_ASSIGN_OR_RETURN(wal_sink_,
                       storage::FileWalSink::Open(path_ + ".wal"));
  wal_ = std::make_unique<storage::WalWriter>(wal_sink_.get());
  db_.AttachJournal(wal_.get());
  return Status::OK();
}

Status DurableDatabase::Checkpoint() {
  MDM_RETURN_IF_ERROR(SaveSnapshot(db_, path_));
  return AttachFreshJournal(/*truncate=*/true);
}

}  // namespace mdm::er

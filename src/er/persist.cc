#include "er/persist.h"

#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/io.h"

namespace mdm::er {

namespace {

// Snapshot envelope: magic, version, checkpoint epoch, then the
// database image guarded by a CRC so bit rot or a torn snapshot write
// surfaces as Corruption instead of a half-restored database.
constexpr char kSnapshotMagic[4] = {'M', 'D', 'M', 'S'};
constexpr uint32_t kSnapshotVersion = 2;

Status WriteFileDurable(const std::string& path,
                        const std::vector<uint8_t>& bytes) {
  FaultDecision fault = FailpointRegistry::Global()->Eval("snapshot.write");
  if (fault.kind == FaultKind::kError)
    return IoError("injected write failure for " + path);
  size_t n = bytes.size();
  if (fault.fired()) {
    n = static_cast<size_t>(static_cast<double>(n) * fault.keep_fraction);
    if (n > bytes.size()) n = bytes.size();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot create " + path);
  size_t written = std::fwrite(bytes.data(), 1, n, f);
  Status synced = SyncStream(f, path);
  bool closed = std::fclose(f) == 0;
  if (written != n || !closed) return IoError("short write to " + path);
  MDM_RETURN_IF_ERROR(synced);
  if (fault.kind == FaultKind::kShortWrite ||
      fault.kind == FaultKind::kPowerCut)
    return IoError("injected short write to " + path);
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no file at " + path);
  std::vector<uint8_t> out;
  uint8_t buf[8192];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  // Distinguish a mid-read I/O error from EOF: a failed disk must not
  // look like a short-but-valid file.
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return IoError("read error on " + path);
  return out;
}

std::vector<uint8_t> EncodeSnapshot(const Database& db, uint64_t epoch) {
  ByteWriter payload;
  db.Snapshot(&payload);
  ByteWriter out;
  out.PutBytes(kSnapshotMagic, 4);
  out.PutU32(kSnapshotVersion);
  out.PutU64(epoch);
  out.PutU32(Crc32(payload.data().data(), payload.size()));
  out.PutBytes(payload.data().data(), payload.size());
  return out.Take();
}

struct SnapshotImage {
  uint64_t epoch = 0;
  const uint8_t* payload = nullptr;  // into the caller's byte buffer
  size_t payload_size = 0;
};

/// Parses and CRC-verifies a snapshot file image. Files predating the
/// envelope (no magic) decode as an epoch-0 raw database image.
Result<SnapshotImage> DecodeSnapshot(const std::vector<uint8_t>& bytes,
                                     const std::string& path) {
  SnapshotImage img;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kSnapshotMagic, 4) != 0) {
    img.payload = bytes.data();
    img.payload_size = bytes.size();
    return img;
  }
  ByteReader r(bytes.data(), bytes.size());
  uint8_t skip;
  for (int i = 0; i < 4; ++i) (void)r.GetU8(&skip);
  uint32_t version, crc;
  if (!r.GetU32(&version).ok() || version != kSnapshotVersion)
    return Corruption("snapshot " + path + " has unsupported version");
  if (!r.GetU64(&img.epoch).ok() || !r.GetU32(&crc).ok())
    return Corruption("snapshot " + path + " has truncated header");
  img.payload = bytes.data() + r.pos();
  img.payload_size = bytes.size() - r.pos();
  if (Crc32(img.payload, img.payload_size) != crc)
    return Corruption("snapshot " + path +
                      " failed checksum verification");
  return img;
}

std::string WalPathFor(const std::string& path, uint64_t epoch) {
  return epoch == 0 ? path + ".wal"
                    : path + ".wal." + std::to_string(epoch);
}

Status SaveSnapshotAs(const Database& db, const std::string& path,
                      uint64_t epoch) {
  std::vector<uint8_t> bytes = EncodeSnapshot(db, epoch);
  // Write-then-rename so a crash mid-save never clobbers the old image;
  // fsync the data before the rename and the directory after, so the
  // sequence survives power loss on both sides.
  std::string tmp = path + ".tmp";
  MDM_RETURN_IF_ERROR(WriteFileDurable(tmp, bytes));
  // Read back and verify before renaming over the only other copy: a
  // silently torn write must be caught while the old snapshot is intact.
  {
    MDM_ASSIGN_OR_RETURN(std::vector<uint8_t> readback, ReadFile(tmp));
    MDM_ASSIGN_OR_RETURN(SnapshotImage img, DecodeSnapshot(readback, tmp));
    (void)img;
  }
  if (FailpointRegistry::Global()->Eval("snapshot.rename").fired())
    return IoError("injected rename failure for " + path);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return IoError("rename failed for " + path);
  if (FailpointRegistry::Global()->Eval("snapshot.dirsync").fired())
    return IoError("injected directory sync failure for " + path);
  return SyncParentDir(path);
}

}  // namespace

Status SaveSnapshot(const Database& db, const std::string& path) {
  return SaveSnapshotAs(db, path, /*epoch=*/0);
}

Result<Database> LoadSnapshot(const std::string& path) {
  MDM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
  MDM_ASSIGN_OR_RETURN(SnapshotImage img, DecodeSnapshot(bytes, path));
  ByteReader r(img.payload, img.payload_size);
  Database db;
  MDM_RETURN_IF_ERROR(Database::Restore(&r, &db));
  return db;
}

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& path) {
  auto handle = std::unique_ptr<DurableDatabase>(new DurableDatabase(path));
  // 1. Restore the snapshot if one exists; its header names the journal
  //    epoch to replay.
  Result<std::vector<uint8_t>> snapshot = ReadFile(path);
  if (snapshot.ok()) {
    MDM_ASSIGN_OR_RETURN(SnapshotImage img, DecodeSnapshot(*snapshot, path));
    ByteReader r(img.payload, img.payload_size);
    MDM_RETURN_IF_ERROR(Database::Restore(&r, &handle->db_));
    handle->epoch_ = img.epoch;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }
  // 2. Replay this epoch's journal (absent journal = empty). A journal
  //    belonging to an older epoch is never replayed: its effects are
  //    already inside the snapshot.
  MDM_ASSIGN_OR_RETURN(std::vector<uint8_t> log,
                       storage::ReadWalFile(handle->wal_path()));
  MDM_RETURN_IF_ERROR(handle->db_.ReplayJournal(log));
  // 3. Journal subsequent mutations (appending to the existing log).
  MDM_RETURN_IF_ERROR(handle->AttachJournal(/*truncate=*/false));
  return handle;
}

DurableDatabase::~DurableDatabase() {
  db_.AttachCommitCoordinator(nullptr);
  db_.AttachJournal(nullptr);
}

void DurableDatabase::EnableGroupCommit(CommitCoordinator::Options options) {
  coordinator_ = std::make_unique<CommitCoordinator>(wal_.get(), options);
  db_.AttachCommitCoordinator(coordinator_.get());
}

void DurableDatabase::DisableGroupCommit() {
  db_.AttachCommitCoordinator(nullptr);
  coordinator_.reset();
}

std::string DurableDatabase::wal_path() const {
  return WalPathFor(path_, epoch_);
}

Status DurableDatabase::AttachJournal(bool truncate) {
  // Remember whether group commit was on: the coordinator is bound to
  // the WalWriter being replaced and must be rebuilt against the new
  // one (its LSN horizon restarts with the new epoch's log).
  const bool group_commit = coordinator_ != nullptr;
  CommitCoordinator::Options coord_options =
      group_commit ? coordinator_->options() : CommitCoordinator::Options{};
  db_.AttachCommitCoordinator(nullptr);
  coordinator_.reset();
  db_.AttachJournal(nullptr);
  wal_.reset();
  wal_sink_.reset();
  // If anything below fails, leave a sink that rejects every append:
  // acknowledging unjournaled mutations would break the crash contract.
  Status failed;
  if (truncate &&
      !FailpointRegistry::Global()->Eval("wal.truncate").fired()) {
    std::FILE* f = std::fopen(wal_path().c_str(), "wb");
    if (f != nullptr)
      std::fclose(f);
    else
      failed = IoError("cannot truncate journal " + wal_path());
  } else if (truncate) {
    failed = IoError("injected truncate failure for " + wal_path());
  }
  if (failed.ok()) {
    auto sink = storage::FileWalSink::Open(wal_path());
    if (sink.ok())
      wal_sink_ = std::move(*sink);
    else
      failed = sink.status();
  }
  if (!failed.ok()) {
    wal_ = std::make_unique<storage::WalWriter>(&broken_sink_);
    db_.AttachJournal(wal_.get());
    if (group_commit) EnableGroupCommit(coord_options);
    return failed;
  }
  wal_ = std::make_unique<storage::WalWriter>(wal_sink_.get());
  db_.AttachJournal(wal_.get());
  if (group_commit) EnableGroupCommit(coord_options);
  return Status::OK();
}

Status DurableDatabase::Checkpoint() {
  // 1. Persist the new snapshot under the next epoch (written to a
  //    temporary file, verified by read-back, renamed, directory
  //    fsynced). On any failure the old snapshot/journal pair is still
  //    the recovery source.
  uint64_t next_epoch = epoch_ + 1;
  MDM_RETURN_IF_ERROR(SaveSnapshotAs(db_, path_, next_epoch));
  // 2. Switch to the new epoch's empty journal. From here recovery uses
  //    the new snapshot; the old journal is dead weight.
  std::string old_wal = wal_path();
  epoch_ = next_epoch;
  MDM_RETURN_IF_ERROR(AttachJournal(/*truncate=*/true));
  // 3. Best-effort cleanup; a leftover old-epoch journal is ignored by
  //    recovery.
  if (!FailpointRegistry::Global()->Eval("wal.remove").fired())
    (void)std::remove(old_wal.c_str());
  return Status::OK();
}

}  // namespace mdm::er

#include "er/database.h"

#include <algorithm>
#include <cstring>

#include "common/strings.h"
#include "er/commit_coordinator.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mdm::er {

using rel::Value;
using rel::ValueType;

namespace {

/// Process-wide mirrors of the per-database OrderingIndexStats fields.
struct ErCounters {
  obs::Counter* rank_hits;
  obs::Counter* rank_rebuilds;
  obs::Counter* interval_hits;
  obs::Counter* interval_rebuilds;
  obs::Counter* linear_scans;
  static const ErCounters& Get() {
    static ErCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_er_rank_hits_total",
            "Sibling-rank lookups answered from a fresh rank index"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_rank_rebuilds_total",
            "Lazy rank-index rebuilds triggered by a lookup"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_interval_hits_total",
            "Containment checks answered from a fresh interval index"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_interval_rebuilds_total",
            "Lazy Euler-tour interval rebuilds"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_linear_scans_total",
            "Ordering predicates evaluated without an index (ablation)")};
    return c;
  }
};

/// Process-wide mirrors of the per-database AttrIndexStats fields.
struct IndexCounters {
  obs::Counter* lookups;
  obs::Counter* inserts;
  obs::Counter* erases;
  obs::Counter* rebuilds;
  static const IndexCounters& Get() {
    static IndexCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_index_lookups_total",
            "Secondary-index probes answered from a B+tree"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_inserts_total",
            "Secondary-index entries added (mutations and backfills)"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_erases_total",
            "Secondary-index entries removed (updates and deletes)"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_rebuilds_total",
            "Secondary-index full backfills (define, restore, replay)")};
    return c;
  }
};

/// Metrics for the copy-on-write snapshot machinery (docs/WRITEPATH.md).
struct SnapCounters {
  obs::Counter* publishes;
  obs::Counter* reads;
  obs::Counter* pin_fallbacks;
  obs::Counter* index_fallbacks;
  static const SnapCounters& Get() {
    static SnapCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_er_snapshot_publishes_total",
            "Copy-on-write table snapshots published"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_snapshot_reads_total",
            "Read scopes served from a pinned snapshot (no db latch)"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_snapshot_pin_fallbacks_total",
            "Snapshot pins refused (unpublished mutations, no disciplined "
            "writer); reader fell back to the shared latch"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_snapshot_fallbacks_total",
            "Snapshot index probes degraded to a type scan by an "
            "erase-epoch mismatch")};
    return c;
  }
};

/// The snapshot a SnapshotReadScope pinned for this thread (see
/// Database::ReadTables). Raw pointers: the scope object owns the
/// keep-alive shared_ptr.
struct TlsPinned {
  const Database* db = nullptr;
  const Tables* tables = nullptr;
};
thread_local TlsPinned g_pinned;

// ---------------------------------------------------------------------
// Secondary-index key encoding.
//
// The B+tree maps int64 keys to entity ids. The encoding must satisfy:
// values equal under Value::Compare encode to the same key (or the
// probe misses rows); unequal values MAY collide (strings and rationals
// are hashed) because the planner keeps the equality conjunct in the
// filter list, so every candidate is re-checked. Value::Compare treats
// int and float as one numeric domain, so integral floats canonicalize
// to their int64 value (Float(2.0) and Int(2) must share a key); -0.0
// folds into that path via the integral check. Nulls are never indexed.
// ---------------------------------------------------------------------

uint64_t Fnv1a64(const void* data, size_t n, uint64_t h = 0xCBF29CE484222325ull) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

int64_t AttrKeyFor(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;  // callers never index or probe nulls
    case ValueType::kBool:
      return v.AsBool() ? 1 : 0;
    case ValueType::kInt:
      return v.AsInt();
    case ValueType::kRef:
      return static_cast<int64_t>(v.AsRef());
    case ValueType::kFloat: {
      double d = v.AsFloat();
      // Integral floats share the int encoding (numeric cross-compare).
      if (d >= -9223372036854775808.0 && d < 9223372036854775808.0 &&
          d == static_cast<double>(static_cast<int64_t>(d)))
        return static_cast<int64_t>(d);
      int64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return bits;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      return static_cast<int64_t>(Fnv1a64(s.data(), s.size()));
    }
    case ValueType::kRational: {
      // Rationals are kept normalized (gcd = 1, den > 0), so hashing
      // (num, den) is exact for equality.
      int64_t pair[2] = {v.AsRational().num(), v.AsRational().den()};
      return static_cast<int64_t>(Fnv1a64(pair, sizeof(pair)));
    }
  }
  return 0;
}

// EntityIds are allocated sequentially from 1, so they fit the 48-bit
// (page, slot) Rid with room to spare.
storage::Rid RidForEntity(EntityId id) {
  return storage::Rid{static_cast<storage::PageId>(id >> 16),
                      static_cast<uint16_t>(id & 0xFFFF)};
}

EntityId EntityForRid(const storage::Rid& rid) {
  return (static_cast<EntityId>(rid.page_id) << 16) | rid.slot;
}

}  // namespace

// ---------------------------------------------------------------------
// Snapshot read scopes.
// ---------------------------------------------------------------------

SnapshotReadScope::SnapshotReadScope(const Database* db,
                                     std::shared_ptr<const Tables> tables)
    : tables_(std::move(tables)),
      prev_db_(g_pinned.db),
      prev_tables_(g_pinned.tables) {
  if (tables_ != nullptr) {
    SnapCounters::Get().reads->Inc();
    g_pinned.db = db;
    g_pinned.tables = tables_.get();
  }
}

SnapshotReadScope::~SnapshotReadScope() {
  g_pinned.db = prev_db_;
  g_pinned.tables = prev_tables_;
}

const Tables& Database::ReadTables() const {
  if (g_pinned.db == this) return *g_pinned.tables;
  return live_;
}

std::shared_ptr<const Tables> Database::TryPinSnapshot() const {
  // Unpublished mutations with no disciplined writer mid-flight mean a
  // caller mutated through the direct API without guards; serving the
  // stale snapshot would hide those writes from its own thread.
  if (ops_applied_.load(std::memory_order_acquire) !=
          published_ops_.load(std::memory_order_acquire) &&
      !writer_active_.load(std::memory_order_acquire)) {
    SnapCounters::Get().pin_fallbacks->Inc();
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(snap_mu_);
  return published_;
}

void Database::PublishSnapshot() {
  if (published_ != nullptr &&
      ops_applied_.load(std::memory_order_relaxed) ==
          published_ops_.load(std::memory_order_relaxed))
    return;  // nothing changed since the last publish
  RefreshIndexEpochs();
  auto snap = std::make_shared<const Tables>(live_);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    published_ = std::move(snap);
  }
  ++publish_gen_;
  snapshot_epoch_.fetch_add(1, std::memory_order_relaxed);
  published_ops_.store(ops_applied_.load(std::memory_order_relaxed),
                       std::memory_order_release);
  SnapCounters::Get().publishes->Inc();
}

Database::Database() { PublishSnapshot(); }

// ---------------------------------------------------------------------
// Moves.
//
// Hand-written because the latch, the snap mutex, the atomic ablation
// flags and the atomic stats are not movable. Moving is NOT
// latch-protected: callers (mdmsh \load, persist's Restore) quiesce all
// sessions first. The destination gets fresh synchronization state and
// a copy of the counters; the source is left empty and reusable.
// Snapshots pinned from the source before the move stay readable (the
// pin owns the Tables), but resolve against the source object only.
// ---------------------------------------------------------------------

Database::Database(Database&& other) noexcept { *this = std::move(other); }

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  live_ = std::move(other.live_);
  published_ = std::move(other.published_);
  publish_gen_ = other.publish_gen_;
  snapshot_epoch_.store(other.snapshot_epoch_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  ops_applied_.store(other.ops_applied_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  published_ops_.store(other.published_ops_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  writer_active_.store(false, std::memory_order_relaxed);
  ordering_index_enabled_.store(
      other.ordering_index_enabled_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  index_stats_.CopyFrom(other.index_stats_);
  attr_index_enabled_.store(
      other.attr_index_enabled_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  attr_stats_.CopyFrom(other.attr_stats_);
  bulk_index_load_.store(
      other.bulk_index_load_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  attr_erase_dirty_ = other.attr_erase_dirty_;
  wal_ = other.wal_;
  coordinator_ = other.coordinator_;
  open_txn_ = other.open_txn_;
  group_active_ = other.group_active_;
  replaying_ = other.replaying_;

  other.live_ = Tables();
  other.published_.reset();
  other.publish_gen_ = 1;
  other.snapshot_epoch_.store(0, std::memory_order_relaxed);
  other.ops_applied_.store(0, std::memory_order_relaxed);
  other.published_ops_.store(0, std::memory_order_relaxed);
  other.writer_active_.store(false, std::memory_order_relaxed);
  other.bulk_index_load_.store(false, std::memory_order_relaxed);
  other.attr_erase_dirty_ = false;
  other.wal_ = nullptr;
  other.coordinator_ = nullptr;
  other.open_txn_ = 0;
  other.group_active_ = false;
  other.replaying_ = false;
  other.PublishSnapshot();  // leave the source reusable, like fresh-built
  return *this;
}

// ---------------------------------------------------------------------
// Lookup and copy-on-write helpers.
//
// Rule of thumb for this file: PMap-typed fields of live_ may be
// mutated directly (persistent maps never touch shared nodes — a
// published snapshot keeps its own root), while every shared_ptr-held
// struct (schema, by_type, rels_by_name, indexes, OrdStates, records,
// Sibs) goes through its Mutable* helper, which clones unless the
// object is already private to the current publish generation.
// ---------------------------------------------------------------------

const EntityRecord* Database::FindEntity(EntityId id) const {
  const std::shared_ptr<EntityRecord>* p = ReadTables().entities.Find(id);
  return p == nullptr ? nullptr : p->get();
}

EntityRecord* Database::MutableEntity(EntityId id) {
  const std::shared_ptr<EntityRecord>* p = live_.entities.Find(id);
  if (p == nullptr) return nullptr;
  if ((*p)->gen == publish_gen_) return p->get();
  auto fresh = std::make_shared<EntityRecord>(**p);
  fresh->gen = publish_gen_;
  EntityRecord* raw = fresh.get();
  live_.entities.Insert(id, std::move(fresh));
  return raw;
}

RelationshipInstance* Database::MutableRel(RelInstanceId id) {
  const std::shared_ptr<RelationshipInstance>* p = live_.rels.Find(id);
  if (p == nullptr) return nullptr;
  if ((*p)->gen == publish_gen_) return p->get();
  auto fresh = std::make_shared<RelationshipInstance>(**p);
  fresh->gen = publish_gen_;
  RelationshipInstance* raw = fresh.get();
  live_.rels.Insert(id, std::move(fresh));
  return raw;
}

ErSchema* Database::MutableSchema() {
  if (live_.schema->gen != publish_gen_) {
    auto fresh = std::make_shared<SchemaState>(*live_.schema);
    fresh->gen = publish_gen_;
    live_.schema = std::move(fresh);
  }
  return &live_.schema->schema;
}

TypeMap* Database::MutableByType() {
  if (live_.by_type->gen != publish_gen_) {
    auto fresh = std::make_shared<TypeMap>(*live_.by_type);
    fresh->gen = publish_gen_;
    live_.by_type = std::move(fresh);
  }
  return live_.by_type.get();
}

RelNameMap* Database::MutableRelsByName() {
  if (live_.rels_by_name->gen != publish_gen_) {
    auto fresh = std::make_shared<RelNameMap>(*live_.rels_by_name);
    fresh->gen = publish_gen_;
    live_.rels_by_name = std::move(fresh);
  }
  return live_.rels_by_name.get();
}

IndexMap* Database::MutableIndexes() {
  if (live_.indexes->gen != publish_gen_) {
    auto fresh = std::make_shared<IndexMap>(*live_.indexes);
    fresh->gen = publish_gen_;
    live_.indexes = std::move(fresh);
  }
  return live_.indexes.get();
}

OrdState* Database::MutableOrd(size_t index) {
  std::shared_ptr<OrdState>& slot = live_.orderings[index];
  if (slot->gen != publish_gen_) {
    auto fresh = std::make_shared<OrdState>(*slot);  // shares the cell
    fresh->gen = publish_gen_;
    slot = std::move(fresh);
  }
  return slot.get();
}

Sibs* Database::MutableSibs(OrdState* ord, EntityId parent) {
  const std::shared_ptr<Sibs>* cur = ord->children.Find(parent);
  std::shared_ptr<Sibs> fresh;
  if (cur == nullptr) {
    fresh = std::make_shared<Sibs>();
  } else if ((*cur)->gen == publish_gen_) {
    return cur->get();
  } else {
    fresh = std::make_shared<Sibs>(**cur);
  }
  fresh->gen = publish_gen_;
  Sibs* raw = fresh.get();
  ord->children.Insert(parent, std::move(fresh));
  return raw;
}

const ErSchema& Database::schema() const {
  return ReadTables().schema->schema;
}

uint64_t Database::TotalEntities() const {
  return ReadTables().entities.size();
}

const OrderingDef& Database::ordering_def(OrderingHandle h) const {
  return ReadTables().schema->schema.orderings()[h.index()];
}

Result<const OrderingDef*> Database::ResolveOrdering(
    const std::string& name) const {
  const OrderingDef* def = ReadTables().schema->schema.FindOrdering(name);
  if (def == nullptr) return NotFound("no ordering named " + name);
  return def;
}

Result<OrderingHandle> Database::ResolveOrderingHandle(
    std::string_view name) const {
  auto idx = ReadTables().schema->schema.FindOrderingIndex(std::string(name));
  if (!idx.has_value())
    return NotFound("no ordering named " + std::string(name));
  return OrderingHandle::FromIndex(*idx);
}

// ---------------------------------------------------------------------
// Journaling and commit plumbing.
// ---------------------------------------------------------------------

Status Database::LogOp(Op op, const std::vector<uint8_t>& payload) {
  // Counted even when no journal is attached (or during replay): this
  // is the staleness fence TryPinSnapshot compares against.
  ops_applied_.fetch_add(1, std::memory_order_release);
  if (wal_ == nullptr || replaying_) return Status::OK();
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(op));
  w.PutBytes(payload.data(), payload.size());
  std::string bytes(reinterpret_cast<const char*>(w.data().data()),
                    w.size());
  if (open_txn_ != 0) return wal_->LogOp(open_txn_, std::move(bytes));
  if (group_active_) {
    // Statement group: open the group's transaction lazily on the first
    // journaled op; EndStatementGroup commits it.
    MDM_ASSIGN_OR_RETURN(open_txn_, wal_->Begin());
    return wal_->LogOp(open_txn_, std::move(bytes));
  }
  // Auto-commit: each op is its own transaction. With a coordinator the
  // fsync is group-amortized (we block here, latch held — correct but
  // unbatched for single-threaded direct-API use; the executor's
  // statement groups are the fast path).
  MDM_ASSIGN_OR_RETURN(uint64_t txn, wal_->Begin());
  MDM_RETURN_IF_ERROR(wal_->LogOp(txn, std::move(bytes)));
  if (coordinator_ != nullptr) {
    MDM_ASSIGN_OR_RETURN(uint64_t lsn, wal_->CommitNoSync(txn));
    return coordinator_->WaitDurable(lsn);
  }
  return wal_->Commit(txn);
}

Status Database::BeginTxn() {
  if (wal_ == nullptr) return FailedPrecondition("no journal attached");
  if (open_txn_ != 0) return FailedPrecondition("transaction already open");
  MDM_ASSIGN_OR_RETURN(open_txn_, wal_->Begin());
  return Status::OK();
}

Status Database::CommitTxn() {
  if (open_txn_ == 0) return FailedPrecondition("no open transaction");
  uint64_t txn = open_txn_;
  open_txn_ = 0;
  return wal_->Commit(txn);
}

void Database::BeginStatementGroup() {
  writer_active_.store(true, std::memory_order_release);
  group_active_ = true;
}

Result<uint64_t> Database::EndStatementGroup() {
  group_active_ = false;
  uint64_t lsn = 0;
  Status commit = Status::OK();
  if (open_txn_ != 0) {
    uint64_t txn = open_txn_;
    open_txn_ = 0;
    if (coordinator_ != nullptr && wal_ != nullptr) {
      Result<uint64_t> r = wal_->CommitNoSync(txn);
      if (r.ok())
        lsn = *r;
      else
        commit = r.status();
    } else if (wal_ != nullptr) {
      commit = wal_->Commit(txn);
    }
  }
  // Visibility before durability (async-commit style): the new state is
  // published now; the caller acks only after WaitDurable returns.
  PublishSnapshot();
  writer_active_.store(false, std::memory_order_release);
  if (!commit.ok()) return commit;
  return lsn;
}

Status Database::WaitDurable(uint64_t lsn) {
  if (lsn == 0 || coordinator_ == nullptr) return Status::OK();
  return coordinator_->WaitDurable(lsn);
}

// ---------------------------------------------------------------------
// Schema definition.
// ---------------------------------------------------------------------

Status Database::DefineEntityType(EntityTypeDef def) {
  ByteWriter payload;
  EncodeEntityTypeDef(def, &payload);
  MDM_RETURN_IF_ERROR(MutableSchema()->AddEntityType(std::move(def)));
  return LogOp(Op::kDefineEntity, payload.data());
}

Status Database::DefineRelationship(RelationshipDef def) {
  ByteWriter payload;
  EncodeRelationshipDef(def, &payload);
  MDM_RETURN_IF_ERROR(MutableSchema()->AddRelationship(std::move(def)));
  return LogOp(Op::kDefineRelationship, payload.data());
}

Result<std::string> Database::DefineOrdering(OrderingDef def) {
  ErSchema* schema = MutableSchema();
  MDM_RETURN_IF_ERROR(schema->AddOrdering(def));
  // AddOrdering may have generated a name; fetch the stored def.
  const OrderingDef& stored = schema->orderings().back();
  while (live_.orderings.size() < schema->orderings().size()) {
    auto slot = std::make_shared<OrdState>();
    slot->gen = publish_gen_;
    live_.orderings.push_back(std::move(slot));
  }
  ByteWriter payload;
  EncodeOrderingDef(stored, &payload);
  MDM_RETURN_IF_ERROR(LogOp(Op::kDefineOrdering, payload.data()));
  return stored.name;
}

// ---------------------------------------------------------------------
// Entities.
// ---------------------------------------------------------------------

Result<EntityId> Database::CreateEntity(const std::string& type) {
  const ErSchema& schema = live_.schema->schema;
  const EntityTypeDef* def = schema.FindEntityType(type);
  if (def == nullptr) return NotFound("no entity type named " + type);
  uint32_t type_index = 0;
  for (size_t i = 0; i < schema.entity_types().size(); ++i)
    if (&schema.entity_types()[i] == def)
      type_index = static_cast<uint32_t>(i);

  EntityId id = live_.next_entity_id++;
  auto rec = std::make_shared<EntityRecord>();
  rec->id = id;
  rec->type_index = type_index;
  rec->attrs.assign(def->attributes.size(), Value::Null());
  rec->gen = publish_gen_;
  live_.entities.Insert(id, std::move(rec));
  MutableByType()->sets[AsciiUpper(def->name)].Insert(id, 0);

  ByteWriter payload;
  payload.PutString(def->name);
  payload.PutU64(id);
  MDM_RETURN_IF_ERROR(LogOp(Op::kCreateEntity, payload.data()));
  return id;
}

Status Database::DeleteEntity(EntityId id) {
  const std::shared_ptr<EntityRecord>* found = live_.entities.Find(id);
  if (found == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  // Keep the record alive across the container surgery below.
  std::shared_ptr<EntityRecord> rec = *found;
  const ErSchema& schema = live_.schema->schema;
  const std::string type_name = schema.entity_types()[rec->type_index].name;

  // Detach from every ordering: as a child (remove from its siblings) and
  // as a parent (children become roots of that ordering).
  for (size_t i = 0; i < live_.orderings.size(); ++i) {
    const OrdState& cur = *live_.orderings[i];
    const EntityId* pp = cur.parent_of.Find(id);
    const bool as_parent = cur.children.Contains(id);
    if (pp == nullptr && !as_parent) continue;
    EntityId parent = pp == nullptr ? kInvalidEntityId : *pp;
    OrdState* ord = MutableOrd(i);
    if (pp != nullptr) {
      Sibs* sibs = MutableSibs(ord, parent);
      sibs->ids.erase(std::remove(sibs->ids.begin(), sibs->ids.end(), id),
                      sibs->ids.end());
      ord->parent_of.Erase(id);
    }
    if (as_parent) {
      std::vector<EntityId> kids = (*ord->children.Find(id))->ids;
      for (EntityId child : kids) ord->parent_of.Erase(child);
      ord->children.Erase(id);
    }
    ++ord->version;
  }

  // Delete relationship instances that reference the entity.
  std::vector<RelInstanceId> doomed;
  live_.rels.ForEach(
      [&](RelInstanceId rid, const std::shared_ptr<RelationshipInstance>& ri) {
        for (EntityId ref : ri->role_refs)
          if (ref == id) {
            doomed.push_back(rid);
            break;
          }
        return true;
      });
  for (RelInstanceId rid : doomed) {
    const RelationshipInstance& ri = **live_.rels.Find(rid);
    const std::string rel_name =
        AsciiUpper(schema.relationships()[ri.rel_index].name);
    MutableRelsByName()->sets[rel_name].Erase(rid);
    live_.rels.Erase(rid);
  }

  AttrIndexOnDelete(*rec);

  MutableByType()->sets[AsciiUpper(type_name)].Erase(id);
  live_.entities.Erase(id);

  ByteWriter payload;
  payload.PutU64(id);
  return LogOp(Op::kDeleteEntity, payload.data());
}

bool Database::Exists(EntityId id) const { return FindEntity(id) != nullptr; }

Result<std::string> Database::TypeOf(EntityId id) const {
  const Tables& t = ReadTables();
  const std::shared_ptr<EntityRecord>* rec = t.entities.Find(id);
  if (rec == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  return t.schema->schema.entity_types()[(*rec)->type_index].name;
}

Status Database::SetAttribute(EntityId id, const std::string& attr,
                              Value value) {
  const EntityRecord* rec = FindEntity(id);
  if (rec == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  const ErSchema& schema = live_.schema->schema;
  const EntityTypeDef& def = schema.entity_types()[rec->type_index];
  auto idx = def.AttributeIndex(attr);
  if (!idx.has_value())
    return NotFound(StrFormat("entity type %s has no attribute %s",
                              def.name.c_str(), attr.c_str()));
  const AttributeDef& adef = def.attributes[*idx];
  if (!value.is_null()) {
    ValueType got = value.type();
    if (got != adef.type &&
        !(adef.type == ValueType::kFloat && got == ValueType::kInt))
      return TypeError(StrFormat("attribute %s.%s expects %s, got %s",
                                 def.name.c_str(), adef.name.c_str(),
                                 rel::ValueTypeName(adef.type),
                                 rel::ValueTypeName(got)));
    if (adef.type == ValueType::kRef) {
      const EntityRecord* target = FindEntity(value.AsRef());
      if (target == nullptr)
        return NotFound(StrFormat("ref attribute %s targets missing entity "
                                  "#%llu",
                                  adef.name.c_str(),
                                  (unsigned long long)value.AsRef()));
      const std::string& target_type =
          schema.entity_types()[target->type_index].name;
      if (!adef.ref_target.empty() &&
          !EqualsIgnoreCase(target_type, adef.ref_target))
        return TypeError(StrFormat("attribute %s expects a %s, got a %s",
                                   adef.name.c_str(), adef.ref_target.c_str(),
                                   target_type.c_str()));
    }
  }
  ByteWriter payload;
  payload.PutU64(id);
  payload.PutString(adef.name);
  value.Encode(&payload);
  EntityRecord* mut = MutableEntity(id);
  AttrIndexOnSet(*mut, static_cast<uint32_t>(*idx), mut->attrs[*idx], value);
  mut->attrs[*idx] = std::move(value);
  return LogOp(Op::kSetAttribute, payload.data());
}

Result<Value> Database::GetAttribute(EntityId id,
                                     const std::string& attr) const {
  const Tables& t = ReadTables();
  const std::shared_ptr<EntityRecord>* recp = t.entities.Find(id);
  if (recp == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  const EntityRecord& rec = **recp;
  const EntityTypeDef& def = t.schema->schema.entity_types()[rec.type_index];
  auto idx = def.AttributeIndex(attr);
  if (!idx.has_value())
    return NotFound(StrFormat("entity type %s has no attribute %s",
                              def.name.c_str(), attr.c_str()));
  return rec.attrs[*idx];
}

Status Database::ForEachEntity(const std::string& type,
                               const std::function<bool(EntityId)>& fn) const {
  const Tables& t = ReadTables();
  if (t.schema->schema.FindEntityType(type) == nullptr)
    return NotFound("no entity type named " + type);
  auto it = t.by_type->sets.find(AsciiUpper(type));
  if (it == t.by_type->sets.end()) return Status::OK();
  it->second.ForEach([&](EntityId id, uint8_t) { return fn(id); });
  return Status::OK();
}

Result<uint64_t> Database::CountEntities(const std::string& type) const {
  const Tables& t = ReadTables();
  if (t.schema->schema.FindEntityType(type) == nullptr)
    return NotFound("no entity type named " + type);
  auto it = t.by_type->sets.find(AsciiUpper(type));
  return it == t.by_type->sets.end()
             ? 0
             : static_cast<uint64_t>(it->second.size());
}

// ---------------------------------------------------------------------
// Relationships.
// ---------------------------------------------------------------------

Result<RelInstanceId> Database::Connect(
    const std::string& rel,
    const std::vector<std::pair<std::string, EntityId>>& bindings) {
  const ErSchema& schema = live_.schema->schema;
  const RelationshipDef* def = schema.FindRelationship(rel);
  if (def == nullptr) return NotFound("no relationship named " + rel);
  uint32_t rel_index = 0;
  for (size_t i = 0; i < schema.relationships().size(); ++i)
    if (&schema.relationships()[i] == def)
      rel_index = static_cast<uint32_t>(i);

  std::vector<EntityId> refs(def->roles.size(), kInvalidEntityId);
  for (const auto& [role, id] : bindings) {
    auto ridx = def->RoleIndex(role);
    if (!ridx.has_value())
      return NotFound(StrFormat("relationship %s has no role %s",
                                def->name.c_str(), role.c_str()));
    const EntityRecord* target = FindEntity(id);
    if (target == nullptr)
      return NotFound(StrFormat("role %s targets missing entity #%llu",
                                role.c_str(), (unsigned long long)id));
    const std::string& target_type =
        schema.entity_types()[target->type_index].name;
    if (!EqualsIgnoreCase(target_type, def->roles[*ridx].entity_type))
      return TypeError(StrFormat("role %s expects a %s, got a %s",
                                 role.c_str(),
                                 def->roles[*ridx].entity_type.c_str(),
                                 target_type.c_str()));
    refs[*ridx] = id;
  }
  for (size_t i = 0; i < refs.size(); ++i)
    if (refs[i] == kInvalidEntityId)
      return InvalidArgument(StrFormat("role %s of %s is unbound",
                                       def->roles[i].name.c_str(),
                                       def->name.c_str()));

  RelInstanceId id = live_.next_rel_id++;
  auto inst = std::make_shared<RelationshipInstance>();
  inst->id = id;
  inst->rel_index = rel_index;
  inst->role_refs = refs;
  inst->attrs.assign(def->attributes.size(), Value::Null());
  inst->gen = publish_gen_;
  live_.rels.Insert(id, std::move(inst));
  MutableRelsByName()->sets[AsciiUpper(def->name)].Insert(id, 0);

  ByteWriter payload;
  payload.PutString(def->name);
  payload.PutU64(id);
  payload.PutVarint(refs.size());
  for (EntityId ref : refs) payload.PutU64(ref);
  MDM_RETURN_IF_ERROR(LogOp(Op::kConnect, payload.data()));
  return id;
}

Status Database::Disconnect(RelInstanceId id) {
  const std::shared_ptr<RelationshipInstance>* found = live_.rels.Find(id);
  if (found == nullptr)
    return NotFound(StrFormat("no relationship instance #%llu",
                              (unsigned long long)id));
  const std::string rel_name = AsciiUpper(
      live_.schema->schema.relationships()[(*found)->rel_index].name);
  MutableRelsByName()->sets[rel_name].Erase(id);
  live_.rels.Erase(id);
  ByteWriter payload;
  payload.PutU64(id);
  return LogOp(Op::kDisconnect, payload.data());
}

Status Database::SetRelationshipAttribute(RelInstanceId id,
                                          const std::string& attr,
                                          Value value) {
  const std::shared_ptr<RelationshipInstance>* found = live_.rels.Find(id);
  if (found == nullptr)
    return NotFound(StrFormat("no relationship instance #%llu",
                              (unsigned long long)id));
  const RelationshipDef& def =
      live_.schema->schema.relationships()[(*found)->rel_index];
  auto idx = def.AttributeIndex(attr);
  if (!idx.has_value())
    return NotFound(StrFormat("relationship %s has no attribute %s",
                              def.name.c_str(), attr.c_str()));
  const AttributeDef& adef = def.attributes[*idx];
  if (!value.is_null() && value.type() != adef.type &&
      !(adef.type == ValueType::kFloat && value.type() == ValueType::kInt))
    return TypeError(StrFormat("attribute %s.%s expects %s",
                               def.name.c_str(), adef.name.c_str(),
                               rel::ValueTypeName(adef.type)));
  ByteWriter payload;
  payload.PutU64(id);
  payload.PutString(adef.name);
  value.Encode(&payload);
  MutableRel(id)->attrs[*idx] = std::move(value);
  return LogOp(Op::kSetRelAttribute, payload.data());
}

Status Database::ForEachRelationship(
    const std::string& rel,
    const std::function<bool(const RelationshipInstance&)>& fn) const {
  const Tables& t = ReadTables();
  if (t.schema->schema.FindRelationship(rel) == nullptr)
    return NotFound("no relationship named " + rel);
  auto it = t.rels_by_name->sets.find(AsciiUpper(rel));
  if (it == t.rels_by_name->sets.end()) return Status::OK();
  it->second.ForEach([&](RelInstanceId id, uint8_t) {
    const std::shared_ptr<RelationshipInstance>* ri = t.rels.Find(id);
    return ri == nullptr ? true : fn(**ri);
  });
  return Status::OK();
}

Result<uint64_t> Database::CountRelationships(const std::string& rel) const {
  const Tables& t = ReadTables();
  if (t.schema->schema.FindRelationship(rel) == nullptr)
    return NotFound("no relationship named " + rel);
  auto it = t.rels_by_name->sets.find(AsciiUpper(rel));
  return it == t.rels_by_name->sets.end()
             ? 0
             : static_cast<uint64_t>(it->second.size());
}

// ---------------------------------------------------------------------
// Hierarchical ordering.
// ---------------------------------------------------------------------

bool Database::IsAncestor(const OrdState& ord, EntityId needle,
                          EntityId start) const {
  EntityId cur = start;
  while (cur != kInvalidEntityId) {
    if (cur == needle) return true;
    const EntityId* parent = ord.parent_of.Find(cur);
    if (parent == nullptr) return false;
    cur = *parent;
  }
  return false;
}

// ---------------------------------------------------------------------
// Lazy structural indexes (§5.6 execution).
// ---------------------------------------------------------------------

// Both accessors follow the same publish protocol. The caller hands in
// the OrdState it is reading (live or pinned); its `version` stamps the
// edge set exactly (versions advance only under the exclusive latch, so
// version history is linear and equal versions mean equal edges). Under
// the cell's publish_mu — the cell is shared between the live state and
// every snapshot of it — either hand out the published index (if its
// stamp matches) or rebuild from the caller's own children/parent_of.
// Rebuilds republish only monotonically: a reader on a stale snapshot
// keeps its private rebuild instead of clobbering a newer published
// index. Rebuilds serialize on publish_mu — same as before, when it
// doubled as the rebuild mutex.

std::shared_ptr<const RankIndex> Database::RankIndexFor(
    const OrdState& ord) const {
  OrderingIndexCell* cell = ord.cell.get();
  const uint64_t v = ord.version;
  std::lock_guard<std::mutex> lock(cell->publish_mu);
  if (cell->ranks != nullptr && cell->ranks->built_version == v) {
    index_stats_.rank_hits.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().rank_hits->Inc();
    return cell->ranks;
  }
  index_stats_.rank_rebuilds.fetch_add(1, std::memory_order_relaxed);
  ErCounters::Get().rank_rebuilds->Inc();
  auto fresh = std::make_shared<RankIndex>();
  fresh->built_version = v;
  ord.children.ForEach(
      [&](EntityId parent, const std::shared_ptr<Sibs>& sibs) {
        (void)parent;
        for (size_t i = 0; i < sibs->ids.size(); ++i)
          fresh->rank_of[sibs->ids[i]] = i;
        return true;
      });
  if (cell->ranks == nullptr || cell->ranks->built_version < v)
    cell->ranks = fresh;
  return fresh;
}

std::shared_ptr<const IntervalIndex> Database::IntervalIndexFor(
    const OrdState& ord) const {
  OrderingIndexCell* cell = ord.cell.get();
  const uint64_t v = ord.version;
  std::lock_guard<std::mutex> lock(cell->publish_mu);
  if (cell->intervals != nullptr && cell->intervals->built_version == v) {
    index_stats_.interval_hits.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().interval_hits->Inc();
    return cell->intervals;
  }
  obs::Span span("er.interval_rebuild");
  index_stats_.interval_rebuilds.fetch_add(1, std::memory_order_relaxed);
  ErCounters::Get().interval_rebuilds->Inc();
  auto fresh = std::make_shared<IntervalIndex>();
  fresh->built_version = v;
  auto& interval_of = fresh->interval_of;
  uint64_t clock = 0;
  // Iterative Euler tour from every root (a parent that is nobody's
  // child); recursion depth is unbounded in recursive orderings.
  struct Frame {
    EntityId node;
    size_t next_child;
  };
  std::vector<EntityId> roots;
  ord.children.ForEach([&](EntityId parent, const std::shared_ptr<Sibs>&) {
    if (!ord.parent_of.Contains(parent)) roots.push_back(parent);
    return true;
  });
  std::vector<Frame> stack;
  for (EntityId root : roots) {
    stack.push_back({root, 0});
    interval_of[root].first = clock++;
    while (!stack.empty()) {
      Frame& top = stack.back();
      const std::shared_ptr<Sibs>* kids = ord.children.Find(top.node);
      if (kids != nullptr && top.next_child < (*kids)->ids.size()) {
        EntityId next = (*kids)->ids[top.next_child++];
        interval_of[next].first = clock++;
        stack.push_back({next, 0});
      } else {
        interval_of[top.node].second = clock++;
        stack.pop_back();
      }
    }
  }
  if (cell->intervals == nullptr || cell->intervals->built_version < v)
    cell->intervals = fresh;
  return fresh;
}

Status Database::CheckOrderedPairExists(EntityId a, EntityId b) const {
  if (FindEntity(a) == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)a));
  if (FindEntity(b) == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)b));
  return Status::OK();
}

// ---------------------------------------------------------------------
// Mutations.
// ---------------------------------------------------------------------

Status Database::DoInsertChildAt(OrderingHandle h, EntityId parent,
                                 EntityId child, size_t pos) {
  const ErSchema& schema = live_.schema->schema;
  const OrderingDef& def = schema.orderings()[h.index()];
  const EntityRecord* parent_rec = FindEntity(parent);
  if (parent_rec == nullptr)
    return NotFound(StrFormat("no parent entity #%llu",
                              (unsigned long long)parent));
  const EntityRecord* child_rec = FindEntity(child);
  if (child_rec == nullptr)
    return NotFound(StrFormat("no child entity #%llu",
                              (unsigned long long)child));
  const std::string& parent_type =
      schema.entity_types()[parent_rec->type_index].name;
  const std::string& child_type =
      schema.entity_types()[child_rec->type_index].name;
  if (!EqualsIgnoreCase(parent_type, def.parent_type))
    return TypeError(StrFormat("ordering %s expects parent of type %s, "
                               "got %s",
                               def.name.c_str(), def.parent_type.c_str(),
                               parent_type.c_str()));
  if (!def.HasChildType(child_type))
    return TypeError(StrFormat("ordering %s does not admit children of "
                               "type %s",
                               def.name.c_str(), child_type.c_str()));

  const OrdState& cur = *live_.orderings[h.index()];
  if (cur.parent_of.Contains(child))
    return ConstraintViolation(StrFormat(
        "entity #%llu already has a parent in ordering %s",
        (unsigned long long)child, def.name.c_str()));
  // §5.5: P-edge cycles are disallowed — an instance may not be "part of"
  // itself. Only recursive orderings can form them.
  if (child == parent || (def.IsRecursive() && IsAncestor(cur, child, parent)))
    return ConstraintViolation(StrFormat(
        "inserting #%llu under #%llu would create a P-edge cycle in %s",
        (unsigned long long)child, (unsigned long long)parent,
        def.name.c_str()));

  OrdState* ord = MutableOrd(h.index());
  Sibs* sibs = MutableSibs(ord, parent);
  if (pos > sibs->ids.size())
    return OutOfRange(StrFormat("position %zu beyond %zu siblings", pos,
                                sibs->ids.size()));
  sibs->ids.insert(sibs->ids.begin() + pos, child);
  ord->parent_of.Insert(child, parent);
  ++ord->version;

  ByteWriter payload;
  payload.PutString(def.name);
  payload.PutU64(parent);
  payload.PutU64(child);
  payload.PutVarint(pos);
  return LogOp(Op::kInsertChildAt, payload.data());
}

Status Database::AppendChild(OrderingHandle h, EntityId parent,
                             EntityId child) {
  const std::shared_ptr<Sibs>* sibs =
      live_.orderings[h.index()]->children.Find(parent);
  size_t pos = sibs == nullptr ? 0 : (*sibs)->ids.size();
  return DoInsertChildAt(h, parent, child, pos);
}

Status Database::AppendChild(const std::string& ordering, EntityId parent,
                             EntityId child) {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return AppendChild(h, parent, child);
}

Status Database::InsertChildAt(OrderingHandle h, EntityId parent,
                               EntityId child, size_t pos) {
  return DoInsertChildAt(h, parent, child, pos);
}

Status Database::InsertChildAt(const std::string& ordering, EntityId parent,
                               EntityId child, size_t pos) {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return DoInsertChildAt(h, parent, child, pos);
}

Status Database::DoRemoveChild(OrderingHandle h, EntityId child) {
  const OrderingDef& def = live_.schema->schema.orderings()[h.index()];
  const OrdState& cur = *live_.orderings[h.index()];
  const EntityId* pp = cur.parent_of.Find(child);
  if (pp == nullptr)
    return NotFound(StrFormat("entity #%llu has no parent in ordering %s",
                              (unsigned long long)child, def.name.c_str()));
  EntityId parent = *pp;
  OrdState* ord = MutableOrd(h.index());
  Sibs* sibs = MutableSibs(ord, parent);
  sibs->ids.erase(std::remove(sibs->ids.begin(), sibs->ids.end(), child),
                  sibs->ids.end());
  ord->parent_of.Erase(child);
  ++ord->version;
  ByteWriter payload;
  payload.PutString(def.name);
  payload.PutU64(child);
  return LogOp(Op::kRemoveChild, payload.data());
}

Status Database::RemoveChild(OrderingHandle h, EntityId child) {
  return DoRemoveChild(h, child);
}

Status Database::RemoveChild(const std::string& ordering, EntityId child) {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return DoRemoveChild(h, child);
}

// ---------------------------------------------------------------------
// Traversal.
// ---------------------------------------------------------------------

Result<std::vector<EntityId>> Database::Children(OrderingHandle h,
                                                 EntityId parent) const {
  const OrdState& ord = *ReadTables().orderings[h.index()];
  const std::shared_ptr<Sibs>* sibs = ord.children.Find(parent);
  if (sibs == nullptr) return std::vector<EntityId>{};
  return (*sibs)->ids;
}

Result<std::vector<EntityId>> Database::Children(const std::string& ordering,
                                                 EntityId parent) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Children(h, parent);
}

Result<uint64_t> Database::ChildCount(OrderingHandle h,
                                      EntityId parent) const {
  const OrdState& ord = *ReadTables().orderings[h.index()];
  const std::shared_ptr<Sibs>* sibs = ord.children.Find(parent);
  return sibs == nullptr ? 0 : static_cast<uint64_t>((*sibs)->ids.size());
}

Result<uint64_t> Database::ChildCount(const std::string& ordering,
                                      EntityId parent) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return ChildCount(h, parent);
}

Result<EntityId> Database::ParentOf(OrderingHandle h, EntityId child) const {
  const OrdState& ord = *ReadTables().orderings[h.index()];
  const EntityId* parent = ord.parent_of.Find(child);
  return parent == nullptr ? kInvalidEntityId : *parent;
}

Result<EntityId> Database::ParentOf(const std::string& ordering,
                                    EntityId child) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return ParentOf(h, child);
}

Result<size_t> Database::PositionOf(OrderingHandle h, EntityId child) const {
  const OrdState& ord = *ReadTables().orderings[h.index()];
  const EntityId* parent = ord.parent_of.Find(child);
  if (parent != nullptr) {
    if (ordering_index_enabled()) {
      std::shared_ptr<const RankIndex> ranks = RankIndexFor(ord);
      auto rit = ranks->rank_of.find(child);
      if (rit != ranks->rank_of.end()) return rit->second;
    } else {
      index_stats_.linear_scans.fetch_add(1, std::memory_order_relaxed);
      ErCounters::Get().linear_scans->Inc();
      const std::vector<EntityId>& sibs = (*ord.children.Find(*parent))->ids;
      for (size_t i = 0; i < sibs.size(); ++i)
        if (sibs[i] == child) return i;
    }
  }
  return NotFound(StrFormat("entity #%llu is not ordered in %s",
                            (unsigned long long)child,
                            ordering_def(h).name.c_str()));
}

Result<size_t> Database::PositionOf(const std::string& ordering,
                                    EntityId child) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return PositionOf(h, child);
}

Result<EntityId> Database::NthChild(OrderingHandle h, EntityId parent,
                                    size_t n) const {
  const OrdState& ord = *ReadTables().orderings[h.index()];
  const std::shared_ptr<Sibs>* sibs = ord.children.Find(parent);
  size_t count = sibs == nullptr ? 0 : (*sibs)->ids.size();
  if (n >= count)
    return OutOfRange(StrFormat("parent has %zu children, wanted index %zu",
                                count, n));
  return (*sibs)->ids[n];
}

Result<EntityId> Database::NthChild(const std::string& ordering,
                                    EntityId parent, size_t n) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return NthChild(h, parent, n);
}

// ---------------------------------------------------------------------
// §5.6 ordering predicates (see the tri-state contract in database.h).
// ---------------------------------------------------------------------

Result<bool> Database::Before(OrderingHandle h, EntityId a, EntityId b) const {
  MDM_RETURN_IF_ERROR(CheckOrderedPairExists(a, b));
  const OrdState& ord = *ReadTables().orderings[h.index()];
  const EntityId* pa = ord.parent_of.Find(a);
  const EntityId* pb = ord.parent_of.Find(b);
  // §5.6: entities with different parents are not comparable -> false.
  if (pa == nullptr || pb == nullptr || *pa != *pb) return false;
  if (!ordering_index_enabled()) {
    index_stats_.linear_scans.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().linear_scans->Inc();
    const std::vector<EntityId>& sibs = (*ord.children.Find(*pa))->ids;
    size_t ia = sibs.size(), ib = sibs.size();
    for (size_t i = 0; i < sibs.size(); ++i) {
      if (sibs[i] == a) ia = i;
      if (sibs[i] == b) ib = i;
    }
    return ia < ib;
  }
  // Both ranks come from ONE immutable snapshot, so the comparison can
  // never mix pre- and post-mutation sibling orders.
  std::shared_ptr<const RankIndex> ranks = RankIndexFor(ord);
  auto ia = ranks->rank_of.find(a);
  auto ib = ranks->rank_of.find(b);
  if (ia == ranks->rank_of.end() || ib == ranks->rank_of.end()) return false;
  return ia->second < ib->second;
}

Result<bool> Database::Before(const std::string& ordering, EntityId a,
                              EntityId b) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Before(h, a, b);
}

Result<bool> Database::After(OrderingHandle h, EntityId a, EntityId b) const {
  return Before(h, b, a);
}

Result<bool> Database::After(const std::string& ordering, EntityId a,
                             EntityId b) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Before(h, b, a);
}

Result<bool> Database::Under(OrderingHandle h, EntityId child,
                             EntityId parent) const {
  MDM_RETURN_IF_ERROR(CheckOrderedPairExists(child, parent));
  const OrdState& ord = *ReadTables().orderings[h.index()];
  if (child == parent) return false;
  // Fast path: the direct parent needs no interval lookup.
  const EntityId* direct = ord.parent_of.Find(child);
  if (direct == nullptr) return false;
  if (*direct == parent) return true;
  if (!ordering_index_enabled()) {
    // Ablation: multi-level containment by walking P-edges upward.
    index_stats_.linear_scans.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().linear_scans->Inc();
    return IsAncestor(ord, parent, *direct);
  }
  std::shared_ptr<const IntervalIndex> intervals = IntervalIndexFor(ord);
  auto ci = intervals->interval_of.find(child);
  auto pi = intervals->interval_of.find(parent);
  if (ci == intervals->interval_of.end() ||
      pi == intervals->interval_of.end())
    return false;
  return pi->second.first < ci->second.first &&
         ci->second.second < pi->second.second;
}

Result<bool> Database::Under(const std::string& ordering, EntityId child,
                             EntityId parent) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Under(h, child, parent);
}

// ---------------------------------------------------------------------
// Secondary attribute indexes (§5.2 as physical design).
// ---------------------------------------------------------------------

Status Database::DefineIndex(AttrIndexDef def) {
  if (def.name.empty()) return InvalidArgument("index name required");
  const ErSchema& schema = live_.schema->schema;
  const EntityTypeDef* tdef = schema.FindEntityType(def.entity_type);
  if (tdef == nullptr)
    return NotFound("no entity type named " + def.entity_type);
  auto slot = tdef->AttributeIndex(def.attr);
  if (!slot.has_value())
    return NotFound(StrFormat("entity type %s has no attribute %s",
                              tdef->name.c_str(), def.attr.c_str()));
  const std::string key = AsciiUpper(def.name);
  if (live_.indexes->slots.count(key) != 0)
    return AlreadyExists("an index named " + def.name + " already exists");

  auto ix = std::make_shared<AttrIndex>();
  // Store the schema's canonical spellings so explain output and the
  // meta-schema catalog match the DDL regardless of query-side casing.
  ix->def.name = std::move(def.name);
  ix->def.entity_type = tdef->name;
  ix->def.attr = tdef->attributes[*slot].name;
  for (size_t i = 0; i < schema.entity_types().size(); ++i)
    if (&schema.entity_types()[i] == tdef)
      ix->type_index = static_cast<uint32_t>(i);
  ix->attr_slot = static_cast<uint32_t>(*slot);

  // Backfill from existing entities (nulls are never indexed). The tree
  // is not yet visible to any reader, so no probe lock is needed.
  attr_stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
  IndexCounters::Get().rebuilds->Inc();
  auto by = live_.by_type->sets.find(AsciiUpper(tdef->name));
  if (by != live_.by_type->sets.end()) {
    by->second.ForEach([&](EntityId id, uint8_t) {
      const Value& v = (*live_.entities.Find(id))->attrs[ix->attr_slot];
      if (!v.is_null()) {
        ix->tree.Insert(AttrKeyFor(v), RidForEntity(id));
        attr_stats_.inserts.fetch_add(1, std::memory_order_relaxed);
        IndexCounters::Get().inserts->Inc();
      }
      return true;
    });
  }

  ByteWriter payload;
  payload.PutString(ix->def.name);
  payload.PutString(ix->def.entity_type);
  payload.PutString(ix->def.attr);
  MutableIndexes()->slots[key] = IndexSlot{std::move(ix), 0};
  return LogOp(Op::kDefineIndex, payload.data());
}

Status Database::DestroyIndex(const std::string& name) {
  const std::string key = AsciiUpper(name);
  if (live_.indexes->slots.count(key) == 0)
    return NotFound("no index named " + name);
  // Pinned snapshots co-own the AttrIndex and keep probing it.
  MutableIndexes()->slots.erase(key);
  ByteWriter payload;
  payload.PutString(name);
  return LogOp(Op::kDestroyIndex, payload.data());
}

std::vector<AttrIndexDef> Database::AttrIndexDefs() const {
  std::vector<AttrIndexDef> out;
  for (const auto& [key, slot] : ReadTables().indexes->slots)
    out.push_back(slot.index->def);
  return out;
}

const AttrIndex* Database::FindAttrIndex(std::string_view entity_type,
                                         std::string_view attr) const {
  if (!attr_index_enabled()) return nullptr;
  if (bulk_index_load_.load(std::memory_order_relaxed)) return nullptr;
  for (const auto& [key, slot] : ReadTables().indexes->slots) {
    if (EqualsIgnoreCase(slot.index->def.entity_type, entity_type) &&
        EqualsIgnoreCase(slot.index->def.attr, attr))
      return slot.index.get();
  }
  return nullptr;
}

const AttrIndex* Database::FindAttrIndexByName(std::string_view name) const {
  const IndexMap& im = *ReadTables().indexes;
  auto it = im.slots.find(AsciiUpper(std::string(name)));
  return it == im.slots.end() ? nullptr : it->second.index.get();
}

std::vector<EntityId> Database::IndexLookup(const AttrIndex& index,
                                            const Value& key) const {
  std::vector<EntityId> out;
  if (key.is_null()) return out;  // see header: callers scan for nulls
  attr_stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  IndexCounters::Get().lookups->Inc();
  const Tables& t = ReadTables();
  if (&t == &live_) {
    // Live read: the caller holds the db latch (shared or exclusive),
    // which already excludes tree maintenance (exclusive latch).
    for (const storage::Rid& rid : index.tree.Find(AttrKeyFor(key)))
      out.push_back(EntityForRid(rid));
    return out;
  }
  // Snapshot probe. The tree is shared mutable state, so synchronize
  // with writer maintenance on probe_mu and fence on the erase epoch
  // captured when this snapshot was published: an erase since then may
  // have removed a row this snapshot still contains.
  const IndexSlot* slot = nullptr;
  auto it = t.indexes->slots.find(AsciiUpper(index.def.name));
  if (it != t.indexes->slots.end() && it->second.index.get() == &index)
    slot = &it->second;
  {
    std::shared_lock<std::shared_mutex> probe(index.probe_mu);
    if (slot != nullptr &&
        index.erase_epoch.load(std::memory_order_acquire) ==
            slot->erase_epoch) {
      for (const storage::Rid& rid : index.tree.Find(AttrKeyFor(key))) {
        EntityId id = EntityForRid(rid);
        // Rows inserted after the snapshot are filtered here (and by the
        // retained equality conjunct for value changes).
        if (t.entities.Contains(id)) out.push_back(id);
      }
      return out;
    }
  }
  // Degraded: scan-shaped candidate list — every id of the indexed type
  // in this snapshot. Correct superset; the conjunct re-check filters.
  SnapCounters::Get().index_fallbacks->Inc();
  const std::string type_name =
      AsciiUpper(t.schema->schema.entity_types()[index.type_index].name);
  auto bt = t.by_type->sets.find(type_name);
  if (bt != t.by_type->sets.end()) {
    bt->second.ForEach([&](EntityId id, uint8_t) {
      out.push_back(id);
      return true;
    });
  }
  return out;
}

void Database::AttrIndexOnSet(const EntityRecord& rec, uint32_t attr_slot,
                              const Value& old_value, const Value& new_value) {
  if (bulk_index_load_.load(std::memory_order_relaxed)) return;
  const IndexMap& im = *live_.indexes;
  if (im.slots.empty()) return;
  for (const auto& [key, slot] : im.slots) {
    AttrIndex& ix = *slot.index;
    if (ix.type_index != rec.type_index || ix.attr_slot != attr_slot)
      continue;
    std::unique_lock<std::shared_mutex> probe(ix.probe_mu);
    if (!old_value.is_null() &&
        ix.tree.Erase(AttrKeyFor(old_value), RidForEntity(rec.id))) {
      ix.erase_epoch.fetch_add(1, std::memory_order_release);
      attr_erase_dirty_ = true;
      attr_stats_.erases.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().erases->Inc();
    }
    if (!new_value.is_null()) {
      ix.tree.Insert(AttrKeyFor(new_value), RidForEntity(rec.id));
      attr_stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().inserts->Inc();
    }
  }
}

void Database::AttrIndexOnDelete(const EntityRecord& rec) {
  if (bulk_index_load_.load(std::memory_order_relaxed)) return;
  const IndexMap& im = *live_.indexes;
  if (im.slots.empty()) return;
  for (const auto& [key, slot] : im.slots) {
    AttrIndex& ix = *slot.index;
    if (ix.type_index != rec.type_index) continue;
    const Value& v = rec.attrs[ix.attr_slot];
    if (v.is_null()) continue;
    std::unique_lock<std::shared_mutex> probe(ix.probe_mu);
    if (ix.tree.Erase(AttrKeyFor(v), RidForEntity(rec.id))) {
      ix.erase_epoch.fetch_add(1, std::memory_order_release);
      attr_erase_dirty_ = true;
      attr_stats_.erases.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().erases->Inc();
    }
  }
}

void Database::RefreshIndexEpochs() {
  if (!attr_erase_dirty_) return;
  attr_erase_dirty_ = false;
  IndexMap* im = MutableIndexes();
  for (auto& [key, slot] : im->slots)
    slot.erase_epoch = slot.index->erase_epoch.load(std::memory_order_acquire);
}

void Database::BeginBulkIndexLoad() {
  bulk_index_load_.store(true, std::memory_order_relaxed);
}

Result<uint64_t> Database::EndBulkIndexLoad() {
  if (!bulk_index_load_.load(std::memory_order_relaxed))
    return FailedPrecondition("no bulk index load active");
  bulk_index_load_.store(false, std::memory_order_relaxed);
  uint64_t rebuilt = 0;
  const ErSchema& schema = live_.schema->schema;
  for (const auto& [key, slot] : live_.indexes->slots) {
    AttrIndex& ix = *slot.index;
    std::unique_lock<std::shared_mutex> probe(ix.probe_mu);
    ix.tree = storage::BTree();
    attr_stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    IndexCounters::Get().rebuilds->Inc();
    const std::string type_name =
        AsciiUpper(schema.entity_types()[ix.type_index].name);
    auto by = live_.by_type->sets.find(type_name);
    if (by != live_.by_type->sets.end()) {
      by->second.ForEach([&](EntityId id, uint8_t) {
        const Value& v = (*live_.entities.Find(id))->attrs[ix.attr_slot];
        if (!v.is_null()) {
          ix.tree.Insert(AttrKeyFor(v), RidForEntity(id));
          attr_stats_.inserts.fetch_add(1, std::memory_order_relaxed);
          IndexCounters::Get().inserts->Inc();
        }
        return true;
      });
    }
    // The tree changed wholesale: fence any snapshot published earlier.
    ix.erase_epoch.fetch_add(1, std::memory_order_release);
    attr_erase_dirty_ = true;
    ++rebuilt;
  }
  return rebuilt;
}

// ---------------------------------------------------------------------
// Graphs and diagnostics.
// ---------------------------------------------------------------------

Result<std::string> Database::InstanceGraphDot(
    const std::string& ordering, EntityId root,
    const std::string& label_attr) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  const Tables& t = ReadTables();
  std::string dot =
      "digraph instance_graph {\n  rankdir=TB;\n  node [shape=circle];\n";
  auto label_of = [&](EntityId id) -> std::string {
    const std::shared_ptr<EntityRecord>* recp = t.entities.Find(id);
    if (recp == nullptr) return StrFormat("#%llu", (unsigned long long)id);
    const EntityRecord& rec = **recp;
    const EntityTypeDef& tdef =
        t.schema->schema.entity_types()[rec.type_index];
    if (!label_attr.empty()) {
      auto idx = tdef.AttributeIndex(label_attr);
      if (idx.has_value() && !rec.attrs[*idx].is_null()) {
        const Value& v = rec.attrs[*idx];
        return v.type() == ValueType::kString ? v.AsString() : v.ToString();
      }
    }
    return StrFormat("%s#%llu", tdef.name.c_str(), (unsigned long long)id);
  };
  // BFS over the ordering's P-edges from the root.
  std::vector<EntityId> queue{root};
  dot += StrFormat("  n%llu [label=\"%s\"];\n", (unsigned long long)root,
                   label_of(root).c_str());
  const OrdState& ord = *t.orderings[h.index()];
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    EntityId parent = queue[qi];
    const std::shared_ptr<Sibs>* sibs = ord.children.Find(parent);
    if (sibs == nullptr) continue;
    const std::vector<EntityId>& kids = (*sibs)->ids;
    for (size_t i = 0; i < kids.size(); ++i) {
      dot += StrFormat("  n%llu [label=\"%s\"];\n",
                       (unsigned long long)kids[i], label_of(kids[i]).c_str());
      // P-edge, child -> parent (as drawn in fig 6).
      dot += StrFormat("  n%llu -> n%llu [style=dashed, label=\"P\"];\n",
                       (unsigned long long)kids[i],
                       (unsigned long long)parent);
      // S-edge to the next sibling.
      if (i + 1 < kids.size())
        dot += StrFormat("  n%llu -> n%llu [label=\"S\"];\n",
                         (unsigned long long)kids[i],
                         (unsigned long long)kids[i + 1]);
      queue.push_back(kids[i]);
    }
  }
  dot += "}\n";
  return dot;
}

uint64_t Database::CountDanglingRefs() const {
  const Tables& t = ReadTables();
  uint64_t dangling = 0;
  t.entities.ForEach(
      [&](EntityId, const std::shared_ptr<EntityRecord>& rec) {
        for (const Value& v : rec->attrs)
          if (v.type() == ValueType::kRef && t.entities.Find(v.AsRef()) == nullptr)
            ++dangling;
        return true;
      });
  t.rels.ForEach(
      [&](RelInstanceId, const std::shared_ptr<RelationshipInstance>& ri) {
        for (EntityId ref : ri->role_refs)
          if (t.entities.Find(ref) == nullptr) ++dangling;
        return true;
      });
  return dangling;
}

// ---------------------------------------------------------------------
// Snapshot / restore.
//
// The byte format is unchanged from the pre-COW layout: entities and
// relationship instances in id order (PMap in-order walk ≡ the old
// std::map iteration), orderings by schema position with per-parent
// keyed child lists (iteration order within an ordering is not part of
// the format), index definitions last.
// ---------------------------------------------------------------------

void Database::Snapshot(ByteWriter* w) const {
  const Tables& t = ReadTables();
  w->PutU32(0x4D444D53);  // "MDMS"
  t.schema->schema.Encode(w);
  w->PutU64(t.next_entity_id);
  w->PutU64(t.next_rel_id);
  w->PutVarint(t.entities.size());
  t.entities.ForEach(
      [&](EntityId id, const std::shared_ptr<EntityRecord>& rec) {
        w->PutU64(id);
        w->PutU32(rec->type_index);
        w->PutVarint(rec->attrs.size());
        for (const Value& v : rec->attrs) v.Encode(w);
        return true;
      });
  w->PutVarint(t.rels.size());
  t.rels.ForEach(
      [&](RelInstanceId id, const std::shared_ptr<RelationshipInstance>& ri) {
        w->PutU64(id);
        w->PutU32(ri->rel_index);
        w->PutVarint(ri->role_refs.size());
        for (EntityId ref : ri->role_refs) w->PutU64(ref);
        w->PutVarint(ri->attrs.size());
        for (const Value& v : ri->attrs) v.Encode(w);
        return true;
      });
  w->PutVarint(t.orderings.size());
  for (size_t i = 0; i < t.orderings.size(); ++i) {
    const OrdState& ord = *t.orderings[i];
    w->PutString(AsciiUpper(t.schema->schema.orderings()[i].name));
    w->PutVarint(ord.children.size());
    ord.children.ForEach(
        [&](EntityId parent, const std::shared_ptr<Sibs>& sibs) {
          w->PutU64(parent);
          w->PutVarint(sibs->ids.size());
          for (EntityId kid : sibs->ids) w->PutU64(kid);
          return true;
        });
  }
  // Secondary attribute indexes: definitions only. The tree contents
  // are derivable from the entity data above, so Restore rebuilds them
  // (and counts the rebuilds) instead of deserializing b-tree pages.
  w->PutVarint(t.indexes->slots.size());
  for (const auto& [key, slot] : t.indexes->slots) {
    w->PutString(slot.index->def.name);
    w->PutString(slot.index->def.entity_type);
    w->PutString(slot.index->def.attr);
  }
}

Status Database::Restore(ByteReader* r, Database* out) {
  *out = Database();
  uint32_t magic;
  MDM_RETURN_IF_ERROR(r->GetU32(&magic));
  if (magic != 0x4D444D53) return Corruption("bad snapshot magic");
  {
    ErSchema decoded;
    MDM_RETURN_IF_ERROR(ErSchema::Decode(r, &decoded));
    *out->MutableSchema() = std::move(decoded);
  }
  const ErSchema& schema = out->live_.schema->schema;
  MDM_RETURN_IF_ERROR(r->GetU64(&out->live_.next_entity_id));
  MDM_RETURN_IF_ERROR(r->GetU64(&out->live_.next_rel_id));
  TypeMap* by_type = out->MutableByType();
  uint64_t n_entities;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_entities));
  for (uint64_t i = 0; i < n_entities; ++i) {
    auto rec = std::make_shared<EntityRecord>();
    rec->gen = out->publish_gen_;
    MDM_RETURN_IF_ERROR(r->GetU64(&rec->id));
    MDM_RETURN_IF_ERROR(r->GetU32(&rec->type_index));
    if (rec->type_index >= schema.entity_types().size())
      return Corruption("snapshot entity with bad type index");
    uint64_t n_attrs;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_attrs));
    for (uint64_t j = 0; j < n_attrs; ++j) {
      Value v;
      MDM_RETURN_IF_ERROR(Value::Decode(r, &v));
      rec->attrs.push_back(std::move(v));
    }
    const std::string& type_name =
        schema.entity_types()[rec->type_index].name;
    by_type->sets[AsciiUpper(type_name)].Insert(rec->id, 0);
    EntityId id = rec->id;
    out->live_.entities.Insert(id, std::move(rec));
  }
  RelNameMap* rels_by_name = out->MutableRelsByName();
  uint64_t n_rels;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_rels));
  for (uint64_t i = 0; i < n_rels; ++i) {
    auto ri = std::make_shared<RelationshipInstance>();
    ri->gen = out->publish_gen_;
    MDM_RETURN_IF_ERROR(r->GetU64(&ri->id));
    MDM_RETURN_IF_ERROR(r->GetU32(&ri->rel_index));
    if (ri->rel_index >= schema.relationships().size())
      return Corruption("snapshot relationship with bad index");
    uint64_t n_refs;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_refs));
    for (uint64_t j = 0; j < n_refs; ++j) {
      EntityId ref;
      MDM_RETURN_IF_ERROR(r->GetU64(&ref));
      ri->role_refs.push_back(ref);
    }
    uint64_t n_attrs;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_attrs));
    for (uint64_t j = 0; j < n_attrs; ++j) {
      Value v;
      MDM_RETURN_IF_ERROR(Value::Decode(r, &v));
      ri->attrs.push_back(std::move(v));
    }
    const std::string& rel_name =
        schema.relationships()[ri->rel_index].name;
    rels_by_name->sets[AsciiUpper(rel_name)].Insert(ri->id, 0);
    RelInstanceId id = ri->id;
    out->live_.rels.Insert(id, std::move(ri));
  }
  uint64_t n_orderings;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_orderings));
  while (out->live_.orderings.size() < schema.orderings().size()) {
    auto slot = std::make_shared<OrdState>();
    slot->gen = out->publish_gen_;
    out->live_.orderings.push_back(std::move(slot));
  }
  for (uint64_t i = 0; i < n_orderings; ++i) {
    std::string name;
    MDM_RETURN_IF_ERROR(r->GetString(&name));
    auto idx = schema.FindOrderingIndex(name);
    if (!idx.has_value())
      return Corruption("snapshot ordering instances for unknown ordering " +
                        name);
    OrdState* ord = out->live_.orderings[*idx].get();
    uint64_t n_parents;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_parents));
    for (uint64_t j = 0; j < n_parents; ++j) {
      EntityId parent;
      MDM_RETURN_IF_ERROR(r->GetU64(&parent));
      uint64_t n_kids;
      MDM_RETURN_IF_ERROR(r->GetVarint(&n_kids));
      auto sibs = std::make_shared<Sibs>();
      sibs->gen = out->publish_gen_;
      for (uint64_t k = 0; k < n_kids; ++k) {
        EntityId kid;
        MDM_RETURN_IF_ERROR(r->GetU64(&kid));
        sibs->ids.push_back(kid);
        ord->parent_of.Insert(kid, parent);
      }
      ord->children.Insert(parent, std::move(sibs));
    }
  }
  // Index-definition section (absent in pre-index snapshots: treat EOF
  // as zero indexes). DefineIndex re-backfills each tree from the
  // freshly restored entities; no journal is attached yet, so nothing
  // is re-logged.
  if (!r->AtEnd()) {
    uint64_t n_indexes;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_indexes));
    for (uint64_t i = 0; i < n_indexes; ++i) {
      AttrIndexDef def;
      MDM_RETURN_IF_ERROR(r->GetString(&def.name));
      MDM_RETURN_IF_ERROR(r->GetString(&def.entity_type));
      MDM_RETURN_IF_ERROR(r->GetString(&def.attr));
      MDM_RETURN_IF_ERROR(out->DefineIndex(std::move(def)));
    }
  }
  // The direct container fills above bypass LogOp, so force the ops
  // fence forward before publishing (readers must see the restored
  // state, not the empty ctor snapshot).
  out->ops_applied_.fetch_add(1, std::memory_order_release);
  out->PublishSnapshot();
  return Status::OK();
}

// ---------------------------------------------------------------------
// Journal replay.
// ---------------------------------------------------------------------

Status Database::ApplyOp(const storage::WalRecord& rec) {
  ByteReader r(reinterpret_cast<const uint8_t*>(rec.payload.data()),
               rec.payload.size());
  uint8_t opcode;
  MDM_RETURN_IF_ERROR(r.GetU8(&opcode));
  switch (static_cast<Op>(opcode)) {
    case Op::kDefineEntity: {
      EntityTypeDef def;
      MDM_RETURN_IF_ERROR(DecodeEntityTypeDef(&r, &def));
      return DefineEntityType(std::move(def));
    }
    case Op::kDefineRelationship: {
      RelationshipDef def;
      MDM_RETURN_IF_ERROR(DecodeRelationshipDef(&r, &def));
      return DefineRelationship(std::move(def));
    }
    case Op::kDefineOrdering: {
      OrderingDef def;
      MDM_RETURN_IF_ERROR(DecodeOrderingDef(&r, &def));
      return DefineOrdering(std::move(def)).ok()
                 ? Status::OK()
                 : Internal("ordering replay failed");
    }
    case Op::kCreateEntity: {
      std::string type;
      uint64_t id;
      MDM_RETURN_IF_ERROR(r.GetString(&type));
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      // Replay must reproduce the original id.
      live_.next_entity_id = id;
      MDM_ASSIGN_OR_RETURN(EntityId got, CreateEntity(type));
      if (got != id) return Corruption("journal replay id drift");
      return Status::OK();
    }
    case Op::kDeleteEntity: {
      uint64_t id;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      return DeleteEntity(id);
    }
    case Op::kSetAttribute: {
      uint64_t id;
      std::string attr;
      Value v;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      MDM_RETURN_IF_ERROR(r.GetString(&attr));
      MDM_RETURN_IF_ERROR(Value::Decode(&r, &v));
      return SetAttribute(id, attr, std::move(v));
    }
    case Op::kConnect: {
      std::string rel;
      uint64_t id, n;
      MDM_RETURN_IF_ERROR(r.GetString(&rel));
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      MDM_RETURN_IF_ERROR(r.GetVarint(&n));
      const RelationshipDef* def = live_.schema->schema.FindRelationship(rel);
      if (def == nullptr || def->roles.size() != n)
        return Corruption("journal connect against unknown relationship");
      std::vector<std::pair<std::string, EntityId>> bindings;
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t ref;
        MDM_RETURN_IF_ERROR(r.GetU64(&ref));
        bindings.emplace_back(def->roles[i].name, ref);
      }
      live_.next_rel_id = id;
      MDM_ASSIGN_OR_RETURN(RelInstanceId got, Connect(rel, bindings));
      if (got != id) return Corruption("journal replay rel-id drift");
      return Status::OK();
    }
    case Op::kDisconnect: {
      uint64_t id;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      return Disconnect(id);
    }
    case Op::kInsertChildAt: {
      std::string ordering;
      uint64_t parent, child, pos;
      MDM_RETURN_IF_ERROR(r.GetString(&ordering));
      MDM_RETURN_IF_ERROR(r.GetU64(&parent));
      MDM_RETURN_IF_ERROR(r.GetU64(&child));
      MDM_RETURN_IF_ERROR(r.GetVarint(&pos));
      return InsertChildAt(ordering, parent, child, pos);
    }
    case Op::kRemoveChild: {
      std::string ordering;
      uint64_t child;
      MDM_RETURN_IF_ERROR(r.GetString(&ordering));
      MDM_RETURN_IF_ERROR(r.GetU64(&child));
      return RemoveChild(ordering, child);
    }
    case Op::kSetRelAttribute: {
      uint64_t id;
      std::string attr;
      Value v;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      MDM_RETURN_IF_ERROR(r.GetString(&attr));
      MDM_RETURN_IF_ERROR(Value::Decode(&r, &v));
      return SetRelationshipAttribute(id, attr, std::move(v));
    }
    case Op::kDefineIndex: {
      AttrIndexDef def;
      MDM_RETURN_IF_ERROR(r.GetString(&def.name));
      MDM_RETURN_IF_ERROR(r.GetString(&def.entity_type));
      MDM_RETURN_IF_ERROR(r.GetString(&def.attr));
      return DefineIndex(std::move(def));
    }
    case Op::kDestroyIndex: {
      std::string name;
      MDM_RETURN_IF_ERROR(r.GetString(&name));
      return DestroyIndex(name);
    }
  }
  return Corruption(StrFormat("unknown journal opcode %u", opcode));
}

Status Database::ReplayJournal(const std::vector<uint8_t>& log) {
  replaying_ = true;
  Result<uint64_t> n =
      storage::WalRecover(log, [this](const storage::WalRecord& rec) {
        return ApplyOp(rec);
      });
  replaying_ = false;
  PublishSnapshot();
  if (!n.ok()) return n.status();
  return Status::OK();
}

}  // namespace mdm::er

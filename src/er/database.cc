#include "er/database.h"

#include <algorithm>
#include <cstring>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mdm::er {

using rel::Value;
using rel::ValueType;

namespace {

/// Process-wide mirrors of the per-database OrderingIndexStats fields.
struct ErCounters {
  obs::Counter* rank_hits;
  obs::Counter* rank_rebuilds;
  obs::Counter* interval_hits;
  obs::Counter* interval_rebuilds;
  obs::Counter* linear_scans;
  static const ErCounters& Get() {
    static ErCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_er_rank_hits_total",
            "Sibling-rank lookups answered from a fresh rank index"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_rank_rebuilds_total",
            "Lazy rank-index rebuilds triggered by a lookup"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_interval_hits_total",
            "Containment checks answered from a fresh interval index"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_interval_rebuilds_total",
            "Lazy Euler-tour interval rebuilds"),
        obs::Registry::Global()->GetCounter(
            "mdm_er_linear_scans_total",
            "Ordering predicates evaluated without an index (ablation)")};
    return c;
  }
};

/// Process-wide mirrors of the per-database AttrIndexStats fields.
struct IndexCounters {
  obs::Counter* lookups;
  obs::Counter* inserts;
  obs::Counter* erases;
  obs::Counter* rebuilds;
  static const IndexCounters& Get() {
    static IndexCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_index_lookups_total",
            "Secondary-index probes answered from a B+tree"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_inserts_total",
            "Secondary-index entries added (mutations and backfills)"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_erases_total",
            "Secondary-index entries removed (updates and deletes)"),
        obs::Registry::Global()->GetCounter(
            "mdm_index_rebuilds_total",
            "Secondary-index full backfills (define, restore, replay)")};
    return c;
  }
};

// ---------------------------------------------------------------------
// Secondary-index key encoding.
//
// The B+tree maps int64 keys to entity ids. The encoding must satisfy:
// values equal under Value::Compare encode to the same key (or the
// probe misses rows); unequal values MAY collide (strings and rationals
// are hashed) because the planner keeps the equality conjunct in the
// filter list, so every candidate is re-checked. Value::Compare treats
// int and float as one numeric domain, so integral floats canonicalize
// to their int64 value (Float(2.0) and Int(2) must share a key); -0.0
// folds into that path via the integral check. Nulls are never indexed.
// ---------------------------------------------------------------------

uint64_t Fnv1a64(const void* data, size_t n, uint64_t h = 0xCBF29CE484222325ull) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

int64_t AttrKeyFor(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;  // callers never index or probe nulls
    case ValueType::kBool:
      return v.AsBool() ? 1 : 0;
    case ValueType::kInt:
      return v.AsInt();
    case ValueType::kRef:
      return static_cast<int64_t>(v.AsRef());
    case ValueType::kFloat: {
      double d = v.AsFloat();
      // Integral floats share the int encoding (numeric cross-compare).
      if (d >= -9223372036854775808.0 && d < 9223372036854775808.0 &&
          d == static_cast<double>(static_cast<int64_t>(d)))
        return static_cast<int64_t>(d);
      int64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return bits;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      return static_cast<int64_t>(Fnv1a64(s.data(), s.size()));
    }
    case ValueType::kRational: {
      // Rationals are kept normalized (gcd = 1, den > 0), so hashing
      // (num, den) is exact for equality.
      int64_t pair[2] = {v.AsRational().num(), v.AsRational().den()};
      return static_cast<int64_t>(Fnv1a64(pair, sizeof(pair)));
    }
  }
  return 0;
}

// EntityIds are allocated sequentially from 1, so they fit the 48-bit
// (page, slot) Rid with room to spare.
storage::Rid RidForEntity(EntityId id) {
  return storage::Rid{static_cast<storage::PageId>(id >> 16),
                      static_cast<uint16_t>(id & 0xFFFF)};
}

EntityId EntityForRid(const storage::Rid& rid) {
  return (static_cast<EntityId>(rid.page_id) << 16) | rid.slot;
}

}  // namespace

// ---------------------------------------------------------------------
// Moves.
//
// Hand-written because the latch, the atomic ablation flag and the
// atomic stats are not movable. Moving is NOT latch-protected: callers
// (mdmsh \load, persist's Restore) quiesce all sessions first. The
// destination gets fresh synchronization state and a copy of the
// counters; the source is left empty and reusable.
// ---------------------------------------------------------------------

Database::Database(Database&& other) noexcept { *this = std::move(other); }

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  entities_ = std::move(other.entities_);
  by_type_ = std::move(other.by_type_);
  rel_instances_ = std::move(other.rel_instances_);
  rels_by_name_ = std::move(other.rels_by_name_);
  ordering_instances_ = std::move(other.ordering_instances_);
  next_entity_id_ = other.next_entity_id_;
  next_rel_id_ = other.next_rel_id_;
  ordering_index_enabled_.store(
      other.ordering_index_enabled_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  index_stats_.CopyFrom(other.index_stats_);
  attr_indexes_ = std::move(other.attr_indexes_);
  attr_index_enabled_.store(
      other.attr_index_enabled_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  attr_stats_.CopyFrom(other.attr_stats_);
  wal_ = other.wal_;
  open_txn_ = other.open_txn_;
  replaying_ = other.replaying_;
  other.schema_ = ErSchema();
  other.entities_.clear();
  other.by_type_.clear();
  other.rel_instances_.clear();
  other.rels_by_name_.clear();
  other.ordering_instances_.clear();
  other.attr_indexes_.clear();
  other.next_entity_id_ = 1;
  other.next_rel_id_ = 1;
  other.wal_ = nullptr;
  other.open_txn_ = 0;
  other.replaying_ = false;
  return *this;
}

// ---------------------------------------------------------------------
// Lookup helpers.
// ---------------------------------------------------------------------

const EntityRecord* Database::FindEntity(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : &it->second;
}

EntityRecord* Database::FindEntity(EntityId id) {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : &it->second;
}

Result<const OrderingDef*> Database::ResolveOrdering(
    const std::string& name) const {
  const OrderingDef* def = schema_.FindOrdering(name);
  if (def == nullptr) return NotFound("no ordering named " + name);
  return def;
}

Result<OrderingHandle> Database::ResolveOrderingHandle(
    std::string_view name) const {
  auto idx = schema_.FindOrderingIndex(std::string(name));
  if (!idx.has_value())
    return NotFound("no ordering named " + std::string(name));
  return OrderingHandle::FromIndex(*idx);
}

// ---------------------------------------------------------------------
// Journaling plumbing.
// ---------------------------------------------------------------------

Status Database::LogOp(Op op, const std::vector<uint8_t>& payload) {
  if (wal_ == nullptr || replaying_) return Status::OK();
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(op));
  w.PutBytes(payload.data(), payload.size());
  std::string bytes(reinterpret_cast<const char*>(w.data().data()),
                    w.size());
  if (open_txn_ != 0) return wal_->LogOp(open_txn_, std::move(bytes));
  // Auto-commit: each op is its own transaction.
  MDM_ASSIGN_OR_RETURN(uint64_t txn, wal_->Begin());
  MDM_RETURN_IF_ERROR(wal_->LogOp(txn, std::move(bytes)));
  return wal_->Commit(txn);
}

Status Database::BeginTxn() {
  if (wal_ == nullptr) return FailedPrecondition("no journal attached");
  if (open_txn_ != 0) return FailedPrecondition("transaction already open");
  MDM_ASSIGN_OR_RETURN(open_txn_, wal_->Begin());
  return Status::OK();
}

Status Database::CommitTxn() {
  if (open_txn_ == 0) return FailedPrecondition("no open transaction");
  uint64_t txn = open_txn_;
  open_txn_ = 0;
  return wal_->Commit(txn);
}

// ---------------------------------------------------------------------
// Schema definition.
// ---------------------------------------------------------------------

Status Database::DefineEntityType(EntityTypeDef def) {
  ByteWriter payload;
  EncodeEntityTypeDef(def, &payload);
  MDM_RETURN_IF_ERROR(schema_.AddEntityType(std::move(def)));
  return LogOp(Op::kDefineEntity, payload.data());
}

Status Database::DefineRelationship(RelationshipDef def) {
  ByteWriter payload;
  EncodeRelationshipDef(def, &payload);
  MDM_RETURN_IF_ERROR(schema_.AddRelationship(std::move(def)));
  return LogOp(Op::kDefineRelationship, payload.data());
}

Result<std::string> Database::DefineOrdering(OrderingDef def) {
  MDM_RETURN_IF_ERROR(schema_.AddOrdering(def));
  // AddOrdering may have generated a name; fetch the stored def.
  const OrderingDef& stored = schema_.orderings().back();
  ordering_instances_.resize(schema_.orderings().size());
  ByteWriter payload;
  EncodeOrderingDef(stored, &payload);
  MDM_RETURN_IF_ERROR(LogOp(Op::kDefineOrdering, payload.data()));
  return stored.name;
}

// ---------------------------------------------------------------------
// Entities.
// ---------------------------------------------------------------------

Result<EntityId> Database::CreateEntity(const std::string& type) {
  const EntityTypeDef* def = schema_.FindEntityType(type);
  if (def == nullptr) return NotFound("no entity type named " + type);
  uint32_t type_index = 0;
  for (size_t i = 0; i < schema_.entity_types().size(); ++i)
    if (&schema_.entity_types()[i] == def)
      type_index = static_cast<uint32_t>(i);

  EntityId id = next_entity_id_++;
  EntityRecord rec;
  rec.id = id;
  rec.type_index = type_index;
  rec.attrs.assign(def->attributes.size(), Value::Null());
  entities_.emplace(id, std::move(rec));
  by_type_[AsciiUpper(def->name)].push_back(id);

  ByteWriter payload;
  payload.PutString(def->name);
  payload.PutU64(id);
  MDM_RETURN_IF_ERROR(LogOp(Op::kCreateEntity, payload.data()));
  return id;
}

Status Database::DeleteEntity(EntityId id) {
  EntityRecord* rec = FindEntity(id);
  if (rec == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  const std::string type_name =
      schema_.entity_types()[rec->type_index].name;

  // Detach from every ordering: as a child (remove from its siblings) and
  // as a parent (children become roots of that ordering).
  for (OrderingInstances& inst : ordering_instances_) {
    bool touched = false;
    auto pit = inst.parent_of.find(id);
    if (pit != inst.parent_of.end()) {
      std::vector<EntityId>& sibs = inst.children[pit->second];
      sibs.erase(std::remove(sibs.begin(), sibs.end(), id), sibs.end());
      inst.parent_of.erase(pit);
      touched = true;
    }
    auto cit = inst.children.find(id);
    if (cit != inst.children.end()) {
      for (EntityId child : cit->second) inst.parent_of.erase(child);
      inst.children.erase(cit);
      touched = true;
    }
    if (touched) inst.Invalidate();
  }

  // Delete relationship instances that reference the entity.
  std::vector<RelInstanceId> doomed;
  for (const auto& [rid, ri] : rel_instances_) {
    for (EntityId ref : ri.role_refs)
      if (ref == id) {
        doomed.push_back(rid);
        break;
      }
  }
  for (RelInstanceId rid : doomed) {
    const RelationshipInstance& ri = rel_instances_.at(rid);
    std::vector<RelInstanceId>& list =
        rels_by_name_[AsciiUpper(schema_.relationships()[ri.rel_index].name)];
    list.erase(std::remove(list.begin(), list.end(), rid), list.end());
    rel_instances_.erase(rid);
  }

  AttrIndexOnDelete(*rec);

  std::vector<EntityId>& list = by_type_[AsciiUpper(type_name)];
  list.erase(std::remove(list.begin(), list.end(), id), list.end());
  entities_.erase(id);

  ByteWriter payload;
  payload.PutU64(id);
  return LogOp(Op::kDeleteEntity, payload.data());
}

bool Database::Exists(EntityId id) const { return FindEntity(id) != nullptr; }

Result<std::string> Database::TypeOf(EntityId id) const {
  const EntityRecord* rec = FindEntity(id);
  if (rec == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  return schema_.entity_types()[rec->type_index].name;
}

Status Database::SetAttribute(EntityId id, const std::string& attr,
                              Value value) {
  EntityRecord* rec = FindEntity(id);
  if (rec == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  const EntityTypeDef& def = schema_.entity_types()[rec->type_index];
  auto idx = def.AttributeIndex(attr);
  if (!idx.has_value())
    return NotFound(StrFormat("entity type %s has no attribute %s",
                              def.name.c_str(), attr.c_str()));
  const AttributeDef& adef = def.attributes[*idx];
  if (!value.is_null()) {
    ValueType got = value.type();
    if (got != adef.type &&
        !(adef.type == ValueType::kFloat && got == ValueType::kInt))
      return TypeError(StrFormat("attribute %s.%s expects %s, got %s",
                                 def.name.c_str(), adef.name.c_str(),
                                 rel::ValueTypeName(adef.type),
                                 rel::ValueTypeName(got)));
    if (adef.type == ValueType::kRef) {
      const EntityRecord* target = FindEntity(value.AsRef());
      if (target == nullptr)
        return NotFound(StrFormat("ref attribute %s targets missing entity "
                                  "#%llu",
                                  adef.name.c_str(),
                                  (unsigned long long)value.AsRef()));
      const std::string& target_type =
          schema_.entity_types()[target->type_index].name;
      if (!adef.ref_target.empty() &&
          !EqualsIgnoreCase(target_type, adef.ref_target))
        return TypeError(StrFormat("attribute %s expects a %s, got a %s",
                                   adef.name.c_str(), adef.ref_target.c_str(),
                                   target_type.c_str()));
    }
  }
  ByteWriter payload;
  payload.PutU64(id);
  payload.PutString(adef.name);
  value.Encode(&payload);
  AttrIndexOnSet(*rec, static_cast<uint32_t>(*idx), rec->attrs[*idx], value);
  rec->attrs[*idx] = std::move(value);
  return LogOp(Op::kSetAttribute, payload.data());
}

Result<Value> Database::GetAttribute(EntityId id,
                                     const std::string& attr) const {
  const EntityRecord* rec = FindEntity(id);
  if (rec == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)id));
  const EntityTypeDef& def = schema_.entity_types()[rec->type_index];
  auto idx = def.AttributeIndex(attr);
  if (!idx.has_value())
    return NotFound(StrFormat("entity type %s has no attribute %s",
                              def.name.c_str(), attr.c_str()));
  return rec->attrs[*idx];
}

Status Database::ForEachEntity(const std::string& type,
                               const std::function<bool(EntityId)>& fn) const {
  if (schema_.FindEntityType(type) == nullptr)
    return NotFound("no entity type named " + type);
  auto it = by_type_.find(AsciiUpper(type));
  if (it == by_type_.end()) return Status::OK();
  for (EntityId id : it->second)
    if (!fn(id)) break;
  return Status::OK();
}

Result<uint64_t> Database::CountEntities(const std::string& type) const {
  if (schema_.FindEntityType(type) == nullptr)
    return NotFound("no entity type named " + type);
  auto it = by_type_.find(AsciiUpper(type));
  return it == by_type_.end() ? 0 : static_cast<uint64_t>(it->second.size());
}

// ---------------------------------------------------------------------
// Relationships.
// ---------------------------------------------------------------------

Result<RelInstanceId> Database::Connect(
    const std::string& rel,
    const std::vector<std::pair<std::string, EntityId>>& bindings) {
  const RelationshipDef* def = schema_.FindRelationship(rel);
  if (def == nullptr) return NotFound("no relationship named " + rel);
  uint32_t rel_index = 0;
  for (size_t i = 0; i < schema_.relationships().size(); ++i)
    if (&schema_.relationships()[i] == def)
      rel_index = static_cast<uint32_t>(i);

  std::vector<EntityId> refs(def->roles.size(), kInvalidEntityId);
  for (const auto& [role, id] : bindings) {
    auto ridx = def->RoleIndex(role);
    if (!ridx.has_value())
      return NotFound(StrFormat("relationship %s has no role %s",
                                def->name.c_str(), role.c_str()));
    const EntityRecord* target = FindEntity(id);
    if (target == nullptr)
      return NotFound(StrFormat("role %s targets missing entity #%llu",
                                role.c_str(), (unsigned long long)id));
    const std::string& target_type =
        schema_.entity_types()[target->type_index].name;
    if (!EqualsIgnoreCase(target_type, def->roles[*ridx].entity_type))
      return TypeError(StrFormat("role %s expects a %s, got a %s",
                                 role.c_str(),
                                 def->roles[*ridx].entity_type.c_str(),
                                 target_type.c_str()));
    refs[*ridx] = id;
  }
  for (size_t i = 0; i < refs.size(); ++i)
    if (refs[i] == kInvalidEntityId)
      return InvalidArgument(StrFormat("role %s of %s is unbound",
                                       def->roles[i].name.c_str(),
                                       def->name.c_str()));

  RelInstanceId id = next_rel_id_++;
  RelationshipInstance inst;
  inst.id = id;
  inst.rel_index = rel_index;
  inst.role_refs = refs;
  inst.attrs.assign(def->attributes.size(), Value::Null());
  rel_instances_.emplace(id, std::move(inst));
  rels_by_name_[AsciiUpper(def->name)].push_back(id);

  ByteWriter payload;
  payload.PutString(def->name);
  payload.PutU64(id);
  payload.PutVarint(refs.size());
  for (EntityId ref : refs) payload.PutU64(ref);
  MDM_RETURN_IF_ERROR(LogOp(Op::kConnect, payload.data()));
  return id;
}

Status Database::Disconnect(RelInstanceId id) {
  auto it = rel_instances_.find(id);
  if (it == rel_instances_.end())
    return NotFound(StrFormat("no relationship instance #%llu",
                              (unsigned long long)id));
  std::vector<RelInstanceId>& list = rels_by_name_[AsciiUpper(
      schema_.relationships()[it->second.rel_index].name)];
  list.erase(std::remove(list.begin(), list.end(), id), list.end());
  rel_instances_.erase(it);
  ByteWriter payload;
  payload.PutU64(id);
  return LogOp(Op::kDisconnect, payload.data());
}

Status Database::SetRelationshipAttribute(RelInstanceId id,
                                          const std::string& attr,
                                          Value value) {
  auto it = rel_instances_.find(id);
  if (it == rel_instances_.end())
    return NotFound(StrFormat("no relationship instance #%llu",
                              (unsigned long long)id));
  const RelationshipDef& def = schema_.relationships()[it->second.rel_index];
  auto idx = def.AttributeIndex(attr);
  if (!idx.has_value())
    return NotFound(StrFormat("relationship %s has no attribute %s",
                              def.name.c_str(), attr.c_str()));
  const AttributeDef& adef = def.attributes[*idx];
  if (!value.is_null() && value.type() != adef.type &&
      !(adef.type == ValueType::kFloat && value.type() == ValueType::kInt))
    return TypeError(StrFormat("attribute %s.%s expects %s",
                               def.name.c_str(), adef.name.c_str(),
                               rel::ValueTypeName(adef.type)));
  ByteWriter payload;
  payload.PutU64(id);
  payload.PutString(adef.name);
  value.Encode(&payload);
  it->second.attrs[*idx] = std::move(value);
  return LogOp(Op::kSetRelAttribute, payload.data());
}

Status Database::ForEachRelationship(
    const std::string& rel,
    const std::function<bool(const RelationshipInstance&)>& fn) const {
  if (schema_.FindRelationship(rel) == nullptr)
    return NotFound("no relationship named " + rel);
  auto it = rels_by_name_.find(AsciiUpper(rel));
  if (it == rels_by_name_.end()) return Status::OK();
  for (RelInstanceId id : it->second)
    if (!fn(rel_instances_.at(id))) break;
  return Status::OK();
}

Result<uint64_t> Database::CountRelationships(const std::string& rel) const {
  if (schema_.FindRelationship(rel) == nullptr)
    return NotFound("no relationship named " + rel);
  auto it = rels_by_name_.find(AsciiUpper(rel));
  return it == rels_by_name_.end() ? 0
                                   : static_cast<uint64_t>(it->second.size());
}

// ---------------------------------------------------------------------
// Hierarchical ordering.
// ---------------------------------------------------------------------

bool Database::IsAncestor(const OrderingInstances& inst, EntityId needle,
                          EntityId start) const {
  EntityId cur = start;
  while (cur != kInvalidEntityId) {
    if (cur == needle) return true;
    auto it = inst.parent_of.find(cur);
    if (it == inst.parent_of.end()) return false;
    cur = it->second;
  }
  return false;
}

// ---------------------------------------------------------------------
// Lazy structural indexes (§5.6 execution).
// ---------------------------------------------------------------------

// Both accessors follow the same publish protocol. Load the epoch
// (stable for the whole call: epoch bumps happen under the exclusive
// database latch, and every reader here holds it shared), then under
// the cell's publish_mu either hand out the published snapshot (if its
// stamp matches) or rebuild from children/parent_of and republish.
// Snapshots are immutable once published, so a reader keeps a complete
// (merely stale-epoch) table via shared ownership even after a later
// republish. Rebuilds serialize on publish_mu — same as before, when it
// doubled as the rebuild mutex.

std::shared_ptr<const Database::RankIndex> Database::RankIndexFor(
    const OrderingInstances& inst) const {
  OrderingIndexCell* cell = inst.index.get();
  const uint64_t cur = cell->epoch.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(cell->publish_mu);
  if (cell->ranks != nullptr && cell->ranks->epoch == cur) {
    index_stats_.rank_hits.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().rank_hits->Inc();
    return cell->ranks;
  }
  index_stats_.rank_rebuilds.fetch_add(1, std::memory_order_relaxed);
  ErCounters::Get().rank_rebuilds->Inc();
  auto fresh = std::make_shared<RankIndex>();
  fresh->epoch = cur;
  for (const auto& [parent, sibs] : inst.children) {
    (void)parent;
    for (size_t i = 0; i < sibs.size(); ++i) fresh->rank_of[sibs[i]] = i;
  }
  cell->ranks = fresh;
  return fresh;
}

std::shared_ptr<const Database::IntervalIndex> Database::IntervalIndexFor(
    const OrderingInstances& inst) const {
  OrderingIndexCell* cell = inst.index.get();
  const uint64_t cur = cell->epoch.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(cell->publish_mu);
  if (cell->intervals != nullptr && cell->intervals->epoch == cur) {
    index_stats_.interval_hits.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().interval_hits->Inc();
    return cell->intervals;
  }
  obs::Span span("er.interval_rebuild");
  index_stats_.interval_rebuilds.fetch_add(1, std::memory_order_relaxed);
  ErCounters::Get().interval_rebuilds->Inc();
  auto fresh = std::make_shared<IntervalIndex>();
  fresh->epoch = cur;
  auto& interval_of = fresh->interval_of;
  uint64_t clock = 0;
  // Iterative Euler tour from every root (a parent that is nobody's
  // child); recursion depth is unbounded in recursive orderings.
  struct Frame {
    EntityId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  for (const auto& [root, kids] : inst.children) {
    (void)kids;
    if (inst.parent_of.count(root) != 0) continue;
    stack.push_back({root, 0});
    interval_of[root].first = clock++;
    while (!stack.empty()) {
      Frame& top = stack.back();
      auto cit = inst.children.find(top.node);
      if (cit != inst.children.end() && top.next_child < cit->second.size()) {
        EntityId next = cit->second[top.next_child++];
        interval_of[next].first = clock++;
        stack.push_back({next, 0});
      } else {
        interval_of[top.node].second = clock++;
        stack.pop_back();
      }
    }
  }
  cell->intervals = fresh;
  return fresh;
}

Status Database::CheckOrderedPairExists(EntityId a, EntityId b) const {
  if (FindEntity(a) == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)a));
  if (FindEntity(b) == nullptr)
    return NotFound(StrFormat("no entity #%llu", (unsigned long long)b));
  return Status::OK();
}

// ---------------------------------------------------------------------
// Mutations.
// ---------------------------------------------------------------------

Status Database::DoInsertChildAt(OrderingHandle h, EntityId parent,
                                 EntityId child, size_t pos) {
  const OrderingDef& def = ordering_def(h);
  const EntityRecord* parent_rec = FindEntity(parent);
  if (parent_rec == nullptr)
    return NotFound(StrFormat("no parent entity #%llu",
                              (unsigned long long)parent));
  const EntityRecord* child_rec = FindEntity(child);
  if (child_rec == nullptr)
    return NotFound(StrFormat("no child entity #%llu",
                              (unsigned long long)child));
  const std::string& parent_type =
      schema_.entity_types()[parent_rec->type_index].name;
  const std::string& child_type =
      schema_.entity_types()[child_rec->type_index].name;
  if (!EqualsIgnoreCase(parent_type, def.parent_type))
    return TypeError(StrFormat("ordering %s expects parent of type %s, "
                               "got %s",
                               def.name.c_str(), def.parent_type.c_str(),
                               parent_type.c_str()));
  if (!def.HasChildType(child_type))
    return TypeError(StrFormat("ordering %s does not admit children of "
                               "type %s",
                               def.name.c_str(), child_type.c_str()));

  OrderingInstances& inst = ordering_instances_[h.index()];
  if (inst.parent_of.count(child) != 0)
    return ConstraintViolation(StrFormat(
        "entity #%llu already has a parent in ordering %s",
        (unsigned long long)child, def.name.c_str()));
  // §5.5: P-edge cycles are disallowed — an instance may not be "part of"
  // itself. Only recursive orderings can form them.
  if (child == parent || (def.IsRecursive() && IsAncestor(inst, child, parent)))
    return ConstraintViolation(StrFormat(
        "inserting #%llu under #%llu would create a P-edge cycle in %s",
        (unsigned long long)child, (unsigned long long)parent,
        def.name.c_str()));

  std::vector<EntityId>& sibs = inst.children[parent];
  if (pos > sibs.size())
    return OutOfRange(StrFormat("position %zu beyond %zu siblings", pos,
                                sibs.size()));
  sibs.insert(sibs.begin() + pos, child);
  inst.parent_of[child] = parent;
  inst.Invalidate();

  ByteWriter payload;
  payload.PutString(def.name);
  payload.PutU64(parent);
  payload.PutU64(child);
  payload.PutVarint(pos);
  return LogOp(Op::kInsertChildAt, payload.data());
}

Status Database::AppendChild(OrderingHandle h, EntityId parent,
                             EntityId child) {
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.children.find(parent);
  size_t pos = it == inst.children.end() ? 0 : it->second.size();
  return DoInsertChildAt(h, parent, child, pos);
}

Status Database::AppendChild(const std::string& ordering, EntityId parent,
                             EntityId child) {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return AppendChild(h, parent, child);
}

Status Database::InsertChildAt(OrderingHandle h, EntityId parent,
                               EntityId child, size_t pos) {
  return DoInsertChildAt(h, parent, child, pos);
}

Status Database::InsertChildAt(const std::string& ordering, EntityId parent,
                               EntityId child, size_t pos) {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return DoInsertChildAt(h, parent, child, pos);
}

Status Database::DoRemoveChild(OrderingHandle h, EntityId child) {
  const OrderingDef& def = ordering_def(h);
  OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.parent_of.find(child);
  if (it == inst.parent_of.end())
    return NotFound(StrFormat("entity #%llu has no parent in ordering %s",
                              (unsigned long long)child, def.name.c_str()));
  std::vector<EntityId>& sibs = inst.children[it->second];
  sibs.erase(std::remove(sibs.begin(), sibs.end(), child), sibs.end());
  inst.Invalidate();
  inst.parent_of.erase(it);
  ByteWriter payload;
  payload.PutString(def.name);
  payload.PutU64(child);
  return LogOp(Op::kRemoveChild, payload.data());
}

Status Database::RemoveChild(OrderingHandle h, EntityId child) {
  return DoRemoveChild(h, child);
}

Status Database::RemoveChild(const std::string& ordering, EntityId child) {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return DoRemoveChild(h, child);
}

// ---------------------------------------------------------------------
// Traversal.
// ---------------------------------------------------------------------

Result<std::vector<EntityId>> Database::Children(OrderingHandle h,
                                                 EntityId parent) const {
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.children.find(parent);
  if (it == inst.children.end()) return std::vector<EntityId>{};
  return it->second;
}

Result<std::vector<EntityId>> Database::Children(const std::string& ordering,
                                                 EntityId parent) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Children(h, parent);
}

Result<uint64_t> Database::ChildCount(OrderingHandle h,
                                      EntityId parent) const {
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.children.find(parent);
  return it == inst.children.end() ? 0
                                   : static_cast<uint64_t>(it->second.size());
}

Result<uint64_t> Database::ChildCount(const std::string& ordering,
                                      EntityId parent) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return ChildCount(h, parent);
}

Result<EntityId> Database::ParentOf(OrderingHandle h, EntityId child) const {
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.parent_of.find(child);
  return it == inst.parent_of.end() ? kInvalidEntityId : it->second;
}

Result<EntityId> Database::ParentOf(const std::string& ordering,
                                    EntityId child) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return ParentOf(h, child);
}

Result<size_t> Database::PositionOf(OrderingHandle h, EntityId child) const {
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.parent_of.find(child);
  if (it != inst.parent_of.end()) {
    if (ordering_index_enabled()) {
      std::shared_ptr<const RankIndex> ranks = RankIndexFor(inst);
      auto rit = ranks->rank_of.find(child);
      if (rit != ranks->rank_of.end()) return rit->second;
    } else {
      index_stats_.linear_scans.fetch_add(1, std::memory_order_relaxed);
      ErCounters::Get().linear_scans->Inc();
      const std::vector<EntityId>& sibs = inst.children.at(it->second);
      for (size_t i = 0; i < sibs.size(); ++i)
        if (sibs[i] == child) return i;
    }
  }
  return NotFound(StrFormat("entity #%llu is not ordered in %s",
                            (unsigned long long)child,
                            ordering_def(h).name.c_str()));
}

Result<size_t> Database::PositionOf(const std::string& ordering,
                                    EntityId child) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return PositionOf(h, child);
}

Result<EntityId> Database::NthChild(OrderingHandle h, EntityId parent,
                                    size_t n) const {
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto it = inst.children.find(parent);
  size_t count = it == inst.children.end() ? 0 : it->second.size();
  if (n >= count)
    return OutOfRange(StrFormat("parent has %zu children, wanted index %zu",
                                count, n));
  return it->second[n];
}

Result<EntityId> Database::NthChild(const std::string& ordering,
                                    EntityId parent, size_t n) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return NthChild(h, parent, n);
}

// ---------------------------------------------------------------------
// §5.6 ordering predicates (see the tri-state contract in database.h).
// ---------------------------------------------------------------------

Result<bool> Database::Before(OrderingHandle h, EntityId a, EntityId b) const {
  MDM_RETURN_IF_ERROR(CheckOrderedPairExists(a, b));
  const OrderingInstances& inst = ordering_instances_[h.index()];
  auto pa = inst.parent_of.find(a);
  auto pb = inst.parent_of.find(b);
  // §5.6: entities with different parents are not comparable -> false.
  if (pa == inst.parent_of.end() || pb == inst.parent_of.end() ||
      pa->second != pb->second)
    return false;
  if (!ordering_index_enabled()) {
    index_stats_.linear_scans.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().linear_scans->Inc();
    const std::vector<EntityId>& sibs = inst.children.at(pa->second);
    size_t ia = sibs.size(), ib = sibs.size();
    for (size_t i = 0; i < sibs.size(); ++i) {
      if (sibs[i] == a) ia = i;
      if (sibs[i] == b) ib = i;
    }
    return ia < ib;
  }
  // Both ranks come from ONE immutable snapshot, so the comparison can
  // never mix pre- and post-mutation sibling orders.
  std::shared_ptr<const RankIndex> ranks = RankIndexFor(inst);
  auto ia = ranks->rank_of.find(a);
  auto ib = ranks->rank_of.find(b);
  if (ia == ranks->rank_of.end() || ib == ranks->rank_of.end()) return false;
  return ia->second < ib->second;
}

Result<bool> Database::Before(const std::string& ordering, EntityId a,
                              EntityId b) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Before(h, a, b);
}

Result<bool> Database::After(OrderingHandle h, EntityId a, EntityId b) const {
  return Before(h, b, a);
}

Result<bool> Database::After(const std::string& ordering, EntityId a,
                             EntityId b) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Before(h, b, a);
}

Result<bool> Database::Under(OrderingHandle h, EntityId child,
                             EntityId parent) const {
  MDM_RETURN_IF_ERROR(CheckOrderedPairExists(child, parent));
  const OrderingInstances& inst = ordering_instances_[h.index()];
  if (child == parent) return false;
  // Fast path: the direct parent needs no interval lookup.
  auto it = inst.parent_of.find(child);
  if (it == inst.parent_of.end()) return false;
  if (it->second == parent) return true;
  if (!ordering_index_enabled()) {
    // Ablation: multi-level containment by walking P-edges upward.
    index_stats_.linear_scans.fetch_add(1, std::memory_order_relaxed);
    ErCounters::Get().linear_scans->Inc();
    return IsAncestor(inst, parent, it->second);
  }
  std::shared_ptr<const IntervalIndex> intervals = IntervalIndexFor(inst);
  auto ci = intervals->interval_of.find(child);
  auto pi = intervals->interval_of.find(parent);
  if (ci == intervals->interval_of.end() ||
      pi == intervals->interval_of.end())
    return false;
  return pi->second.first < ci->second.first &&
         ci->second.second < pi->second.second;
}

Result<bool> Database::Under(const std::string& ordering, EntityId child,
                             EntityId parent) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  return Under(h, child, parent);
}

// ---------------------------------------------------------------------
// Secondary attribute indexes (§5.2 as physical design).
// ---------------------------------------------------------------------

Status Database::DefineIndex(AttrIndexDef def) {
  if (def.name.empty()) return InvalidArgument("index name required");
  const EntityTypeDef* tdef = schema_.FindEntityType(def.entity_type);
  if (tdef == nullptr)
    return NotFound("no entity type named " + def.entity_type);
  auto slot = tdef->AttributeIndex(def.attr);
  if (!slot.has_value())
    return NotFound(StrFormat("entity type %s has no attribute %s",
                              tdef->name.c_str(), def.attr.c_str()));
  const std::string key = AsciiUpper(def.name);
  if (attr_indexes_.count(key) != 0)
    return AlreadyExists("an index named " + def.name + " already exists");

  AttrIndex ix;
  // Store the schema's canonical spellings so explain output and the
  // meta-schema catalog match the DDL regardless of query-side casing.
  ix.def.name = std::move(def.name);
  ix.def.entity_type = tdef->name;
  ix.def.attr = tdef->attributes[*slot].name;
  for (size_t i = 0; i < schema_.entity_types().size(); ++i)
    if (&schema_.entity_types()[i] == tdef)
      ix.type_index = static_cast<uint32_t>(i);
  ix.attr_slot = static_cast<uint32_t>(*slot);

  // Backfill from existing entities (nulls are never indexed).
  attr_stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
  IndexCounters::Get().rebuilds->Inc();
  auto by = by_type_.find(AsciiUpper(tdef->name));
  if (by != by_type_.end()) {
    for (EntityId id : by->second) {
      const Value& v = entities_.at(id).attrs[ix.attr_slot];
      if (v.is_null()) continue;
      ix.tree.Insert(AttrKeyFor(v), RidForEntity(id));
      attr_stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().inserts->Inc();
    }
  }

  ByteWriter payload;
  payload.PutString(ix.def.name);
  payload.PutString(ix.def.entity_type);
  payload.PutString(ix.def.attr);
  attr_indexes_.emplace(key, std::move(ix));
  return LogOp(Op::kDefineIndex, payload.data());
}

Status Database::DestroyIndex(const std::string& name) {
  auto it = attr_indexes_.find(AsciiUpper(name));
  if (it == attr_indexes_.end())
    return NotFound("no index named " + name);
  attr_indexes_.erase(it);
  ByteWriter payload;
  payload.PutString(name);
  return LogOp(Op::kDestroyIndex, payload.data());
}

std::vector<AttrIndexDef> Database::AttrIndexDefs() const {
  std::vector<AttrIndexDef> out;
  for (const auto& [key, ix] : attr_indexes_) out.push_back(ix.def);
  return out;
}

const AttrIndex* Database::FindAttrIndex(std::string_view entity_type,
                                         std::string_view attr) const {
  if (!attr_index_enabled()) return nullptr;
  for (const auto& [key, ix] : attr_indexes_) {
    if (EqualsIgnoreCase(ix.def.entity_type, entity_type) &&
        EqualsIgnoreCase(ix.def.attr, attr))
      return &ix;
  }
  return nullptr;
}

const AttrIndex* Database::FindAttrIndexByName(std::string_view name) const {
  auto it = attr_indexes_.find(AsciiUpper(std::string(name)));
  return it == attr_indexes_.end() ? nullptr : &it->second;
}

std::vector<EntityId> Database::IndexLookup(const AttrIndex& index,
                                            const Value& key) const {
  std::vector<EntityId> out;
  if (key.is_null()) return out;  // see header: callers scan for nulls
  attr_stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  IndexCounters::Get().lookups->Inc();
  for (const storage::Rid& rid : index.tree.Find(AttrKeyFor(key)))
    out.push_back(EntityForRid(rid));
  return out;
}

void Database::AttrIndexOnSet(const EntityRecord& rec, uint32_t attr_slot,
                              const Value& old_value, const Value& new_value) {
  if (attr_indexes_.empty()) return;
  for (auto& [key, ix] : attr_indexes_) {
    if (ix.type_index != rec.type_index || ix.attr_slot != attr_slot)
      continue;
    if (!old_value.is_null() &&
        ix.tree.Erase(AttrKeyFor(old_value), RidForEntity(rec.id))) {
      attr_stats_.erases.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().erases->Inc();
    }
    if (!new_value.is_null()) {
      ix.tree.Insert(AttrKeyFor(new_value), RidForEntity(rec.id));
      attr_stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().inserts->Inc();
    }
  }
}

void Database::AttrIndexOnDelete(const EntityRecord& rec) {
  if (attr_indexes_.empty()) return;
  for (auto& [key, ix] : attr_indexes_) {
    if (ix.type_index != rec.type_index) continue;
    const Value& v = rec.attrs[ix.attr_slot];
    if (v.is_null()) continue;
    if (ix.tree.Erase(AttrKeyFor(v), RidForEntity(rec.id))) {
      attr_stats_.erases.fetch_add(1, std::memory_order_relaxed);
      IndexCounters::Get().erases->Inc();
    }
  }
}

// ---------------------------------------------------------------------
// Graphs and diagnostics.
// ---------------------------------------------------------------------

Result<std::string> Database::InstanceGraphDot(
    const std::string& ordering, EntityId root,
    const std::string& label_attr) const {
  MDM_ASSIGN_OR_RETURN(OrderingHandle h, ResolveOrderingHandle(ordering));
  std::string dot =
      "digraph instance_graph {\n  rankdir=TB;\n  node [shape=circle];\n";
  auto label_of = [&](EntityId id) -> std::string {
    const EntityRecord* rec = FindEntity(id);
    if (rec == nullptr) return StrFormat("#%llu", (unsigned long long)id);
    const EntityTypeDef& tdef = schema_.entity_types()[rec->type_index];
    if (!label_attr.empty()) {
      auto idx = tdef.AttributeIndex(label_attr);
      if (idx.has_value() && !rec->attrs[*idx].is_null()) {
        const Value& v = rec->attrs[*idx];
        return v.type() == ValueType::kString ? v.AsString() : v.ToString();
      }
    }
    return StrFormat("%s#%llu", tdef.name.c_str(), (unsigned long long)id);
  };
  // BFS over the ordering's P-edges from the root.
  std::vector<EntityId> queue{root};
  dot += StrFormat("  n%llu [label=\"%s\"];\n", (unsigned long long)root,
                   label_of(root).c_str());
  const OrderingInstances& inst = ordering_instances_[h.index()];
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    EntityId parent = queue[qi];
    auto it = inst.children.find(parent);
    if (it == inst.children.end()) continue;
    const std::vector<EntityId>& kids = it->second;
    for (size_t i = 0; i < kids.size(); ++i) {
      dot += StrFormat("  n%llu [label=\"%s\"];\n",
                       (unsigned long long)kids[i], label_of(kids[i]).c_str());
      // P-edge, child -> parent (as drawn in fig 6).
      dot += StrFormat("  n%llu -> n%llu [style=dashed, label=\"P\"];\n",
                       (unsigned long long)kids[i],
                       (unsigned long long)parent);
      // S-edge to the next sibling.
      if (i + 1 < kids.size())
        dot += StrFormat("  n%llu -> n%llu [label=\"S\"];\n",
                         (unsigned long long)kids[i],
                         (unsigned long long)kids[i + 1]);
      queue.push_back(kids[i]);
    }
  }
  dot += "}\n";
  return dot;
}

uint64_t Database::CountDanglingRefs() const {
  uint64_t dangling = 0;
  for (const auto& [id, rec] : entities_) {
    for (const Value& v : rec.attrs)
      if (v.type() == ValueType::kRef && !Exists(v.AsRef())) ++dangling;
  }
  for (const auto& [rid, ri] : rel_instances_) {
    for (EntityId ref : ri.role_refs)
      if (!Exists(ref)) ++dangling;
  }
  return dangling;
}

// ---------------------------------------------------------------------
// Snapshot / restore.
// ---------------------------------------------------------------------

void Database::Snapshot(ByteWriter* w) const {
  w->PutU32(0x4D444D53);  // "MDMS"
  schema_.Encode(w);
  w->PutU64(next_entity_id_);
  w->PutU64(next_rel_id_);
  w->PutVarint(entities_.size());
  for (const auto& [id, rec] : entities_) {
    w->PutU64(id);
    w->PutU32(rec.type_index);
    w->PutVarint(rec.attrs.size());
    for (const Value& v : rec.attrs) v.Encode(w);
  }
  w->PutVarint(rel_instances_.size());
  for (const auto& [id, ri] : rel_instances_) {
    w->PutU64(id);
    w->PutU32(ri.rel_index);
    w->PutVarint(ri.role_refs.size());
    for (EntityId ref : ri.role_refs) w->PutU64(ref);
    w->PutVarint(ri.attrs.size());
    for (const Value& v : ri.attrs) v.Encode(w);
  }
  w->PutVarint(ordering_instances_.size());
  for (size_t i = 0; i < ordering_instances_.size(); ++i) {
    const OrderingInstances& inst = ordering_instances_[i];
    w->PutString(AsciiUpper(schema_.orderings()[i].name));
    w->PutVarint(inst.children.size());
    for (const auto& [parent, kids] : inst.children) {
      w->PutU64(parent);
      w->PutVarint(kids.size());
      for (EntityId kid : kids) w->PutU64(kid);
    }
  }
  // Secondary attribute indexes: definitions only. The tree contents
  // are derivable from the entity data above, so Restore rebuilds them
  // (and counts the rebuilds) instead of deserializing b-tree pages.
  w->PutVarint(attr_indexes_.size());
  for (const auto& [key, ix] : attr_indexes_) {
    w->PutString(ix.def.name);
    w->PutString(ix.def.entity_type);
    w->PutString(ix.def.attr);
  }
}

Status Database::Restore(ByteReader* r, Database* out) {
  *out = Database();
  uint32_t magic;
  MDM_RETURN_IF_ERROR(r->GetU32(&magic));
  if (magic != 0x4D444D53) return Corruption("bad snapshot magic");
  MDM_RETURN_IF_ERROR(ErSchema::Decode(r, &out->schema_));
  MDM_RETURN_IF_ERROR(r->GetU64(&out->next_entity_id_));
  MDM_RETURN_IF_ERROR(r->GetU64(&out->next_rel_id_));
  uint64_t n_entities;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_entities));
  for (uint64_t i = 0; i < n_entities; ++i) {
    EntityRecord rec;
    MDM_RETURN_IF_ERROR(r->GetU64(&rec.id));
    MDM_RETURN_IF_ERROR(r->GetU32(&rec.type_index));
    if (rec.type_index >= out->schema_.entity_types().size())
      return Corruption("snapshot entity with bad type index");
    uint64_t n_attrs;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_attrs));
    for (uint64_t j = 0; j < n_attrs; ++j) {
      Value v;
      MDM_RETURN_IF_ERROR(Value::Decode(r, &v));
      rec.attrs.push_back(std::move(v));
    }
    const std::string& type_name =
        out->schema_.entity_types()[rec.type_index].name;
    out->by_type_[AsciiUpper(type_name)].push_back(rec.id);
    out->entities_.emplace(rec.id, std::move(rec));
  }
  uint64_t n_rels;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_rels));
  for (uint64_t i = 0; i < n_rels; ++i) {
    RelationshipInstance ri;
    MDM_RETURN_IF_ERROR(r->GetU64(&ri.id));
    MDM_RETURN_IF_ERROR(r->GetU32(&ri.rel_index));
    if (ri.rel_index >= out->schema_.relationships().size())
      return Corruption("snapshot relationship with bad index");
    uint64_t n_refs;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_refs));
    for (uint64_t j = 0; j < n_refs; ++j) {
      EntityId ref;
      MDM_RETURN_IF_ERROR(r->GetU64(&ref));
      ri.role_refs.push_back(ref);
    }
    uint64_t n_attrs;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_attrs));
    for (uint64_t j = 0; j < n_attrs; ++j) {
      Value v;
      MDM_RETURN_IF_ERROR(Value::Decode(r, &v));
      ri.attrs.push_back(std::move(v));
    }
    const std::string& rel_name =
        out->schema_.relationships()[ri.rel_index].name;
    out->rels_by_name_[AsciiUpper(rel_name)].push_back(ri.id);
    out->rel_instances_.emplace(ri.id, std::move(ri));
  }
  uint64_t n_orderings;
  MDM_RETURN_IF_ERROR(r->GetVarint(&n_orderings));
  out->ordering_instances_.resize(out->schema_.orderings().size());
  for (uint64_t i = 0; i < n_orderings; ++i) {
    std::string name;
    MDM_RETURN_IF_ERROR(r->GetString(&name));
    auto idx = out->schema_.FindOrderingIndex(name);
    if (!idx.has_value())
      return Corruption("snapshot ordering instances for unknown ordering " +
                        name);
    OrderingInstances& inst = out->ordering_instances_[*idx];
    uint64_t n_parents;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_parents));
    for (uint64_t j = 0; j < n_parents; ++j) {
      EntityId parent;
      MDM_RETURN_IF_ERROR(r->GetU64(&parent));
      uint64_t n_kids;
      MDM_RETURN_IF_ERROR(r->GetVarint(&n_kids));
      std::vector<EntityId> kids;
      for (uint64_t k = 0; k < n_kids; ++k) {
        EntityId kid;
        MDM_RETURN_IF_ERROR(r->GetU64(&kid));
        kids.push_back(kid);
        inst.parent_of[kid] = parent;
      }
      inst.children[parent] = std::move(kids);
    }
  }
  // Index-definition section (absent in pre-index snapshots: treat EOF
  // as zero indexes). DefineIndex re-backfills each tree from the
  // freshly restored entities; no journal is attached yet, so nothing
  // is re-logged.
  if (!r->AtEnd()) {
    uint64_t n_indexes;
    MDM_RETURN_IF_ERROR(r->GetVarint(&n_indexes));
    for (uint64_t i = 0; i < n_indexes; ++i) {
      AttrIndexDef def;
      MDM_RETURN_IF_ERROR(r->GetString(&def.name));
      MDM_RETURN_IF_ERROR(r->GetString(&def.entity_type));
      MDM_RETURN_IF_ERROR(r->GetString(&def.attr));
      MDM_RETURN_IF_ERROR(out->DefineIndex(std::move(def)));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Journal replay.
// ---------------------------------------------------------------------

Status Database::ApplyOp(const storage::WalRecord& rec) {
  ByteReader r(reinterpret_cast<const uint8_t*>(rec.payload.data()),
               rec.payload.size());
  uint8_t opcode;
  MDM_RETURN_IF_ERROR(r.GetU8(&opcode));
  switch (static_cast<Op>(opcode)) {
    case Op::kDefineEntity: {
      EntityTypeDef def;
      MDM_RETURN_IF_ERROR(DecodeEntityTypeDef(&r, &def));
      return DefineEntityType(std::move(def));
    }
    case Op::kDefineRelationship: {
      RelationshipDef def;
      MDM_RETURN_IF_ERROR(DecodeRelationshipDef(&r, &def));
      return DefineRelationship(std::move(def));
    }
    case Op::kDefineOrdering: {
      OrderingDef def;
      MDM_RETURN_IF_ERROR(DecodeOrderingDef(&r, &def));
      return DefineOrdering(std::move(def)).ok()
                 ? Status::OK()
                 : Internal("ordering replay failed");
    }
    case Op::kCreateEntity: {
      std::string type;
      uint64_t id;
      MDM_RETURN_IF_ERROR(r.GetString(&type));
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      // Replay must reproduce the original id.
      next_entity_id_ = id;
      MDM_ASSIGN_OR_RETURN(EntityId got, CreateEntity(type));
      if (got != id) return Corruption("journal replay id drift");
      return Status::OK();
    }
    case Op::kDeleteEntity: {
      uint64_t id;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      return DeleteEntity(id);
    }
    case Op::kSetAttribute: {
      uint64_t id;
      std::string attr;
      Value v;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      MDM_RETURN_IF_ERROR(r.GetString(&attr));
      MDM_RETURN_IF_ERROR(Value::Decode(&r, &v));
      return SetAttribute(id, attr, std::move(v));
    }
    case Op::kConnect: {
      std::string rel;
      uint64_t id, n;
      MDM_RETURN_IF_ERROR(r.GetString(&rel));
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      MDM_RETURN_IF_ERROR(r.GetVarint(&n));
      const RelationshipDef* def = schema_.FindRelationship(rel);
      if (def == nullptr || def->roles.size() != n)
        return Corruption("journal connect against unknown relationship");
      std::vector<std::pair<std::string, EntityId>> bindings;
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t ref;
        MDM_RETURN_IF_ERROR(r.GetU64(&ref));
        bindings.emplace_back(def->roles[i].name, ref);
      }
      next_rel_id_ = id;
      MDM_ASSIGN_OR_RETURN(RelInstanceId got, Connect(rel, bindings));
      if (got != id) return Corruption("journal replay rel-id drift");
      return Status::OK();
    }
    case Op::kDisconnect: {
      uint64_t id;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      return Disconnect(id);
    }
    case Op::kInsertChildAt: {
      std::string ordering;
      uint64_t parent, child, pos;
      MDM_RETURN_IF_ERROR(r.GetString(&ordering));
      MDM_RETURN_IF_ERROR(r.GetU64(&parent));
      MDM_RETURN_IF_ERROR(r.GetU64(&child));
      MDM_RETURN_IF_ERROR(r.GetVarint(&pos));
      return InsertChildAt(ordering, parent, child, pos);
    }
    case Op::kRemoveChild: {
      std::string ordering;
      uint64_t child;
      MDM_RETURN_IF_ERROR(r.GetString(&ordering));
      MDM_RETURN_IF_ERROR(r.GetU64(&child));
      return RemoveChild(ordering, child);
    }
    case Op::kSetRelAttribute: {
      uint64_t id;
      std::string attr;
      Value v;
      MDM_RETURN_IF_ERROR(r.GetU64(&id));
      MDM_RETURN_IF_ERROR(r.GetString(&attr));
      MDM_RETURN_IF_ERROR(Value::Decode(&r, &v));
      return SetRelationshipAttribute(id, attr, std::move(v));
    }
    case Op::kDefineIndex: {
      AttrIndexDef def;
      MDM_RETURN_IF_ERROR(r.GetString(&def.name));
      MDM_RETURN_IF_ERROR(r.GetString(&def.entity_type));
      MDM_RETURN_IF_ERROR(r.GetString(&def.attr));
      return DefineIndex(std::move(def));
    }
    case Op::kDestroyIndex: {
      std::string name;
      MDM_RETURN_IF_ERROR(r.GetString(&name));
      return DestroyIndex(name);
    }
  }
  return Corruption(StrFormat("unknown journal opcode %u", opcode));
}

Status Database::ReplayJournal(const std::vector<uint8_t>& log) {
  replaying_ = true;
  Result<uint64_t> n =
      storage::WalRecover(log, [this](const storage::WalRecord& rec) {
        return ApplyOp(rec);
      });
  replaying_ = false;
  if (!n.ok()) return n.status();
  return Status::OK();
}

}  // namespace mdm::er

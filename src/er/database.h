#ifndef MDM_ER_DATABASE_H_
#define MDM_ER_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/pmap.h"
#include "er/schema.h"
#include "rel/value.h"
#include "storage/btree.h"
#include "storage/wal.h"

namespace mdm::er {

class CommitCoordinator;

/// Identifier of a relationship instance.
using RelInstanceId = uint64_t;

/// One stored entity instance: its type and one value per declared
/// attribute (null until set). `gen` is the copy-on-write stamp: a
/// record whose gen equals the database's current publish generation
/// was created (or already cloned) since the last snapshot publish and
/// may be mutated in place; anything older is shared with published
/// snapshots and must be cloned first (see MutableEntity).
struct EntityRecord {
  EntityId id = kInvalidEntityId;
  uint32_t type_index = 0;  // into ErSchema::entity_types()
  std::vector<rel::Value> attrs;
  uint64_t gen = 0;
};

/// One stored relationship instance ("m to n"): an entity per role plus
/// relationship attributes. Copy-on-write like EntityRecord.
struct RelationshipInstance {
  RelInstanceId id = 0;
  uint32_t rel_index = 0;  // into ErSchema::relationships()
  std::vector<EntityId> role_refs;
  std::vector<rel::Value> attrs;
  uint64_t gen = 0;
};

/// Counters for the per-ordering structural indexes (§5.6 execution).
/// `rank_hits`/`interval_hits` are index lookups answered from the
/// current published snapshot; `*_rebuilds` count snapshot rebuilds
/// triggered by a lookup after a structural mutation retired the
/// previous version; `linear_scans` counts predicate evaluations that
/// bypassed the indexes (ablation mode). Under concurrency the counts
/// are exact (relaxed atomics) but attribution across sessions is
/// best-effort.
///
/// This struct is the per-Database view. Process-wide totals (and the
/// rebuild latency histogram) live on the obs registry as
/// mdm_er_*_total / mdm_span_duration_ns{span="er.interval_rebuild"};
/// prefer those for monitoring — this accessor remains for per-instance
/// attribution in tests and benches (see docs/OBSERVABILITY.md).
struct OrderingIndexStats {
  uint64_t rank_hits = 0;
  uint64_t rank_rebuilds = 0;
  uint64_t interval_hits = 0;
  uint64_t interval_rebuilds = 0;
  uint64_t linear_scans = 0;
};

/// Definition of one secondary attribute index (§5.2's "orderings as
/// physical optimization" generalized to attributes — the thematic
/// index made physical): a B+tree over one attribute of one entity
/// type. Index names are unique case-insensitively; the catalog is
/// mirrored into the meta-schema as INDEX_DEF entities (Fig 9).
struct AttrIndexDef {
  std::string name;
  std::string entity_type;
  std::string attr;
};

/// Per-database counters for the secondary attribute indexes.
/// Process-wide totals live on the obs registry as
/// mdm_index_{lookups,inserts,erases,rebuilds}_total; this accessor
/// remains for per-instance attribution in tests and benches.
struct AttrIndexStats {
  uint64_t lookups = 0;   // IndexLookup probes answered from a B+tree
  uint64_t inserts = 0;   // entries added (mutations + backfill)
  uint64_t erases = 0;    // entries removed (updates, deletes)
  uint64_t rebuilds = 0;  // full backfills (define, restore, replay)
};

/// One live secondary index: its definition, the resolved schema slots
/// and the backing B+tree. Heap-allocated and shared between the live
/// tables and published snapshots, so a pinned snapshot keeps probing
/// a dropped index safely.
///
/// The tree itself is mutated in place by writers (under the exclusive
/// db latch). Snapshot readers probe it without the db latch, so probe
/// and maintenance synchronize on `probe_mu`. `erase_epoch` counts
/// entry removals (updates, deletes, bulk rebuilds): a snapshot whose
/// publish-time epoch no longer matches falls back to a scan-shaped
/// candidate list, because the tree may now be missing rows that exist
/// in that snapshot. Inserts need no epoch — extra candidates are
/// filtered by the retained equality conjunct and the snapshot
/// existence check.
struct AttrIndex {
  AttrIndexDef def;
  uint32_t type_index = 0;  // into ErSchema::entity_types()
  uint32_t attr_slot = 0;   // into that type's attributes
  storage::BTree tree;
  mutable std::shared_mutex probe_mu;
  std::atomic<uint64_t> erase_epoch{0};
};

// ---------------------------------------------------------------------
// The snapshot substrate (docs/WRITEPATH.md).
//
// All reader-visible state hangs off `Tables`, a value of a few root
// pointers into persistent (structurally shared) containers. Publishing
// a snapshot is one Tables copy; mutators copy-on-write the paths they
// touch, stamped with the publish generation so repeated mutation
// between publishes stays in-place. Readers pin the published Tables
// (a shared_ptr copy under a short mutex) and then read entirely
// lock-free; versions retire automatically when the last pin drains.
// ---------------------------------------------------------------------

/// child -> 0-based rank among its siblings, for every ordered child of
/// one ordering, valid for OrdState::version == built_version.
struct RankIndex {
  uint64_t built_version = 0;
  std::unordered_map<EntityId, size_t> rank_of;
};

/// Euler-tour labels over the ordering forest: entity -> (entry, exit).
/// `a` lies under `b` iff b.entry < a.entry && a.exit < b.exit.
struct IntervalIndex {
  uint64_t built_version = 0;
  std::unordered_map<EntityId, std::pair<uint64_t, uint64_t>> interval_of;
};

/// The lazily published §5.6 index cache for one ordering, SHARED by
/// the live tables and every snapshot of it (the cell pointer rides
/// along on OrdState copies). Readers rebuild from their own OrdState
/// when the published index's built_version does not match, and
/// republish only monotonically — a stale-snapshot reader never
/// clobbers a newer published index, it just keeps its private rebuild.
/// One explicit mutex instead of atomic<shared_ptr>: see PR 7 notes in
/// ROADMAP.md (libstdc++ _Sp_atomic vs TSan).
struct OrderingIndexCell {
  std::mutex publish_mu;
  std::shared_ptr<const RankIndex> ranks;          // guarded by publish_mu
  std::shared_ptr<const IntervalIndex> intervals;  // guarded by publish_mu
};

/// The ordered children of one parent in one ordering. Copy-on-write
/// via `gen`, exactly like EntityRecord.
struct Sibs {
  uint64_t gen = 0;
  std::vector<EntityId> ids;
};

/// One ordering's instance edges. `version` advances on every S/P-edge
/// mutation (it replaces the old cell epoch as the index staleness
/// stamp and is meaningful across snapshots: equal versions mean equal
/// edge sets, since version history is linear under the single-writer
/// discipline).
struct OrdState {
  uint64_t gen = 0;
  uint64_t version = 1;
  // parent -> ordered children (the S-edge sequence).
  PMap<EntityId, std::shared_ptr<Sibs>> children;
  // child -> parent (the P-edge).
  PMap<EntityId, EntityId> parent_of;
  std::shared_ptr<OrderingIndexCell> cell = std::make_shared<OrderingIndexCell>();
};

/// Entity ids are assigned monotonically, so key order doubles as
/// creation order for these sets.
using IdSet = PMap<EntityId, uint8_t>;
using RelIdSet = PMap<RelInstanceId, uint8_t>;

/// Entity-type name (upper) -> ids of that type. The outer map is tiny
/// (one entry per schema type), so it copy-on-writes wholesale per
/// publish window; the inner IdSets share structure.
struct TypeMap {
  uint64_t gen = 0;
  std::map<std::string, IdSet> sets;
};

struct RelNameMap {
  uint64_t gen = 0;
  std::map<std::string, RelIdSet> sets;
};

/// One catalog slot per secondary index. `erase_epoch` is the index's
/// AttrIndex::erase_epoch captured at publish time — the staleness
/// fence for snapshot probes (see AttrIndex).
struct IndexSlot {
  std::shared_ptr<AttrIndex> index;
  uint64_t erase_epoch = 0;
};

/// Index name (upper) -> slot; copy-on-write wholesale (index DDL and
/// erase-epoch refreshes are rare).
struct IndexMap {
  uint64_t gen = 0;
  std::map<std::string, IndexSlot> slots;
};

/// Schema, copy-on-write wholesale per publish window (DDL is rare).
struct SchemaState {
  uint64_t gen = 0;
  ErSchema schema;
};

/// Everything a read statement can observe, as one copyable bundle of
/// root pointers. The live database mutates its own Tables (under the
/// exclusive latch, via copy-on-write); PublishSnapshot copies it into
/// an immutable shared_ptr that readers pin. Do not mutate through a
/// Tables you did not build.
struct Tables {
  std::shared_ptr<SchemaState> schema = std::make_shared<SchemaState>();
  PMap<EntityId, std::shared_ptr<EntityRecord>> entities;
  std::shared_ptr<TypeMap> by_type = std::make_shared<TypeMap>();
  PMap<RelInstanceId, std::shared_ptr<RelationshipInstance>> rels;
  std::shared_ptr<RelNameMap> rels_by_name = std::make_shared<RelNameMap>();
  // One slot per schema ordering, indexed by OrderingHandle::index().
  std::vector<std::shared_ptr<OrdState>> orderings;
  std::shared_ptr<IndexMap> indexes = std::make_shared<IndexMap>();
  EntityId next_entity_id = 1;
  RelInstanceId next_rel_id = 1;
};

/// The music data manager's entity-relationship database with
/// hierarchical ordering (the paper's §5 extension).
///
/// Instance-level invariants enforced here (§5.5):
///  * a child occupies at most one position under one parent per
///    ordering (there is only one "second object under voice V");
///  * P-edges of one ordering never form a cycle (nothing is "part of"
///    itself) — checked on insert for recursive orderings;
///  * S-cycles cannot be constructed (sibling order is positional).
///
/// Durability: attach a WAL writer with AttachJournal and every mutation
/// is redo-logged; Snapshot/Restore write and read full images. Recover
/// with ReplayJournal over a log produced since the snapshot. Attach a
/// CommitCoordinator (er/commit_coordinator.h) and commits become group
/// commits: the fsync is amortized over every thread committing in the
/// same window (docs/WRITEPATH.md).
///
/// Thread safety — EXTERNAL locking via `latch()`, plus latch-free
/// snapshot reads:
///
/// Methods do not lock internally (they call each other and replay the
/// journal through the same code paths; self-locking would deadlock).
/// Every concurrent MUTATOR brackets calls with the latch held
/// exclusively, and whoever releases the exclusive latch publishes
/// first (er::WriteGuard and the QUEL executor do both for you).
/// Readers have two modes:
///
///  * shared latch (ReadGuard) — reads the live tables; always correct,
///    blocks behind writers;
///  * pinned snapshot (TryPinSnapshot + SnapshotReadScope) — reads the
///    last published Tables with NO db latch at all; never blocks, and
///    never observes a half-applied statement. TryPinSnapshot refuses
///    (returns null) when un-published mutations exist without an
///    active disciplined writer, so undisciplined single-threaded
///    mutation (direct API, no guards) degrades readers to the shared
///    latch instead of serving them stale data.
///
/// Moving a Database (move construction/assignment) is NOT
/// latch-protected — quiesce all sessions first. See
/// docs/CONCURRENCY.md for the lock hierarchy and docs/WRITEPATH.md for
/// the publish protocol.
class Database {
 public:
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// The database-wide reader-writer latch (see class comment). Mutable
  /// so read-side guards can be taken on a const Database&.
  std::shared_mutex& latch() const { return mu_; }

  // ------------------------------------------------------------------
  // Schema definition (the DDL front end calls these).
  // ------------------------------------------------------------------
  Status DefineEntityType(EntityTypeDef def);
  Status DefineRelationship(RelationshipDef def);
  /// Returns the (possibly generated) ordering name.
  Result<std::string> DefineOrdering(OrderingDef def);

  const ErSchema& schema() const;

  // ------------------------------------------------------------------
  // Entities.
  // ------------------------------------------------------------------
  Result<EntityId> CreateEntity(const std::string& type);
  /// Removes the entity, detaching it from every ordering (its own
  /// children become ordering roots) and deleting relationship instances
  /// that reference it. Ref-attributes of other entities that pointed at
  /// it become dangling; see CheckReferentialIntegrity.
  Status DeleteEntity(EntityId id);
  bool Exists(EntityId id) const;
  Result<std::string> TypeOf(EntityId id) const;

  Status SetAttribute(EntityId id, const std::string& attr, rel::Value value);
  Result<rel::Value> GetAttribute(EntityId id, const std::string& attr) const;

  /// Visits every instance of `type` in creation order; stop early by
  /// returning false.
  Status ForEachEntity(const std::string& type,
                       const std::function<bool(EntityId)>& fn) const;
  Result<uint64_t> CountEntities(const std::string& type) const;
  uint64_t TotalEntities() const;

  // ------------------------------------------------------------------
  // Relationships.
  // ------------------------------------------------------------------
  /// Creates an instance of `rel` binding every role:
  ///   Connect("COMPOSER", {{"composer", bach}, {"composition", fugue}}).
  Result<RelInstanceId> Connect(
      const std::string& rel,
      const std::vector<std::pair<std::string, EntityId>>& bindings);
  Status Disconnect(RelInstanceId id);
  Status SetRelationshipAttribute(RelInstanceId id, const std::string& attr,
                                  rel::Value value);
  Status ForEachRelationship(
      const std::string& rel,
      const std::function<bool(const RelationshipInstance&)>& fn) const;
  Result<uint64_t> CountRelationships(const std::string& rel) const;

  // ------------------------------------------------------------------
  // Hierarchical ordering (instance level).
  //
  // Every operation exists in two forms: a string-named convenience
  // overload (resolves the ordering by name on every call) and an
  // OrderingHandle overload. Resolve the handle once per statement or
  // session and use it in hot paths — the handle form also skips the
  // per-call name normalization.
  // ------------------------------------------------------------------

  /// Resolves an ordering name to a handle valid for this database's
  /// lifetime (orderings are append-only).
  Result<OrderingHandle> ResolveOrderingHandle(std::string_view name) const;
  /// The definition behind a handle obtained from this database.
  const OrderingDef& ordering_def(OrderingHandle h) const;

  Status AppendChild(const std::string& ordering, EntityId parent,
                     EntityId child);
  Status AppendChild(OrderingHandle h, EntityId parent, EntityId child);
  /// Inserts at 0-based position `pos` (<= current child count).
  Status InsertChildAt(const std::string& ordering, EntityId parent,
                       EntityId child, size_t pos);
  Status InsertChildAt(OrderingHandle h, EntityId parent, EntityId child,
                       size_t pos);
  Status RemoveChild(const std::string& ordering, EntityId child);
  Status RemoveChild(OrderingHandle h, EntityId child);

  /// The ordered children of `parent` (empty if none).
  Result<std::vector<EntityId>> Children(const std::string& ordering,
                                         EntityId parent) const;
  Result<std::vector<EntityId>> Children(OrderingHandle h,
                                         EntityId parent) const;
  Result<uint64_t> ChildCount(const std::string& ordering,
                              EntityId parent) const;
  Result<uint64_t> ChildCount(OrderingHandle h, EntityId parent) const;
  /// Parent of `child` in the ordering, or kInvalidEntityId when the
  /// child is a root of this ordering.
  Result<EntityId> ParentOf(const std::string& ordering,
                            EntityId child) const;
  Result<EntityId> ParentOf(OrderingHandle h, EntityId child) const;
  /// 0-based ordinal of `child` under its parent.
  Result<size_t> PositionOf(const std::string& ordering,
                            EntityId child) const;
  Result<size_t> PositionOf(OrderingHandle h, EntityId child) const;
  /// 0-based n-th child of `parent` ("the third note in chord x" is
  /// NthChild(..., 2)).
  Result<EntityId> NthChild(const std::string& ordering, EntityId parent,
                            size_t n) const;
  Result<EntityId> NthChild(OrderingHandle h, EntityId parent,
                            size_t n) const;

  /// The paper's ordering predicates (§5.6). Each is a tri-state:
  ///
  ///   * error status — the ordering name does not resolve, or either
  ///     operand entity does not exist. Misspelled orderings and stale
  ///     ids are reported, never silently treated as "no".
  ///   * ok(false)    — both operands exist but are *not comparable* in
  ///     this ordering: different parents, not ordered at all, or (for
  ///     Under) no ancestor path. Per §5.6 this is a legitimate "no".
  ///   * ok(true)     — the predicate holds.
  ///
  /// Before/After: `a` and `b` share a parent and a precedes/follows b
  /// (O(1) via the sibling-rank index). Under: `child` lies below
  /// `parent` at *any* depth along P-edges of this ordering — the
  /// paper's multi-level reading, so in a recursive ordering a chord is
  /// `under` every enclosing beam group, not just its direct parent
  /// (O(1) via Euler-tour interval containment).
  Result<bool> Before(const std::string& ordering, EntityId a,
                      EntityId b) const;
  Result<bool> Before(OrderingHandle h, EntityId a, EntityId b) const;
  Result<bool> After(const std::string& ordering, EntityId a,
                     EntityId b) const;
  Result<bool> After(OrderingHandle h, EntityId a, EntityId b) const;
  Result<bool> Under(const std::string& ordering, EntityId child,
                     EntityId parent) const;
  Result<bool> Under(OrderingHandle h, EntityId child, EntityId parent) const;

  /// Ablation switch for the §5.6 structural indexes. When disabled,
  /// Before/After fall back to linear sibling scans and Under to an
  /// upward P-edge walk (semantics are identical; only the cost
  /// changes). Exposed for bench_s56_ordering_index. Toggling counts as
  /// a mutation (take the latch exclusively around it).
  void EnableOrderingIndex(bool on) {
    ordering_index_enabled_.store(on, std::memory_order_relaxed);
  }
  bool ordering_index_enabled() const {
    return ordering_index_enabled_.load(std::memory_order_relaxed);
  }
  /// Snapshot of the index counters (by value: the internals are
  /// relaxed atomics bumped by concurrent readers under shared latch).
  OrderingIndexStats ordering_index_stats() const {
    return index_stats_.Snapshot();
  }
  void ResetOrderingIndexStats() { index_stats_.Reset(); }

  // ------------------------------------------------------------------
  // Secondary attribute indexes (§5.2 as physical design).
  //
  // `define index <name> on <entity>(<attr>)` in the DDL lands here.
  // Indexes are maintained inline by SetAttribute/DeleteEntity, are
  // journaled (and so replayed/crash-recovered like any mutation), and
  // are rebuilt from entity data on Restore — the snapshot stores only
  // the definitions.
  // ------------------------------------------------------------------

  /// Creates a B+tree index over one attribute and backfills it from
  /// existing entities. Mutator (exclusive latch); journaled.
  Status DefineIndex(AttrIndexDef def);
  /// Drops the named index. Mutator (exclusive latch); journaled.
  /// Pinned snapshots keep probing their copy of the dropped index.
  Status DestroyIndex(const std::string& name);
  /// All index definitions, in case-normalized name order.
  std::vector<AttrIndexDef> AttrIndexDefs() const;
  /// The live index on (entity type, attribute), or nullptr when none
  /// exists, the ablation switch is off, or a bulk index load is in
  /// progress (the trees are stale then). The planner calls this at
  /// plan time; the pointer stays valid for the whole statement (index
  /// DDL needs the exclusive latch, and pinned snapshots co-own the
  /// index).
  const AttrIndex* FindAttrIndex(std::string_view entity_type,
                                 std::string_view attr) const;
  const AttrIndex* FindAttrIndexByName(std::string_view name) const;
  /// Candidate entities whose `attr` may equal `key`, in id order.
  /// String/rational keys are hash-encoded, so collisions are possible:
  /// callers must re-check the predicate per candidate (the planner
  /// keeps the conjunct in the filter list). `key` must not be null —
  /// nulls are never indexed; probe a null key by falling back to a
  /// full scan (null == null is true under Value::Compare). Under a
  /// SnapshotReadScope the candidates are filtered to entities that
  /// exist in the snapshot, and a tree that has erased entries since
  /// the snapshot was published degrades to a scan-shaped candidate
  /// list (every id of the type) — correct either way, the conjunct
  /// re-check does the rest.
  std::vector<EntityId> IndexLookup(const AttrIndex& index,
                                    const rel::Value& key) const;

  /// Ablation switch: when off, FindAttrIndex returns nullptr so every
  /// plan falls back to full scans. Maintenance continues either way
  /// (the trees stay consistent for re-enabling). Exposed for
  /// bench_s52_attr_index; toggling counts as a mutation.
  void EnableAttrIndex(bool on) {
    attr_index_enabled_.store(on, std::memory_order_relaxed);
  }
  bool attr_index_enabled() const {
    return attr_index_enabled_.load(std::memory_order_relaxed);
  }
  AttrIndexStats attr_index_stats() const {
    return attr_stats_.Snapshot();
  }
  void ResetAttrIndexStats() { attr_stats_.Reset(); }

  /// Bulk index load (the corpus-loader fast path): between Begin and
  /// End, per-mutation index maintenance is suspended and FindAttrIndex
  /// reports no indexes (stale trees must not serve probes); End
  /// rebuilds every tree from the entity data in one backfill pass per
  /// index and returns how many trees were rebuilt. Both are mutators
  /// (exclusive latch). Durability is unaffected: the journal logs the
  /// data ops, and recovery re-backfills indexes anyway.
  void BeginBulkIndexLoad();
  Result<uint64_t> EndBulkIndexLoad();
  bool bulk_index_load_active() const {
    return bulk_index_load_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------------------
  // Snapshot reads (docs/WRITEPATH.md).
  // ------------------------------------------------------------------

  /// Pins the last published snapshot: a short snap-mutex critical
  /// section, never the db latch. Returns null when no snapshot can be
  /// served faithfully (unpublished mutations with no disciplined
  /// writer active) — fall back to a shared-latch live read.
  std::shared_ptr<const Tables> TryPinSnapshot() const;

  /// Copies the live tables into the published snapshot slot and opens
  /// a fresh copy-on-write generation. Callers MUST hold the exclusive
  /// latch (or be the only thread touching the database). Whoever
  /// releases the exclusive latch publishes first — WriteGuard and the
  /// QUEL executor enforce this.
  void PublishSnapshot();

  /// Monotone count of published snapshots (the reader-visible epoch).
  uint64_t snapshot_epoch() const {
    return snapshot_epoch_.load(std::memory_order_relaxed);
  }

  /// Brackets a disciplined direct-API writer (the exclusive latch is
  /// held throughout): Begin marks a writer active so TryPinSnapshot
  /// keeps serving the last published state instead of refusing; End
  /// publishes and clears the mark. er::WriteGuard calls these — prefer
  /// it over calling them directly. Unlike statement groups, these do
  /// NOT change commit semantics (each journaled op still auto-commits).
  void BeginWriteScope() {
    writer_active_.store(true, std::memory_order_release);
  }
  void EndWriteScope() {
    PublishSnapshot();
    writer_active_.store(false, std::memory_order_release);
  }

  // ------------------------------------------------------------------
  // Durability.
  // ------------------------------------------------------------------
  /// Attach a journal; subsequent mutations are redo-logged. Pass
  /// nullptr to detach.
  void AttachJournal(storage::WalWriter* wal) { wal_ = wal; }
  /// Attach a group-commit coordinator (owned by DurableDatabase).
  /// With one attached, auto-committed mutations and statement groups
  /// commit through CommitNoSync and block in the coordinator until a
  /// leader's single fsync covers them. Pass nullptr to detach.
  void AttachCommitCoordinator(CommitCoordinator* c) { coordinator_ = c; }
  CommitCoordinator* commit_coordinator() const { return coordinator_; }
  /// Groups subsequent ops into one transaction until CommitTxn.
  Status BeginTxn();
  Status CommitTxn();

  /// Statement groups — the executor's commit bracket. Between Begin
  /// and End, journaled ops accumulate in ONE WAL transaction (opened
  /// lazily on the first op), so a statement — or a whole batch — is
  /// crash-atomic: recovery applies all of it or none of it.
  /// EndStatementGroup writes the commit record (unsynced when a
  /// coordinator is attached), publishes the snapshot, and returns the
  /// commit LSN to pass to WaitDurable AFTER releasing the latch (0
  /// when there is nothing to sync). Both require the exclusive latch.
  void BeginStatementGroup();
  Result<uint64_t> EndStatementGroup();
  /// Blocks until the group commit covering `lsn` has fsynced (no-op
  /// for lsn 0 or without a coordinator). Call WITHOUT the latch.
  Status WaitDurable(uint64_t lsn);

  // ------------------------------------------------------------------
  // Diagnostics.
  // ------------------------------------------------------------------
  /// Graphviz DOT rendering of one ordering's instance graph below
  /// `root` (fig 6 style: dashed P-edges child->parent, S-edges between
  /// adjacent siblings). `label_attr` names an attribute to label nodes
  /// with (empty: type#id).
  Result<std::string> InstanceGraphDot(const std::string& ordering,
                                       EntityId root,
                                       const std::string& label_attr) const;
  /// Ref-attributes and role refs pointing at deleted entities.
  uint64_t CountDanglingRefs() const;
  /// Graphviz DOT rendering of the schema's HO-graph (fig 7).
  std::string HoGraphDot() const { return schema().ToHoGraphDot(); }

  /// Full-image snapshot of schema + data.
  void Snapshot(ByteWriter* w) const;
  static Status Restore(ByteReader* r, Database* out);

  /// Replays a journal (produced by a Database with an attached WAL)
  /// into this database: committed ops are re-executed.
  Status ReplayJournal(const std::vector<uint8_t>& log);

 private:
  friend class SnapshotReadScope;

  // Journal opcodes.
  enum class Op : uint8_t {
    kDefineEntity = 1,
    kDefineRelationship = 2,
    kDefineOrdering = 3,
    kCreateEntity = 4,
    kDeleteEntity = 5,
    kSetAttribute = 6,
    kConnect = 7,
    kDisconnect = 8,
    kInsertChildAt = 9,
    kRemoveChild = 10,
    kSetRelAttribute = 11,
    kDefineIndex = 12,
    kDestroyIndex = 13,
  };

  /// The tables this thread should read: the snapshot pinned by an
  /// enclosing SnapshotReadScope on THIS database, else the live
  /// tables. Mutators always see live_ (mutating statements never run
  /// under a scope).
  const Tables& ReadTables() const;

  const EntityRecord* FindEntity(EntityId id) const;
  /// Copy-on-write lookup for mutation: clones the record (stamping the
  /// current publish generation) unless it is already private to this
  /// generation. nullptr if missing.
  EntityRecord* MutableEntity(EntityId id);
  RelationshipInstance* MutableRel(RelInstanceId id);
  ErSchema* MutableSchema();
  TypeMap* MutableByType();
  RelNameMap* MutableRelsByName();
  IndexMap* MutableIndexes();
  OrdState* MutableOrd(size_t index);
  /// The mutable sibling vector of `parent` in `ord` (created empty if
  /// absent), cloned first if shared with a snapshot.
  Sibs* MutableSibs(OrdState* ord, EntityId parent);

  Result<const OrderingDef*> ResolveOrdering(const std::string& name) const;
  // Core mutators shared by the public API and journal replay.
  Status DoInsertChildAt(OrderingHandle h, EntityId parent, EntityId child,
                         size_t pos);
  Status DoRemoveChild(OrderingHandle h, EntityId child);
  // Walks P-edges upward from `start`; true if `needle` is an ancestor.
  bool IsAncestor(const OrdState& ord, EntityId needle, EntityId start) const;
  // Lazy index access: returns an index valid for ord.version —
  // published if fresh, else rebuilt from the caller's own OrdState
  // (live or pinned) and republished when strictly newer.
  std::shared_ptr<const RankIndex> RankIndexFor(const OrdState& ord) const;
  std::shared_ptr<const IntervalIndex> IntervalIndexFor(
      const OrdState& ord) const;
  Status CheckOrderedPairExists(EntityId a, EntityId b) const;
  Status LogOp(Op op, const std::vector<uint8_t>& payload);
  Status ApplyOp(const storage::WalRecord& rec);
  // Maintenance hooks for the secondary attribute indexes: called by
  // SetAttribute (old value out, new value in) and DeleteEntity.
  void AttrIndexOnSet(const EntityRecord& rec, uint32_t attr_slot,
                      const rel::Value& old_value,
                      const rel::Value& new_value);
  void AttrIndexOnDelete(const EntityRecord& rec);
  // Re-captures AttrIndex::erase_epoch into the IndexSlots before a
  // publish, when any erase happened since the last one.
  void RefreshIndexEpochs();

  // Relaxed-atomic twin of OrderingIndexStats: bumped by concurrent
  // readers (index lookups run under the shared latch or a snapshot).
  struct AtomicOrderingIndexStats {
    std::atomic<uint64_t> rank_hits{0};
    std::atomic<uint64_t> rank_rebuilds{0};
    std::atomic<uint64_t> interval_hits{0};
    std::atomic<uint64_t> interval_rebuilds{0};
    std::atomic<uint64_t> linear_scans{0};

    OrderingIndexStats Snapshot() const {
      OrderingIndexStats s;
      s.rank_hits = rank_hits.load(std::memory_order_relaxed);
      s.rank_rebuilds = rank_rebuilds.load(std::memory_order_relaxed);
      s.interval_hits = interval_hits.load(std::memory_order_relaxed);
      s.interval_rebuilds = interval_rebuilds.load(std::memory_order_relaxed);
      s.linear_scans = linear_scans.load(std::memory_order_relaxed);
      return s;
    }
    void Reset() {
      rank_hits.store(0, std::memory_order_relaxed);
      rank_rebuilds.store(0, std::memory_order_relaxed);
      interval_hits.store(0, std::memory_order_relaxed);
      interval_rebuilds.store(0, std::memory_order_relaxed);
      linear_scans.store(0, std::memory_order_relaxed);
    }
    void CopyFrom(const AtomicOrderingIndexStats& o) {
      rank_hits.store(o.rank_hits.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      rank_rebuilds.store(o.rank_rebuilds.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      interval_hits.store(o.interval_hits.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      interval_rebuilds.store(
          o.interval_rebuilds.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      linear_scans.store(o.linear_scans.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  };

  // Relaxed-atomic twin of AttrIndexStats: lookups are bumped by
  // concurrent readers under the shared latch or a snapshot.
  struct AtomicAttrIndexStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> erases{0};
    std::atomic<uint64_t> rebuilds{0};

    AttrIndexStats Snapshot() const {
      AttrIndexStats s;
      s.lookups = lookups.load(std::memory_order_relaxed);
      s.inserts = inserts.load(std::memory_order_relaxed);
      s.erases = erases.load(std::memory_order_relaxed);
      s.rebuilds = rebuilds.load(std::memory_order_relaxed);
      return s;
    }
    void Reset() {
      lookups.store(0, std::memory_order_relaxed);
      inserts.store(0, std::memory_order_relaxed);
      erases.store(0, std::memory_order_relaxed);
      rebuilds.store(0, std::memory_order_relaxed);
    }
    void CopyFrom(const AtomicAttrIndexStats& o) {
      lookups.store(o.lookups.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      inserts.store(o.inserts.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      erases.store(o.erases.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      rebuilds.store(o.rebuilds.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
  };

  mutable std::shared_mutex mu_;  // see latch()

  // The live tables (mutated copy-on-write under the exclusive latch)
  // and the published snapshot readers pin. snap_mu_ guards only the
  // published_ pointer swap/copy — it is the last mutex in the lock
  // hierarchy and is never held across any other acquisition.
  Tables live_;
  mutable std::mutex snap_mu_;
  std::shared_ptr<const Tables> published_;
  // Copy-on-write window stamp: structures with gen == publish_gen_ are
  // private to the window since the last publish and mutate in place.
  uint64_t publish_gen_ = 1;
  std::atomic<uint64_t> snapshot_epoch_{0};
  // Staleness fence for TryPinSnapshot: total mutations applied vs
  // mutations covered by the published snapshot, and whether a
  // disciplined writer (statement group) is mid-flight (its publish is
  // coming; the published snapshot is the last committed state).
  std::atomic<uint64_t> ops_applied_{0};
  std::atomic<uint64_t> published_ops_{0};
  std::atomic<bool> writer_active_{false};

  std::atomic<bool> ordering_index_enabled_{true};
  mutable AtomicOrderingIndexStats index_stats_;
  std::atomic<bool> attr_index_enabled_{true};
  mutable AtomicAttrIndexStats attr_stats_;
  std::atomic<bool> bulk_index_load_{false};
  bool attr_erase_dirty_ = false;

  storage::WalWriter* wal_ = nullptr;
  CommitCoordinator* coordinator_ = nullptr;
  uint64_t open_txn_ = 0;
  bool group_active_ = false;
  bool replaying_ = false;
};

/// RAII pin of a published snapshot for the current thread: while in
/// scope, every const read API call on `db` from this thread resolves
/// against the pinned Tables instead of the live ones — no db latch,
/// no blocking, planner/executor code unchanged. Scopes nest (the
/// innermost wins) and are per-thread; do not run mutators on the same
/// database inside a scope.
class SnapshotReadScope {
 public:
  SnapshotReadScope(const Database* db, std::shared_ptr<const Tables> tables);
  ~SnapshotReadScope();
  SnapshotReadScope(const SnapshotReadScope&) = delete;
  SnapshotReadScope& operator=(const SnapshotReadScope&) = delete;

 private:
  std::shared_ptr<const Tables> tables_;  // keeps the snapshot alive
  const Database* prev_db_;
  const Tables* prev_tables_;
};

}  // namespace mdm::er

#endif  // MDM_ER_DATABASE_H_

#ifndef MDM_ER_DATABASE_H_
#define MDM_ER_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/schema.h"
#include "rel/value.h"
#include "storage/wal.h"

namespace mdm::er {

/// Identifier of a relationship instance.
using RelInstanceId = uint64_t;

/// One stored entity instance: its type and one value per declared
/// attribute (null until set).
struct EntityRecord {
  EntityId id = kInvalidEntityId;
  uint32_t type_index = 0;  // into ErSchema::entity_types()
  std::vector<rel::Value> attrs;
};

/// One stored relationship instance ("m to n"): an entity per role plus
/// relationship attributes.
struct RelationshipInstance {
  RelInstanceId id = 0;
  uint32_t rel_index = 0;  // into ErSchema::relationships()
  std::vector<EntityId> role_refs;
  std::vector<rel::Value> attrs;
};

/// The music data manager's entity-relationship database with
/// hierarchical ordering (the paper's §5 extension).
///
/// Instance-level invariants enforced here (§5.5):
///  * a child occupies at most one position under one parent per
///    ordering (there is only one "second object under voice V");
///  * P-edges of one ordering never form a cycle (nothing is "part of"
///    itself) — checked on insert for recursive orderings;
///  * S-cycles cannot be constructed (sibling order is positional).
///
/// Durability: attach a WAL writer with AttachJournal and every mutation
/// is redo-logged; Snapshot/Restore write and read full images. Recover
/// with ReplayJournal over a log produced since the snapshot.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // ------------------------------------------------------------------
  // Schema definition (the DDL front end calls these).
  // ------------------------------------------------------------------
  Status DefineEntityType(EntityTypeDef def);
  Status DefineRelationship(RelationshipDef def);
  /// Returns the (possibly generated) ordering name.
  Result<std::string> DefineOrdering(OrderingDef def);

  const ErSchema& schema() const { return schema_; }

  // ------------------------------------------------------------------
  // Entities.
  // ------------------------------------------------------------------
  Result<EntityId> CreateEntity(const std::string& type);
  /// Removes the entity, detaching it from every ordering (its own
  /// children become ordering roots) and deleting relationship instances
  /// that reference it. Ref-attributes of other entities that pointed at
  /// it become dangling; see CheckReferentialIntegrity.
  Status DeleteEntity(EntityId id);
  bool Exists(EntityId id) const;
  Result<std::string> TypeOf(EntityId id) const;

  Status SetAttribute(EntityId id, const std::string& attr, rel::Value value);
  Result<rel::Value> GetAttribute(EntityId id, const std::string& attr) const;

  /// Visits every instance of `type` in creation order; stop early by
  /// returning false.
  Status ForEachEntity(const std::string& type,
                       const std::function<bool(EntityId)>& fn) const;
  Result<uint64_t> CountEntities(const std::string& type) const;
  uint64_t TotalEntities() const { return entities_.size(); }

  // ------------------------------------------------------------------
  // Relationships.
  // ------------------------------------------------------------------
  /// Creates an instance of `rel` binding every role:
  ///   Connect("COMPOSER", {{"composer", bach}, {"composition", fugue}}).
  Result<RelInstanceId> Connect(
      const std::string& rel,
      const std::vector<std::pair<std::string, EntityId>>& bindings);
  Status Disconnect(RelInstanceId id);
  Status SetRelationshipAttribute(RelInstanceId id, const std::string& attr,
                                  rel::Value value);
  Status ForEachRelationship(
      const std::string& rel,
      const std::function<bool(const RelationshipInstance&)>& fn) const;
  Result<uint64_t> CountRelationships(const std::string& rel) const;

  // ------------------------------------------------------------------
  // Hierarchical ordering (instance level).
  // ------------------------------------------------------------------
  Status AppendChild(const std::string& ordering, EntityId parent,
                     EntityId child);
  /// Inserts at 0-based position `pos` (<= current child count).
  Status InsertChildAt(const std::string& ordering, EntityId parent,
                       EntityId child, size_t pos);
  Status RemoveChild(const std::string& ordering, EntityId child);

  /// The ordered children of `parent` (empty if none).
  Result<std::vector<EntityId>> Children(const std::string& ordering,
                                         EntityId parent) const;
  Result<uint64_t> ChildCount(const std::string& ordering,
                              EntityId parent) const;
  /// Parent of `child` in the ordering, or kInvalidEntityId when the
  /// child is a root of this ordering.
  Result<EntityId> ParentOf(const std::string& ordering,
                            EntityId child) const;
  /// 0-based ordinal of `child` under its parent.
  Result<size_t> PositionOf(const std::string& ordering,
                            EntityId child) const;
  /// 0-based n-th child of `parent` ("the third note in chord x" is
  /// NthChild(..., 2)).
  Result<EntityId> NthChild(const std::string& ordering, EntityId parent,
                            size_t n) const;

  /// The paper's ordering predicates (§5.6): true iff `a` and `b` share
  /// a parent in the ordering and a precedes/follows b. Entities with
  /// different parents are not comparable — the predicate is false.
  Result<bool> Before(const std::string& ordering, EntityId a,
                      EntityId b) const;
  Result<bool> After(const std::string& ordering, EntityId a,
                     EntityId b) const;
  /// True iff `child` is directly under `parent` in the ordering.
  Result<bool> Under(const std::string& ordering, EntityId child,
                     EntityId parent) const;

  // ------------------------------------------------------------------
  // Graphs and diagnostics.
  // ------------------------------------------------------------------
  /// Instance graph (fig 6 / fig 8(c)): P-edges and S-edges of the
  /// subtree rooted at `root`, in Graphviz DOT. The node label uses the
  /// entity's `label_attr` attribute when present, else TYPE#id.
  Result<std::string> InstanceGraphDot(const std::string& ordering,
                                       EntityId root,
                                       const std::string& label_attr) const;
  std::string HoGraphDot() const { return schema_.ToHoGraphDot(); }

  /// Scans all ref-valued attributes and role bindings; reports the
  /// count of dangling references (targets that no longer exist).
  uint64_t CountDanglingRefs() const;

  // ------------------------------------------------------------------
  // Durability.
  // ------------------------------------------------------------------
  /// Attach a journal; subsequent mutations are redo-logged. Pass
  /// nullptr to detach.
  void AttachJournal(storage::WalWriter* wal) { wal_ = wal; }
  /// Groups subsequent ops into one transaction until CommitTxn.
  Status BeginTxn();
  Status CommitTxn();

  /// Full-image snapshot of schema + data.
  void Snapshot(ByteWriter* w) const;
  static Status Restore(ByteReader* r, Database* out);

  /// Replays a journal (produced by a Database with an attached WAL)
  /// into this database: committed ops are re-executed.
  Status ReplayJournal(const std::vector<uint8_t>& log);

 private:
  // Journal opcodes.
  enum class Op : uint8_t {
    kDefineEntity = 1,
    kDefineRelationship = 2,
    kDefineOrdering = 3,
    kCreateEntity = 4,
    kDeleteEntity = 5,
    kSetAttribute = 6,
    kConnect = 7,
    kDisconnect = 8,
    kInsertChildAt = 9,
    kRemoveChild = 10,
    kSetRelAttribute = 11,
  };

  struct OrderingInstances {
    // parent -> ordered children (the S-edge sequence).
    std::unordered_map<EntityId, std::vector<EntityId>> children;
    // child -> parent (the P-edge).
    std::unordered_map<EntityId, EntityId> parent_of;
  };

  const EntityRecord* FindEntity(EntityId id) const;
  EntityRecord* FindEntity(EntityId id);
  Result<const OrderingDef*> ResolveOrdering(const std::string& name) const;
  OrderingInstances& InstancesFor(const std::string& ordering_name);
  const OrderingInstances* InstancesForConst(
      const std::string& ordering_name) const;
  // Core mutators shared by the public API and journal replay.
  Status DoInsertChildAt(const OrderingDef& def, EntityId parent,
                         EntityId child, size_t pos);
  Status DoRemoveChild(const OrderingDef& def, EntityId child);
  // Walks P-edges upward from `start`; true if `needle` is an ancestor.
  bool IsAncestor(const OrderingInstances& inst, EntityId needle,
                  EntityId start) const;
  Status LogOp(Op op, const std::vector<uint8_t>& payload);
  Status ApplyOp(const storage::WalRecord& rec);

  ErSchema schema_;
  std::map<EntityId, EntityRecord> entities_;
  std::unordered_map<std::string, std::vector<EntityId>> by_type_;
  std::map<RelInstanceId, RelationshipInstance> rel_instances_;
  std::unordered_map<std::string, std::vector<RelInstanceId>> rels_by_name_;
  std::unordered_map<std::string, OrderingInstances> ordering_instances_;
  EntityId next_entity_id_ = 1;
  RelInstanceId next_rel_id_ = 1;

  storage::WalWriter* wal_ = nullptr;
  uint64_t open_txn_ = 0;
  bool replaying_ = false;
};

}  // namespace mdm::er

#endif  // MDM_ER_DATABASE_H_

#ifndef MDM_ER_DATABASE_H_
#define MDM_ER_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/schema.h"
#include "rel/value.h"
#include "storage/btree.h"
#include "storage/wal.h"

namespace mdm::er {

/// Identifier of a relationship instance.
using RelInstanceId = uint64_t;

/// One stored entity instance: its type and one value per declared
/// attribute (null until set).
struct EntityRecord {
  EntityId id = kInvalidEntityId;
  uint32_t type_index = 0;  // into ErSchema::entity_types()
  std::vector<rel::Value> attrs;
};

/// One stored relationship instance ("m to n"): an entity per role plus
/// relationship attributes.
struct RelationshipInstance {
  RelInstanceId id = 0;
  uint32_t rel_index = 0;  // into ErSchema::relationships()
  std::vector<EntityId> role_refs;
  std::vector<rel::Value> attrs;
};

/// Counters for the per-ordering structural indexes (§5.6 execution).
/// `rank_hits`/`interval_hits` are index lookups answered from the
/// current published snapshot; `*_rebuilds` count snapshot rebuilds
/// triggered by a lookup after a structural mutation retired the
/// previous epoch; `linear_scans` counts predicate evaluations that
/// bypassed the indexes (ablation mode). Under concurrency the counts
/// are exact (relaxed atomics) but attribution across sessions is
/// best-effort.
///
/// This struct is the per-Database view. Process-wide totals (and the
/// rebuild latency histogram) live on the obs registry as
/// mdm_er_*_total / mdm_span_duration_ns{span="er.interval_rebuild"};
/// prefer those for monitoring — this accessor remains for per-instance
/// attribution in tests and benches (see docs/OBSERVABILITY.md).
struct OrderingIndexStats {
  uint64_t rank_hits = 0;
  uint64_t rank_rebuilds = 0;
  uint64_t interval_hits = 0;
  uint64_t interval_rebuilds = 0;
  uint64_t linear_scans = 0;
};

/// Definition of one secondary attribute index (§5.2's "orderings as
/// physical optimization" generalized to attributes — the thematic
/// index made physical): a B+tree over one attribute of one entity
/// type. Index names are unique case-insensitively; the catalog is
/// mirrored into the meta-schema as INDEX_DEF entities (Fig 9).
struct AttrIndexDef {
  std::string name;
  std::string entity_type;
  std::string attr;
};

/// Per-database counters for the secondary attribute indexes.
/// Process-wide totals live on the obs registry as
/// mdm_index_{lookups,inserts,erases,rebuilds}_total; this accessor
/// remains for per-instance attribution in tests and benches.
struct AttrIndexStats {
  uint64_t lookups = 0;   // IndexLookup probes answered from a B+tree
  uint64_t inserts = 0;   // entries added (mutations + backfill)
  uint64_t erases = 0;    // entries removed (updates, deletes)
  uint64_t rebuilds = 0;  // full backfills (define, restore, replay)
};

/// One live secondary index: its definition, the resolved schema slots
/// and the backing B+tree. Obtained from Database::FindAttrIndex; the
/// pointer is stable until the next DefineIndex/DestroyIndex (index DDL
/// takes the exclusive latch), so holding it for one planned statement
/// is safe.
struct AttrIndex {
  AttrIndexDef def;
  uint32_t type_index = 0;  // into ErSchema::entity_types()
  uint32_t attr_slot = 0;   // into that type's attributes
  storage::BTree tree;
};

/// The music data manager's entity-relationship database with
/// hierarchical ordering (the paper's §5 extension).
///
/// Instance-level invariants enforced here (§5.5):
///  * a child occupies at most one position under one parent per
///    ordering (there is only one "second object under voice V");
///  * P-edges of one ordering never form a cycle (nothing is "part of"
///    itself) — checked on insert for recursive orderings;
///  * S-cycles cannot be constructed (sibling order is positional).
///
/// Durability: attach a WAL writer with AttachJournal and every mutation
/// is redo-logged; Snapshot/Restore write and read full images. Recover
/// with ReplayJournal over a log produced since the snapshot.
///
/// Thread safety — EXTERNAL locking via `latch()`:
///
/// Methods do not lock internally (they call each other and replay the
/// journal through the same code paths; self-locking would deadlock).
/// Instead every concurrent caller brackets calls with the reader-writer
/// latch: shared for the const read API, exclusive for any mutator
/// (including AttachJournal/BeginTxn/CommitTxn/Snapshot-as-writer-free
/// but Restore/ReplayJournal/EnableOrderingIndex as writers). The
/// er::Session guards (er/session.h) and the QUEL executor do this for
/// you; direct single-threaded use needs no locks at all.
///
/// Under a shared latch, reads are snapshot-consistent: structural
/// mutations (which require the exclusive latch) cannot interleave, and
/// the lazy §5.6 ordering indexes are published as immutable epoch-
/// stamped snapshots behind an explicit epoch + per-cell publish mutex,
/// so Before/After/Under never observe a half-rebuilt rank or interval
/// table even while many readers trigger rebuilds concurrently. Moving
/// a Database (move construction/assignment) is NOT latch-protected —
/// quiesce all sessions first. See docs/CONCURRENCY.md for the lock
/// hierarchy.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// The database-wide reader-writer latch (see class comment). Mutable
  /// so read-side guards can be taken on a const Database&.
  std::shared_mutex& latch() const { return mu_; }

  // ------------------------------------------------------------------
  // Schema definition (the DDL front end calls these).
  // ------------------------------------------------------------------
  Status DefineEntityType(EntityTypeDef def);
  Status DefineRelationship(RelationshipDef def);
  /// Returns the (possibly generated) ordering name.
  Result<std::string> DefineOrdering(OrderingDef def);

  const ErSchema& schema() const { return schema_; }

  // ------------------------------------------------------------------
  // Entities.
  // ------------------------------------------------------------------
  Result<EntityId> CreateEntity(const std::string& type);
  /// Removes the entity, detaching it from every ordering (its own
  /// children become ordering roots) and deleting relationship instances
  /// that reference it. Ref-attributes of other entities that pointed at
  /// it become dangling; see CheckReferentialIntegrity.
  Status DeleteEntity(EntityId id);
  bool Exists(EntityId id) const;
  Result<std::string> TypeOf(EntityId id) const;

  Status SetAttribute(EntityId id, const std::string& attr, rel::Value value);
  Result<rel::Value> GetAttribute(EntityId id, const std::string& attr) const;

  /// Visits every instance of `type` in creation order; stop early by
  /// returning false.
  Status ForEachEntity(const std::string& type,
                       const std::function<bool(EntityId)>& fn) const;
  Result<uint64_t> CountEntities(const std::string& type) const;
  uint64_t TotalEntities() const { return entities_.size(); }

  // ------------------------------------------------------------------
  // Relationships.
  // ------------------------------------------------------------------
  /// Creates an instance of `rel` binding every role:
  ///   Connect("COMPOSER", {{"composer", bach}, {"composition", fugue}}).
  Result<RelInstanceId> Connect(
      const std::string& rel,
      const std::vector<std::pair<std::string, EntityId>>& bindings);
  Status Disconnect(RelInstanceId id);
  Status SetRelationshipAttribute(RelInstanceId id, const std::string& attr,
                                  rel::Value value);
  Status ForEachRelationship(
      const std::string& rel,
      const std::function<bool(const RelationshipInstance&)>& fn) const;
  Result<uint64_t> CountRelationships(const std::string& rel) const;

  // ------------------------------------------------------------------
  // Hierarchical ordering (instance level).
  //
  // Every operation exists in two forms: a string-named convenience
  // overload (resolves the ordering by name on every call) and an
  // OrderingHandle overload. Resolve the handle once per statement or
  // session and use it in hot paths — the handle form also skips the
  // per-call name normalization.
  // ------------------------------------------------------------------

  /// Resolves an ordering name to a handle valid for this database's
  /// lifetime (orderings are append-only).
  Result<OrderingHandle> ResolveOrderingHandle(std::string_view name) const;
  /// The definition behind a handle obtained from this database.
  const OrderingDef& ordering_def(OrderingHandle h) const {
    return schema_.orderings()[h.index()];
  }

  Status AppendChild(const std::string& ordering, EntityId parent,
                     EntityId child);
  Status AppendChild(OrderingHandle h, EntityId parent, EntityId child);
  /// Inserts at 0-based position `pos` (<= current child count).
  Status InsertChildAt(const std::string& ordering, EntityId parent,
                       EntityId child, size_t pos);
  Status InsertChildAt(OrderingHandle h, EntityId parent, EntityId child,
                       size_t pos);
  Status RemoveChild(const std::string& ordering, EntityId child);
  Status RemoveChild(OrderingHandle h, EntityId child);

  /// The ordered children of `parent` (empty if none).
  Result<std::vector<EntityId>> Children(const std::string& ordering,
                                         EntityId parent) const;
  Result<std::vector<EntityId>> Children(OrderingHandle h,
                                         EntityId parent) const;
  Result<uint64_t> ChildCount(const std::string& ordering,
                              EntityId parent) const;
  Result<uint64_t> ChildCount(OrderingHandle h, EntityId parent) const;
  /// Parent of `child` in the ordering, or kInvalidEntityId when the
  /// child is a root of this ordering.
  Result<EntityId> ParentOf(const std::string& ordering,
                            EntityId child) const;
  Result<EntityId> ParentOf(OrderingHandle h, EntityId child) const;
  /// 0-based ordinal of `child` under its parent.
  Result<size_t> PositionOf(const std::string& ordering,
                            EntityId child) const;
  Result<size_t> PositionOf(OrderingHandle h, EntityId child) const;
  /// 0-based n-th child of `parent` ("the third note in chord x" is
  /// NthChild(..., 2)).
  Result<EntityId> NthChild(const std::string& ordering, EntityId parent,
                            size_t n) const;
  Result<EntityId> NthChild(OrderingHandle h, EntityId parent,
                            size_t n) const;

  /// The paper's ordering predicates (§5.6). Each is a tri-state:
  ///
  ///   * error status — the ordering name does not resolve, or either
  ///     operand entity does not exist. Misspelled orderings and stale
  ///     ids are reported, never silently treated as "no".
  ///   * ok(false)    — both operands exist but are *not comparable* in
  ///     this ordering: different parents, not ordered at all, or (for
  ///     Under) no ancestor path. Per §5.6 this is a legitimate "no".
  ///   * ok(true)     — the predicate holds.
  ///
  /// Before/After: `a` and `b` share a parent and a precedes/follows b
  /// (O(1) via the sibling-rank index). Under: `child` lies below
  /// `parent` at *any* depth along P-edges of this ordering — the
  /// paper's multi-level reading, so in a recursive ordering a chord is
  /// `under` every enclosing beam group, not just its direct parent
  /// (O(1) via Euler-tour interval containment).
  Result<bool> Before(const std::string& ordering, EntityId a,
                      EntityId b) const;
  Result<bool> Before(OrderingHandle h, EntityId a, EntityId b) const;
  Result<bool> After(const std::string& ordering, EntityId a,
                     EntityId b) const;
  Result<bool> After(OrderingHandle h, EntityId a, EntityId b) const;
  Result<bool> Under(const std::string& ordering, EntityId child,
                     EntityId parent) const;
  Result<bool> Under(OrderingHandle h, EntityId child, EntityId parent) const;

  /// Ablation switch for the §5.6 structural indexes. When disabled,
  /// Before/After fall back to linear sibling scans and Under to an
  /// upward P-edge walk (semantics are identical; only the cost
  /// changes). Exposed for bench_s56_ordering_index. Toggling counts as
  /// a mutation (take the latch exclusively around it).
  void EnableOrderingIndex(bool on) {
    ordering_index_enabled_.store(on, std::memory_order_relaxed);
  }
  bool ordering_index_enabled() const {
    return ordering_index_enabled_.load(std::memory_order_relaxed);
  }
  /// Snapshot of the index counters (by value: the internals are
  /// relaxed atomics bumped by concurrent readers under shared latch).
  OrderingIndexStats ordering_index_stats() const {
    return index_stats_.Snapshot();
  }
  void ResetOrderingIndexStats() { index_stats_.Reset(); }

  // ------------------------------------------------------------------
  // Secondary attribute indexes (§5.2 as physical design).
  //
  // `define index <name> on <entity>(<attr>)` in the DDL lands here.
  // Indexes are maintained inline by SetAttribute/DeleteEntity, are
  // journaled (and so replayed/crash-recovered like any mutation), and
  // are rebuilt from entity data on Restore — the snapshot stores only
  // the definitions.
  // ------------------------------------------------------------------

  /// Creates a B+tree index over one attribute and backfills it from
  /// existing entities. Mutator (exclusive latch); journaled.
  Status DefineIndex(AttrIndexDef def);
  /// Drops the named index. Mutator (exclusive latch); journaled.
  Status DestroyIndex(const std::string& name);
  /// All index definitions, in case-normalized name order.
  std::vector<AttrIndexDef> AttrIndexDefs() const;
  /// The live index on (entity type, attribute), or nullptr when none
  /// exists or the ablation switch is off. The planner calls this at
  /// plan time; the pointer stays valid for the whole statement (index
  /// DDL needs the exclusive latch).
  const AttrIndex* FindAttrIndex(std::string_view entity_type,
                                 std::string_view attr) const;
  const AttrIndex* FindAttrIndexByName(std::string_view name) const;
  /// Candidate entities whose `attr` may equal `key`, in id order.
  /// String/rational keys are hash-encoded, so collisions are possible:
  /// callers must re-check the predicate per candidate (the planner
  /// keeps the conjunct in the filter list). `key` must not be null —
  /// nulls are never indexed; probe a null key by falling back to a
  /// full scan (null == null is true under Value::Compare).
  std::vector<EntityId> IndexLookup(const AttrIndex& index,
                                    const rel::Value& key) const;

  /// Ablation switch: when off, FindAttrIndex returns nullptr so every
  /// plan falls back to full scans. Maintenance continues either way
  /// (the trees stay consistent for re-enabling). Exposed for
  /// bench_s52_attr_index; toggling counts as a mutation.
  void EnableAttrIndex(bool on) {
    attr_index_enabled_.store(on, std::memory_order_relaxed);
  }
  bool attr_index_enabled() const {
    return attr_index_enabled_.load(std::memory_order_relaxed);
  }
  AttrIndexStats attr_index_stats() const {
    return attr_stats_.Snapshot();
  }
  void ResetAttrIndexStats() { attr_stats_.Reset(); }

  // ------------------------------------------------------------------
  // Graphs and diagnostics.
  // ------------------------------------------------------------------
  /// Instance graph (fig 6 / fig 8(c)): P-edges and S-edges of the
  /// subtree rooted at `root`, in Graphviz DOT. The node label uses the
  /// entity's `label_attr` attribute when present, else TYPE#id.
  Result<std::string> InstanceGraphDot(const std::string& ordering,
                                       EntityId root,
                                       const std::string& label_attr) const;
  std::string HoGraphDot() const { return schema_.ToHoGraphDot(); }

  /// Scans all ref-valued attributes and role bindings; reports the
  /// count of dangling references (targets that no longer exist).
  uint64_t CountDanglingRefs() const;

  // ------------------------------------------------------------------
  // Durability.
  // ------------------------------------------------------------------
  /// Attach a journal; subsequent mutations are redo-logged. Pass
  /// nullptr to detach.
  void AttachJournal(storage::WalWriter* wal) { wal_ = wal; }
  /// Groups subsequent ops into one transaction until CommitTxn.
  Status BeginTxn();
  Status CommitTxn();

  /// Full-image snapshot of schema + data.
  void Snapshot(ByteWriter* w) const;
  static Status Restore(ByteReader* r, Database* out);

  /// Replays a journal (produced by a Database with an attached WAL)
  /// into this database: committed ops are re-executed.
  Status ReplayJournal(const std::vector<uint8_t>& log);

 private:
  // Journal opcodes.
  enum class Op : uint8_t {
    kDefineEntity = 1,
    kDefineRelationship = 2,
    kDefineOrdering = 3,
    kCreateEntity = 4,
    kDeleteEntity = 5,
    kSetAttribute = 6,
    kConnect = 7,
    kDisconnect = 8,
    kInsertChildAt = 9,
    kRemoveChild = 10,
    kSetRelAttribute = 11,
    kDefineIndex = 12,
    kDestroyIndex = 13,
  };

  // --- structural indexes, maintained lazily (§5.6 execution) ---
  //
  // Both indexes are published as immutable epoch-stamped snapshots.
  // A structural mutation (under the exclusive latch) only bumps the
  // cell's epoch; the first predicate lookup that finds the published
  // snapshot stale rebuilds a fresh one off to the side and publishes
  // it atomically. Concurrent readers under the shared latch therefore
  // see either the complete old snapshot or the complete new one —
  // never a half-rebuilt table (the torn-index hazard of the previous
  // mutable-in-place scheme).

  // child -> 0-based rank among its siblings, for every ordered child
  // of this ordering.
  struct RankIndex {
    uint64_t epoch = 0;
    std::unordered_map<EntityId, size_t> rank_of;
  };
  // Euler-tour labels over the ordering forest: entity -> (entry,
  // exit). `a` lies under `b` iff b.entry < a.entry && a.exit < b.exit.
  struct IntervalIndex {
    uint64_t epoch = 0;
    std::unordered_map<EntityId, std::pair<uint64_t, uint64_t>> interval_of;
  };
  // Heap-allocated so OrderingInstances (and the vector holding it)
  // stays movable. Publish protocol: the epoch is an atomic bumped by
  // mutators (under the exclusive db latch); the published snapshot
  // pointers are plain shared_ptrs guarded by publish_mu. Readers copy
  // the pointer under a short critical section and then use the
  // immutable snapshot lock-free. This replaces an earlier
  // std::atomic<std::shared_ptr> publish whose libstdc++ lock-bit
  // internals (_Sp_atomic) tripped TSan; one explicit mutex is exactly
  // as scalable (atomic<shared_ptr> takes an internal lock anyway) and
  // is race-free by construction.
  struct OrderingIndexCell {
    std::atomic<uint64_t> epoch{1};
    std::mutex publish_mu;
    std::shared_ptr<const RankIndex> ranks;          // guarded by publish_mu
    std::shared_ptr<const IntervalIndex> intervals;  // guarded by publish_mu
  };

  struct OrderingInstances {
    // parent -> ordered children (the S-edge sequence).
    std::unordered_map<EntityId, std::vector<EntityId>> children;
    // child -> parent (the P-edge).
    std::unordered_map<EntityId, EntityId> parent_of;

    std::unique_ptr<OrderingIndexCell> index =
        std::make_unique<OrderingIndexCell>();

    // Called on every S/P-edge mutation of this ordering; retires the
    // published snapshots by advancing the epoch.
    void Invalidate() {
      index->epoch.fetch_add(1, std::memory_order_release);
    }
  };

  const EntityRecord* FindEntity(EntityId id) const;
  EntityRecord* FindEntity(EntityId id);
  Result<const OrderingDef*> ResolveOrdering(const std::string& name) const;
  // Core mutators shared by the public API and journal replay.
  Status DoInsertChildAt(OrderingHandle h, EntityId parent, EntityId child,
                         size_t pos);
  Status DoRemoveChild(OrderingHandle h, EntityId child);
  // Walks P-edges upward from `start`; true if `needle` is an ancestor.
  bool IsAncestor(const OrderingInstances& inst, EntityId needle,
                  EntityId start) const;
  // Lazy index access: returns the current published snapshot,
  // rebuilding and republishing it first if the epoch moved. Safe for
  // concurrent readers under the shared latch.
  std::shared_ptr<const RankIndex> RankIndexFor(
      const OrderingInstances& inst) const;
  std::shared_ptr<const IntervalIndex> IntervalIndexFor(
      const OrderingInstances& inst) const;
  Status CheckOrderedPairExists(EntityId a, EntityId b) const;
  Status LogOp(Op op, const std::vector<uint8_t>& payload);
  Status ApplyOp(const storage::WalRecord& rec);
  // Maintenance hooks for the secondary attribute indexes: called by
  // SetAttribute (old value out, new value in) and DeleteEntity.
  void AttrIndexOnSet(const EntityRecord& rec, uint32_t attr_slot,
                      const rel::Value& old_value,
                      const rel::Value& new_value);
  void AttrIndexOnDelete(const EntityRecord& rec);

  // Relaxed-atomic twin of OrderingIndexStats: bumped by concurrent
  // readers (index lookups run under the shared latch).
  struct AtomicOrderingIndexStats {
    std::atomic<uint64_t> rank_hits{0};
    std::atomic<uint64_t> rank_rebuilds{0};
    std::atomic<uint64_t> interval_hits{0};
    std::atomic<uint64_t> interval_rebuilds{0};
    std::atomic<uint64_t> linear_scans{0};

    OrderingIndexStats Snapshot() const {
      OrderingIndexStats s;
      s.rank_hits = rank_hits.load(std::memory_order_relaxed);
      s.rank_rebuilds = rank_rebuilds.load(std::memory_order_relaxed);
      s.interval_hits = interval_hits.load(std::memory_order_relaxed);
      s.interval_rebuilds = interval_rebuilds.load(std::memory_order_relaxed);
      s.linear_scans = linear_scans.load(std::memory_order_relaxed);
      return s;
    }
    void Reset() {
      rank_hits.store(0, std::memory_order_relaxed);
      rank_rebuilds.store(0, std::memory_order_relaxed);
      interval_hits.store(0, std::memory_order_relaxed);
      interval_rebuilds.store(0, std::memory_order_relaxed);
      linear_scans.store(0, std::memory_order_relaxed);
    }
    void CopyFrom(const AtomicOrderingIndexStats& o) {
      rank_hits.store(o.rank_hits.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      rank_rebuilds.store(o.rank_rebuilds.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      interval_hits.store(o.interval_hits.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      interval_rebuilds.store(
          o.interval_rebuilds.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      linear_scans.store(o.linear_scans.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  };

  // Relaxed-atomic twin of AttrIndexStats: lookups are bumped by
  // concurrent readers under the shared latch.
  struct AtomicAttrIndexStats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> erases{0};
    std::atomic<uint64_t> rebuilds{0};

    AttrIndexStats Snapshot() const {
      AttrIndexStats s;
      s.lookups = lookups.load(std::memory_order_relaxed);
      s.inserts = inserts.load(std::memory_order_relaxed);
      s.erases = erases.load(std::memory_order_relaxed);
      s.rebuilds = rebuilds.load(std::memory_order_relaxed);
      return s;
    }
    void Reset() {
      lookups.store(0, std::memory_order_relaxed);
      inserts.store(0, std::memory_order_relaxed);
      erases.store(0, std::memory_order_relaxed);
      rebuilds.store(0, std::memory_order_relaxed);
    }
    void CopyFrom(const AtomicAttrIndexStats& o) {
      lookups.store(o.lookups.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      inserts.store(o.inserts.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      erases.store(o.erases.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      rebuilds.store(o.rebuilds.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
  };

  mutable std::shared_mutex mu_;  // see latch()
  ErSchema schema_;
  std::map<EntityId, EntityRecord> entities_;
  std::unordered_map<std::string, std::vector<EntityId>> by_type_;
  std::map<RelInstanceId, RelationshipInstance> rel_instances_;
  std::unordered_map<std::string, std::vector<RelInstanceId>> rels_by_name_;
  // One slot per schema ordering, indexed by OrderingHandle::index().
  std::vector<OrderingInstances> ordering_instances_;
  EntityId next_entity_id_ = 1;
  RelInstanceId next_rel_id_ = 1;
  std::atomic<bool> ordering_index_enabled_{true};
  mutable AtomicOrderingIndexStats index_stats_;
  // Secondary attribute indexes, keyed by case-normalized (upper) index
  // name. std::map so AttrIndex* stays stable across unrelated DDL.
  std::map<std::string, AttrIndex> attr_indexes_;
  std::atomic<bool> attr_index_enabled_{true};
  mutable AtomicAttrIndexStats attr_stats_;

  storage::WalWriter* wal_ = nullptr;
  uint64_t open_txn_ = 0;
  bool replaying_ = false;
};

}  // namespace mdm::er

#endif  // MDM_ER_DATABASE_H_

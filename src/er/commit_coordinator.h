#ifndef MDM_ER_COMMIT_COORDINATOR_H_
#define MDM_ER_COMMIT_COORDINATOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "storage/wal.h"

namespace mdm::er {

/// WAL group commit (docs/WRITEPATH.md §2).
///
/// Committers append their commit record under the exclusive db latch
/// (WalWriter::CommitNoSync), release the latch, then call WaitDurable
/// with that record's LSN. The first waiter to find no leader becomes
/// the leader: it waits a short grace window (`interval_us`) for more
/// committers to arrive — or until `max_batch` are queued — then issues
/// ONE WalWriter::Sync covering every commit record appended so far and
/// wakes the whole batch. Followers just sleep until a leader's sync
/// covers their LSN. Under contention, N committers pay one fsync
/// instead of N; single-threaded, the cost is one fsync plus at most
/// one grace window.
///
/// A failed sync poisons the coordinator: the failure status is
/// returned to every current AND future waiter, because the WAL tail's
/// durability is now unknown and acking later commits would lie. This
/// matches Commit()'s contract (an fsync error is fatal for the
/// journal), and the workload can still read.
class CommitCoordinator {
 public:
  struct Options {
    /// Grace window the leader holds the batch open, microseconds.
    uint32_t interval_us = 100;
    /// Leader syncs immediately once this many committers are waiting.
    uint32_t max_batch = 64;
  };

  CommitCoordinator(storage::WalWriter* wal, Options options)
      : wal_(wal), options_(options) {}
  CommitCoordinator(const CommitCoordinator&) = delete;
  CommitCoordinator& operator=(const CommitCoordinator&) = delete;

  /// Blocks until a sync covering `lsn` has completed (possibly issued
  /// by this thread as leader). Call WITHOUT the db latch held.
  Status WaitDurable(uint64_t lsn);

  const Options& options() const { return options_; }

 private:
  storage::WalWriter* wal_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t synced_ = 0;     // highest LSN known fsynced
  uint64_t requested_ = 0;  // highest LSN any waiter needs
  uint32_t waiters_ = 0;    // committers currently queued
  bool leader_active_ = false;
  Status poison_ = Status::OK();  // sticky first sync failure
};

}  // namespace mdm::er

#endif  // MDM_ER_COMMIT_COORDINATOR_H_

#include "er/versions.h"

#include <map>

#include "common/bytes.h"
#include "common/strings.h"

namespace mdm::er {

const VersionStore::Stored* VersionStore::Find(VersionId id) const {
  if (id == 0 || id > versions_.size()) return nullptr;
  return &versions_[id - 1];
}

Result<VersionId> VersionStore::Commit(const Database& db, VersionId parent,
                                       const std::string& name,
                                       const std::string& message) {
  if (parent != kNoParent && Find(parent) == nullptr)
    return NotFound(StrFormat("no parent version %llu",
                              (unsigned long long)parent));
  if (FindByName(name).ok())
    return AlreadyExists("version named " + name + " already exists");
  Stored stored;
  stored.info.id = versions_.size() + 1;
  stored.info.parent = parent;
  stored.info.name = name;
  stored.info.message = message;
  stored.info.entity_count = db.TotalEntities();
  ByteWriter w;
  db.Snapshot(&w);
  stored.snapshot = w.Take();
  stored.info.snapshot_bytes = stored.snapshot.size();
  versions_.push_back(std::move(stored));
  return versions_.back().info.id;
}

Result<Database> VersionStore::Checkout(VersionId id) const {
  const Stored* stored = Find(id);
  if (stored == nullptr)
    return NotFound(StrFormat("no version %llu", (unsigned long long)id));
  ByteReader r(stored->snapshot.data(), stored->snapshot.size());
  Database db;
  MDM_RETURN_IF_ERROR(Database::Restore(&r, &db));
  return db;
}

Result<VersionStore::VersionInfo> VersionStore::Info(VersionId id) const {
  const Stored* stored = Find(id);
  if (stored == nullptr)
    return NotFound(StrFormat("no version %llu", (unsigned long long)id));
  return stored->info;
}

Result<VersionId> VersionStore::FindByName(const std::string& name) const {
  for (const Stored& stored : versions_)
    if (EqualsIgnoreCase(stored.info.name, name)) return stored.info.id;
  return NotFound("no version named " + name);
}

std::vector<VersionStore::VersionInfo> VersionStore::List() const {
  std::vector<VersionInfo> out;
  out.reserve(versions_.size());
  for (const Stored& stored : versions_) out.push_back(stored.info);
  return out;
}

Result<std::vector<VersionId>> VersionStore::Lineage(VersionId id) const {
  std::vector<VersionId> out;
  VersionId cur = id;
  while (cur != kNoParent) {
    const Stored* stored = Find(cur);
    if (stored == nullptr)
      return NotFound(StrFormat("broken lineage at version %llu",
                                (unsigned long long)cur));
    out.push_back(cur);
    cur = stored->info.parent;
  }
  return out;
}

namespace {

// entity id -> serialized attribute values, for structural comparison.
Result<std::map<EntityId, std::string>> Fingerprints(const Database& db) {
  std::map<EntityId, std::string> out;
  Status inner;
  for (const EntityTypeDef& type : db.schema().entity_types()) {
    MDM_RETURN_IF_ERROR(db.ForEachEntity(type.name, [&](EntityId id) {
      ByteWriter w;
      for (const AttributeDef& attr : type.attributes) {
        auto v = db.GetAttribute(id, attr.name);
        if (!v.ok()) {
          inner = v.status();
          return false;
        }
        v->Encode(&w);
      }
      out[id].assign(reinterpret_cast<const char*>(w.data().data()),
                     w.size());
      return true;
    }));
    MDM_RETURN_IF_ERROR(inner);
  }
  return out;
}

}  // namespace

Result<VersionStore::Diff> VersionStore::DiffVersions(VersionId a,
                                                      VersionId b) const {
  MDM_ASSIGN_OR_RETURN(Database da, Checkout(a));
  MDM_ASSIGN_OR_RETURN(Database db_b, Checkout(b));
  MDM_ASSIGN_OR_RETURN(auto fa, Fingerprints(da));
  MDM_ASSIGN_OR_RETURN(auto fb, Fingerprints(db_b));
  Diff diff;
  for (const auto& [id, print] : fa) {
    auto it = fb.find(id);
    if (it == fb.end()) ++diff.removed;
    else if (it->second != print) ++diff.modified;
  }
  for (const auto& [id, print] : fb)
    if (fa.find(id) == fa.end()) ++diff.added;
  return diff;
}

}  // namespace mdm::er

#include "biblio/thematic_index.h"

#include "common/strings.h"
#include "ddl/parser.h"

namespace mdm::biblio {

using er::Database;
using er::EntityId;
using rel::Value;

namespace {

constexpr char kBiblioDdl[] = R"(
  define entity CATALOG (name = string, abbreviation = string)
  define entity CATALOG_ENTRY (number = string, title = string,
                               setting = string, composed = string,
                               measure_count = integer, incipit = string)
  define entity CITATION (kind = string, text = string)
  define ordering entry_in_catalog (CATALOG_ENTRY) under CATALOG
  define ordering citation_in_entry (CITATION) under CATALOG_ENTRY
)";

std::string EncodeIncipit(const std::vector<int>& keys) {
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (int k : keys) parts.push_back(std::to_string(k));
  return StrJoin(parts, " ");
}

std::vector<int> DecodeIncipit(const std::string& text) {
  std::vector<int> keys;
  for (const std::string& part : StrSplit(text, ' ')) {
    if (part.empty()) continue;
    keys.push_back(std::atoi(part.c_str()));
  }
  return keys;
}

Result<std::string> StringAttr(const Database& db, EntityId id,
                               const char* attr) {
  MDM_ASSIGN_OR_RETURN(Value v, db.GetAttribute(id, attr));
  return v.is_null() ? std::string() : v.AsString();
}

Status AddCitations(Database* db, EntityId entry, const char* kind,
                    const std::vector<std::string>& texts) {
  for (const std::string& text : texts) {
    MDM_ASSIGN_OR_RETURN(EntityId c, db->CreateEntity("CITATION"));
    MDM_RETURN_IF_ERROR(db->SetAttribute(c, "kind", Value::String(kind)));
    MDM_RETURN_IF_ERROR(db->SetAttribute(c, "text", Value::String(text)));
    MDM_RETURN_IF_ERROR(db->AppendChild("citation_in_entry", entry, c));
  }
  return Status::OK();
}

}  // namespace

Status InstallBiblioSchema(Database* db) {
  if (db->schema().FindEntityType("CATALOG") != nullptr) return Status::OK();
  auto r = ddl::ExecuteDdl(kBiblioDdl, db);
  return r.ok() ? Status::OK() : r.status();
}

Result<EntityId> CreateCatalog(Database* db, const std::string& name,
                               const std::string& abbreviation) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db->CreateEntity("CATALOG"));
  MDM_RETURN_IF_ERROR(db->SetAttribute(id, "name", Value::String(name)));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "abbreviation", Value::String(abbreviation)));
  return id;
}

Result<EntityId> AddEntry(Database* db, EntityId catalog,
                          const CatalogEntry& entry) {
  MDM_ASSIGN_OR_RETURN(EntityId id, db->CreateEntity("CATALOG_ENTRY"));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "number", Value::String(entry.number)));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "title", Value::String(entry.title)));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "setting", Value::String(entry.setting)));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "composed", Value::String(entry.composed)));
  MDM_RETURN_IF_ERROR(
      db->SetAttribute(id, "measure_count", Value::Int(entry.measure_count)));
  MDM_RETURN_IF_ERROR(db->SetAttribute(
      id, "incipit", Value::String(EncodeIncipit(entry.incipit))));
  MDM_RETURN_IF_ERROR(db->AppendChild("entry_in_catalog", catalog, id));
  MDM_RETURN_IF_ERROR(AddCitations(db, id, "manuscript", entry.manuscripts));
  MDM_RETURN_IF_ERROR(AddCitations(db, id, "edition", entry.editions));
  MDM_RETURN_IF_ERROR(AddCitations(db, id, "literature", entry.literature));
  return id;
}

Result<CatalogEntry> GetEntry(const Database& db, EntityId entry) {
  CatalogEntry out;
  MDM_ASSIGN_OR_RETURN(out.number, StringAttr(db, entry, "number"));
  MDM_ASSIGN_OR_RETURN(out.title, StringAttr(db, entry, "title"));
  MDM_ASSIGN_OR_RETURN(out.setting, StringAttr(db, entry, "setting"));
  MDM_ASSIGN_OR_RETURN(out.composed, StringAttr(db, entry, "composed"));
  MDM_ASSIGN_OR_RETURN(Value measures,
                       db.GetAttribute(entry, "measure_count"));
  out.measure_count =
      measures.is_null() ? 0 : static_cast<int>(measures.AsInt());
  MDM_ASSIGN_OR_RETURN(std::string incipit, StringAttr(db, entry, "incipit"));
  out.incipit = DecodeIncipit(incipit);
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> citations,
                       db.Children("citation_in_entry", entry));
  for (EntityId c : citations) {
    MDM_ASSIGN_OR_RETURN(std::string kind, StringAttr(db, c, "kind"));
    MDM_ASSIGN_OR_RETURN(std::string text, StringAttr(db, c, "text"));
    if (kind == "manuscript") out.manuscripts.push_back(text);
    else if (kind == "edition") out.editions.push_back(text);
    else out.literature.push_back(text);
  }
  return out;
}

Result<EntityId> LookupByIdentifier(const Database& db,
                                    const std::string& identifier) {
  // "BWV 578" -> abbreviation "BWV", number "578".
  std::string_view trimmed = StrTrim(identifier);
  size_t space = trimmed.find(' ');
  if (space == std::string_view::npos)
    return InvalidArgument("identifier must look like 'BWV 578'");
  std::string abbrev(StrTrim(trimmed.substr(0, space)));
  std::string number(StrTrim(trimmed.substr(space + 1)));

  EntityId found = er::kInvalidEntityId;
  MDM_RETURN_IF_ERROR(db.ForEachEntity("CATALOG", [&](EntityId catalog) {
    auto ab = db.GetAttribute(catalog, "abbreviation");
    if (!ab.ok() || ab->is_null() ||
        !EqualsIgnoreCase(ab->AsString(), abbrev))
      return true;
    auto entries = db.Children("entry_in_catalog", catalog);
    if (!entries.ok()) return true;
    for (EntityId entry : *entries) {
      auto num = db.GetAttribute(entry, "number");
      if (num.ok() && !num->is_null() &&
          EqualsIgnoreCase(num->AsString(), number)) {
        found = entry;
        return false;
      }
    }
    return true;
  }));
  if (found == er::kInvalidEntityId)
    return NotFound("no catalog entry " + identifier);
  return found;
}

Result<std::string> FormatEntry(const Database& db, EntityId entry) {
  MDM_ASSIGN_OR_RETURN(CatalogEntry e, GetEntry(db, entry));
  std::string out;
  out += StrFormat("%s  %s\n", e.number.c_str(), e.title.c_str());
  out += StrFormat("  Besetzung: %s - EZ %s - %d Takte\n", e.setting.c_str(),
                   e.composed.c_str(), e.measure_count);
  if (!e.incipit.empty()) {
    out += "  Incipit:";
    for (int k : e.incipit) out += StrFormat(" %d", k);
    out += "\n";
  }
  auto section = [&out](const char* label,
                        const std::vector<std::string>& items) {
    if (items.empty()) return;
    out += StrFormat("  %s: %s\n", label,
                     StrJoin(items, " - ").c_str());
  };
  section("Abschriften", e.manuscripts);
  section("Ausgaben", e.editions);
  section("Literatur", e.literature);
  return out;
}

std::vector<int> ToIntervals(const std::vector<int>& midi_keys) {
  std::vector<int> out;
  for (size_t i = 1; i < midi_keys.size(); ++i)
    out.push_back(midi_keys[i] - midi_keys[i - 1]);
  return out;
}

Result<std::vector<EntityId>> SearchByIntervals(
    const Database& db, EntityId catalog, const std::vector<int>& intervals) {
  MDM_ASSIGN_OR_RETURN(std::vector<EntityId> entries,
                       db.Children("entry_in_catalog", catalog));
  std::vector<EntityId> hits;
  for (EntityId entry : entries) {
    MDM_ASSIGN_OR_RETURN(CatalogEntry e, GetEntry(db, entry));
    std::vector<int> haystack = ToIntervals(e.incipit);
    if (intervals.empty() ||
        std::search(haystack.begin(), haystack.end(), intervals.begin(),
                    intervals.end()) != haystack.end())
      hits.push_back(entry);
  }
  return hits;
}

}  // namespace mdm::biblio

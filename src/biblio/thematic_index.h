#ifndef MDM_BIBLIO_THEMATIC_INDEX_H_
#define MDM_BIBLIO_THEMATIC_INDEX_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "er/database.h"

namespace mdm::biblio {

/// §4.2: bibliographic attributes of a composition as found in a
/// thematic index entry (fig 2: BWV 578).
struct CatalogEntry {
  std::string number;        // "578"
  std::string title;         // "Fuge g-moll"
  std::string setting;       // Besetzung: "Orgel"
  std::string composed;      // EZ: "Weimar um 1709"
  int measure_count = 0;     // Takte
  std::vector<int> incipit;  // MIDI keys of the thematic fragment
  std::vector<std::string> manuscripts;  // Abschriften
  std::vector<std::string> editions;     // Ausgaben
  std::vector<std::string> literature;   // Literatur
};

/// Installs the bibliographic schema:
///   CATALOG (name, abbreviation)      e.g. Bach Werke Verzeichnis, BWV
///   CATALOG_ENTRY (number, title, setting, composed, measure_count,
///                  incipit)           one composition
///   CITATION (kind, text)             manuscripts/editions/literature
///   define ordering entry_in_catalog (CATALOG_ENTRY) under CATALOG
///   define ordering citation_in_entry (CITATION) under CATALOG_ENTRY
/// Idempotent.
Status InstallBiblioSchema(er::Database* db);

/// Creates a catalog ("Bach Werke Verzeichnis", "BWV").
Result<er::EntityId> CreateCatalog(er::Database* db, const std::string& name,
                                   const std::string& abbreviation);

/// Adds an entry; entries are hierarchically ordered within the catalog
/// (the BWV orders compositions chronologically, §4.2).
Result<er::EntityId> AddEntry(er::Database* db, er::EntityId catalog,
                              const CatalogEntry& entry);

/// Reads an entry back.
Result<CatalogEntry> GetEntry(const er::Database& db, er::EntityId entry);

/// Resolves an accepted identifier like "BWV 578" (§4.2: the
/// bibliographer's identifier becomes the accepted name of the piece).
Result<er::EntityId> LookupByIdentifier(const er::Database& db,
                                        const std::string& identifier);

/// Renders an entry in the style of fig 2.
Result<std::string> FormatEntry(const er::Database& db, er::EntityId entry);

/// Transposition-invariant incipit search: returns entries whose
/// thematic fragment contains `intervals` (successive semitone steps)
/// as a substring. This is the musicological "identify the composition
/// from its theme" operation the thematic index exists for.
Result<std::vector<er::EntityId>> SearchByIntervals(
    const er::Database& db, er::EntityId catalog,
    const std::vector<int>& intervals);

/// Converts a melody in MIDI keys to its interval sequence.
std::vector<int> ToIntervals(const std::vector<int>& midi_keys);

}  // namespace mdm::biblio

#endif  // MDM_BIBLIO_THEMATIC_INDEX_H_

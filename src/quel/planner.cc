#include "quel/planner.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"

namespace mdm::quel {

using er::Database;

void CollectExprVars(const Expr& e, std::set<std::string>* out) {
  if (e.kind != Expr::Kind::kLiteral) out->insert(AsciiLower(e.var));
}

void CollectQualVars(const Qual& q, std::set<std::string>* out) {
  switch (q.kind) {
    case Qual::Kind::kCompare:
    case Qual::Kind::kIs:
      CollectExprVars(q.lhs, out);
      CollectExprVars(q.rhs, out);
      break;
    case Qual::Kind::kOrder:
      out->insert(AsciiLower(q.order_var1));
      out->insert(AsciiLower(q.order_var2));
      break;
    case Qual::Kind::kAnd:
    case Qual::Kind::kOr:
      CollectQualVars(*q.a, out);
      CollectQualVars(*q.b, out);
      break;
    case Qual::Kind::kNot:
      CollectQualVars(*q.a, out);
      break;
  }
}

namespace {

/// Splits a qualification into top-level AND conjuncts.
void SplitConjuncts(const Qual* q, std::vector<const Qual*>* out) {
  if (q == nullptr) return;
  if (q->kind == Qual::Kind::kAnd) {
    SplitConjuncts(q->a.get(), out);
    SplitConjuncts(q->b.get(), out);
  } else {
    out->push_back(q);
  }
}

const char* CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* OrderOpText(OrderOp op) {
  switch (op) {
    case OrderOp::kBefore: return "before";
    case OrderOp::kAfter: return "after";
    case OrderOp::kUnder: return "under";
  }
  return "?";
}

/// Binds every kOrder node in `q` (at any nesting depth) to a resolved
/// handle. `types` maps lowercased variable name -> (type, is_rel).
Status BindOrderHandles(Database* db,
                        const std::map<std::string,
                                       std::pair<std::string, bool>>& types,
                        const Qual& q, Plan* plan) {
  switch (q.kind) {
    case Qual::Kind::kCompare:
    case Qual::Kind::kIs:
      return Status::OK();
    case Qual::Kind::kAnd:
    case Qual::Kind::kOr:
      MDM_RETURN_IF_ERROR(BindOrderHandles(db, types, *q.a, plan));
      return BindOrderHandles(db, types, *q.b, plan);
    case Qual::Kind::kNot:
      return BindOrderHandles(db, types, *q.a, plan);
    case Qual::Kind::kOrder:
      break;
  }
  const auto& t1 = types.at(AsciiLower(q.order_var1));
  const auto& t2 = types.at(AsciiLower(q.order_var2));
  if (t1.second || t2.second)
    return TypeError("ordering operators apply to entities");
  if (!q.ordering.empty()) {
    MDM_ASSIGN_OR_RETURN(er::OrderingHandle h,
                         db->ResolveOrderingHandle(q.ordering));
    plan->order_handles[&q] = h;
    return Status::OK();
  }
  // `in ordering` omitted: exactly one ordering must apply to the static
  // operand types. The types come from the range declarations, so this
  // is decidable at plan time — no per-row TypeOf calls.
  std::vector<er::OrderingHandle> candidates;
  const std::vector<er::OrderingDef>& defs = db->schema().orderings();
  for (size_t i = 0; i < defs.size(); ++i) {
    const er::OrderingDef& o = defs[i];
    bool match = q.order_op == OrderOp::kUnder
                     ? o.HasChildType(t1.first) &&
                           EqualsIgnoreCase(o.parent_type, t2.first)
                     : o.HasChildType(t1.first) && o.HasChildType(t2.first);
    if (match) candidates.push_back(er::OrderingHandle::FromIndex(i));
  }
  if (candidates.empty())
    return NotFound(StrFormat("no ordering relates %s and %s",
                              t1.first.c_str(), t2.first.c_str()));
  if (candidates.size() > 1)
    return InvalidArgument(
        StrFormat("ambiguous ordering between %s and %s; use 'in <name>'",
                  t1.first.c_str(), t2.first.c_str()));
  plan->order_handles[&q] = candidates[0];
  return Status::OK();
}

/// Declared rel::ValueType of an expression over the planned range
/// variables, or nullopt when it cannot be typed statically
/// (relationship variables, unknown attributes). Used to gate index
/// probes: a probe may only replace a scan when the key side is
/// statically comparable with the indexed attribute, so type errors
/// the scan path would raise are never masked by an empty probe.
std::optional<rel::ValueType> StaticExprType(
    const Database* db,
    const std::map<std::string, std::pair<std::string, bool>>& types,
    const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal.type();
    case Expr::Kind::kVarRef: {
      auto it = types.find(AsciiLower(e.var));
      if (it == types.end() || it->second.second) return std::nullopt;
      return rel::ValueType::kRef;
    }
    case Expr::Kind::kAttrRef: {
      auto it = types.find(AsciiLower(e.var));
      if (it == types.end() || it->second.second) return std::nullopt;
      const er::EntityTypeDef* tdef =
          db->schema().FindEntityType(it->second.first);
      if (tdef == nullptr) return std::nullopt;
      std::optional<size_t> slot = tdef->AttributeIndex(e.attr);
      if (!slot) return std::nullopt;
      return tdef->attributes[*slot].type;
    }
  }
  return std::nullopt;
}

/// Whether an equality between two statically-typed operands can be
/// answered by an index keyed on one of them. Same type always; int and
/// float mix because Value::Compare is numeric across the pair (and
/// AttrKeyFor canonicalizes integral floats onto the int encoding).
bool IndexKeyTypesComparable(rel::ValueType a, rel::ValueType b) {
  if (a == b) return true;
  auto numeric = [](rel::ValueType t) {
    return t == rel::ValueType::kInt || t == rel::ValueType::kFloat;
  };
  return numeric(a) && numeric(b);
}

/// Picks an index probe for entity loop `var`, if any conjunct has the
/// shape `var.attr = <key>` / `<key> = var.attr` (or `is` over refs)
/// with every key-side variable bound by an outer loop and a live index
/// on (var.type, attr). First eligible conjunct wins; the conjunct is
/// NOT removed from the filter list — hashed key encodings may collide
/// and a runtime null key falls back to the scan, so re-checking keeps
/// probe plans row-for-row equivalent to scan plans. A query naming the
/// wrong key attribute (footnote 3) simply finds no index here and
/// keeps the scan.
void SelectIndexProbe(
    Database* db,
    const std::map<std::string, std::pair<std::string, bool>>& types,
    const std::vector<const Qual*>& conjuncts,
    const std::set<std::string>& bound, PlannedVar* var) {
  for (const Qual* c : conjuncts) {
    bool eq_shape =
        (c->kind == Qual::Kind::kCompare && c->cmp == CompareOp::kEq) ||
        c->kind == Qual::Kind::kIs;
    if (!eq_shape) continue;
    for (int flip = 0; flip < 2; ++flip) {
      const Expr& attr_side = flip == 0 ? c->lhs : c->rhs;
      const Expr& key_side = flip == 0 ? c->rhs : c->lhs;
      if (attr_side.kind != Expr::Kind::kAttrRef) continue;
      if (AsciiLower(attr_side.var) != var->name) continue;
      std::set<std::string> key_vars;
      CollectExprVars(key_side, &key_vars);
      bool all_bound = true;
      for (const std::string& kv : key_vars)
        if (bound.count(kv) == 0) all_bound = false;
      if (!all_bound) continue;
      const er::AttrIndex* ix = db->FindAttrIndex(var->type, attr_side.attr);
      if (ix == nullptr) continue;
      std::optional<rel::ValueType> at = StaticExprType(db, types, attr_side);
      std::optional<rel::ValueType> kt = StaticExprType(db, types, key_side);
      if (!at || !kt || !IndexKeyTypesComparable(*at, *kt)) continue;
      // `is` compares entity references; guard against `is` over scalars
      // which the evaluator rejects at runtime.
      if (c->kind == Qual::Kind::kIs && *at != rel::ValueType::kRef) continue;
      var->index = ix;
      var->index_key = &key_side;
      return;
    }
  }
}

/// Renders a qualification; with a database + plan, ordering operators
/// carry their resolved ordering names and index annotations (the
/// explain output). Both may be null for a plain deparse.
std::string RenderQual(const Database* db, const Plan* plan, const Qual& q) {
  switch (q.kind) {
    case Qual::Kind::kCompare:
      return ExprToString(q.lhs) + " " + CompareOpText(q.cmp) + " " +
             ExprToString(q.rhs);
    case Qual::Kind::kIs:
      return ExprToString(q.lhs) + " is " + ExprToString(q.rhs);
    case Qual::Kind::kOrder: {
      std::string out = AsciiLower(q.order_var1);
      out += " ";
      out += OrderOpText(q.order_op);
      out += " ";
      out += AsciiLower(q.order_var2);
      bool annotated = false;
      if (plan != nullptr && db != nullptr) {
        auto it = plan->order_handles.find(&q);
        if (it != plan->order_handles.end()) {
          out += " in " + db->ordering_def(it->second).name;
          if (!db->ordering_index_enabled())
            out += " [linear scan]";
          else if (q.order_op == OrderOp::kUnder)
            out += " [interval index]";
          else
            out += " [rank index]";
          annotated = true;
        }
      }
      if (!annotated && !q.ordering.empty()) out += " in " + q.ordering;
      return out;
    }
    case Qual::Kind::kAnd:
      return RenderQual(db, plan, *q.a) + " and " +
             RenderQual(db, plan, *q.b);
    case Qual::Kind::kOr:
      return "(" + RenderQual(db, plan, *q.a) + " or " +
             RenderQual(db, plan, *q.b) + ")";
    case Qual::Kind::kNot:
      return "not (" + RenderQual(db, plan, *q.a) + ")";
  }
  return "?";
}

std::string RenderTarget(const Target& t) {
  std::string inner = ExprToString(t.expr);
  switch (t.agg) {
    case AggFn::kNone: break;
    case AggFn::kCount: inner = "count(" + inner + ")"; break;
    case AggFn::kSum: inner = "sum(" + inner + ")"; break;
    case AggFn::kAvg: inner = "avg(" + inner + ")"; break;
    case AggFn::kMin: inner = "min(" + inner + ")"; break;
    case AggFn::kMax: inner = "max(" + inner + ")"; break;
  }
  return inner;
}

}  // namespace

std::string ExprToString(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: return e.literal.ToString();
    case Expr::Kind::kVarRef: return AsciiLower(e.var);
    case Expr::Kind::kAttrRef: return AsciiLower(e.var) + "." + e.attr;
  }
  return "?";
}

std::string QualToString(const Qual& q) {
  return RenderQual(nullptr, nullptr, q);
}

Result<Plan> PlanQuery(Database* db,
                       const std::map<std::string, std::string>& ranges,
                       const Statement& stmt, bool pushdown) {
  Plan plan;
  plan.pushdown = pushdown;

  // Collect the variables this statement uses.
  std::set<std::string> used;
  for (const Target& t : stmt.targets) {
    CollectExprVars(t.expr, &used);
    for (const Expr& by_expr : t.by) CollectExprVars(by_expr, &used);
  }
  if (stmt.qual != nullptr) CollectQualVars(*stmt.qual, &used);
  if (!stmt.update_var.empty()) used.insert(AsciiLower(stmt.update_var));
  for (const auto& [attr, expr] : stmt.assignments)
    CollectExprVars(expr, &used);

  // Resolve each to a type: explicit range declaration, or the implicit
  // same-named range variable (footnote 6).
  for (const std::string& name : used) {
    PlannedVar var;
    var.name = name;
    auto it = ranges.find(name);
    if (it != ranges.end()) {
      var.type = it->second;
    } else if (db->schema().FindEntityType(name) != nullptr ||
               db->schema().FindRelationship(name) != nullptr) {
      var.type = name;
    } else {
      return NotFound("undeclared range variable " + name);
    }
    var.is_relationship =
        db->schema().FindRelationship(var.type) != nullptr;
    MDM_ASSIGN_OR_RETURN(var.cardinality,
                         var.is_relationship
                             ? db->CountRelationships(var.type)
                             : db->CountEntities(var.type));
    plan.vars.push_back(std::move(var));
  }

  std::vector<const Qual*> conjuncts;
  SplitConjuncts(stmt.qual.get(), &conjuncts);

  // Selectivity: the arity of the narrowest conjunct mentioning the
  // variable (a `n.name = 3` restriction makes n maximally selective).
  for (PlannedVar& var : plan.vars) {
    for (const Qual* c : conjuncts) {
      std::set<std::string> cv;
      CollectQualVars(*c, &cv);
      if (cv.count(var.name) != 0)
        var.selectivity = std::min(var.selectivity, cv.size());
    }
  }

  // Loop order: most-restricted variables first, then smaller estimated
  // cardinality, so selective predicates prune before wide loops run.
  // The naive (no-pushdown) plan keeps declaration order — it is the
  // ablation baseline and must not benefit from reordering.
  if (pushdown) {
    std::stable_sort(plan.vars.begin(), plan.vars.end(),
                     [](const PlannedVar& a, const PlannedVar& b) {
                       if (a.selectivity != b.selectivity)
                         return a.selectivity < b.selectivity;
                       return a.cardinality < b.cardinality;
                     });
  }

  std::map<std::string, std::pair<std::string, bool>> types;
  for (const PlannedVar& var : plan.vars)
    types[var.name] = {var.type, var.is_relationship};

  // Index probe selection, in loop order: each entity loop may be
  // driven by an equality conjunct whose key side is bound by outer
  // loops (index selection for literal keys, index-nested-loop join for
  // outer-variable keys). Runs after the sort so "bound" is final; the
  // naive plan never probes — it is the ablation baseline.
  if (pushdown) {
    std::set<std::string> bound;
    for (PlannedVar& var : plan.vars) {
      if (!var.is_relationship)
        SelectIndexProbe(db, types, conjuncts, bound, &var);
      bound.insert(var.name);
    }
  }

  // Push each conjunct to the outermost depth at which its variables
  // are all bound (depth 0 = constant). Without pushdown everything
  // evaluates at the innermost level.
  for (const Qual* c : conjuncts) {
    PlannedConjunct pc;
    pc.qual = c;
    if (pushdown) {
      std::set<std::string> cv;
      CollectQualVars(*c, &cv);
      for (size_t v = 0; v < plan.vars.size(); ++v) {
        if (cv.count(plan.vars[v].name) != 0) pc.depth = v + 1;
      }
    } else {
      pc.depth = plan.vars.size();
    }
    plan.conjuncts.push_back(pc);
  }

  // Bind every ordering operator to a resolved handle, once.
  if (stmt.qual != nullptr)
    MDM_RETURN_IF_ERROR(BindOrderHandles(db, types, *stmt.qual, &plan));
  return plan;
}

namespace {

/// Shared renderer behind ExplainPlan and ExplainAnalyzePlan. When
/// `actual` is non-null, each loop line carries its measured rows
/// in/out and self time, and a totals footer is appended.
std::string RenderPlan(const Database& db, const Statement& stmt,
                       const Plan& plan, const AnalyzeStats* actual,
                       uint64_t statement_ns) {
  std::string out = "plan:";
  switch (stmt.kind) {
    case Statement::Kind::kRetrieve: out += " retrieve"; break;
    case Statement::Kind::kReplace: out += " replace"; break;
    case Statement::Kind::kDelete: out += " delete"; break;
    default: out += " ?"; break;
  }
  if (stmt.unique) out += " unique";
  if (actual != nullptr) out += " (analyze)";
  out += "\n";
  out += StrFormat("  pushdown: %s\n", plan.pushdown ? "on" : "off");
  out += StrFormat("  ordering index: %s\n",
                   db.ordering_index_enabled() ? "on" : "off");
  for (const PlannedConjunct& c : plan.conjuncts) {
    if (c.depth == 0)
      out += "  filter (const): " + RenderQual(&db, &plan, *c.qual) + "\n";
  }
  size_t levels = plan.vars.size();
  for (size_t v = 0; v < levels; ++v) {
    const PlannedVar& var = plan.vars[v];
    out += StrFormat("  loop %zu: %s is %s (~%llu rows)", v + 1,
                     var.name.c_str(), var.type.c_str(),
                     (unsigned long long)var.cardinality);
    if (var.index != nullptr)
      out += StrFormat(" via index %s(%s)", var.index->def.name.c_str(),
                       var.index->def.attr.c_str());
    if (actual != nullptr) {
      // Self time of loop v+1: everything spent at depth v (its filter
      // gate plus the enumeration) minus the time handed to depth v+1.
      uint64_t self = actual->inclusive_ns[v] >= actual->inclusive_ns[v + 1]
                          ? actual->inclusive_ns[v] -
                                actual->inclusive_ns[v + 1]
                          : 0;
      out += StrFormat(" [actual: in=%llu out=%llu, self=%lluns]",
                       (unsigned long long)actual->calls[v + 1],
                       (unsigned long long)actual->passed[v + 1],
                       (unsigned long long)self);
    }
    out += "\n";
    for (const PlannedConjunct& c : plan.conjuncts) {
      if (c.depth == v + 1)
        out += "    filter: " + RenderQual(&db, &plan, *c.qual) + "\n";
    }
  }
  out += "  emit:";
  if (stmt.kind == Statement::Kind::kRetrieve) {
    for (size_t i = 0; i < stmt.targets.size(); ++i)
      out += (i == 0 ? " " : ", ") + RenderTarget(stmt.targets[i]);
  } else {
    out += " " + AsciiLower(stmt.update_var);
  }
  if (actual != nullptr) {
    out += StrFormat(" [actual: rows=%llu, time=%lluns]",
                     (unsigned long long)actual->passed[levels],
                     (unsigned long long)actual->inclusive_ns[levels]);
  }
  out += "\n";
  if (actual != nullptr) {
    // Loop self times + emit time sum exactly to join=inclusive_ns[0];
    // statement additionally covers planning and post-processing.
    out += StrFormat("  actual: join=%lluns, statement=%lluns\n",
                     (unsigned long long)actual->inclusive_ns[0],
                     (unsigned long long)statement_ns);
  }
  return out;
}

}  // namespace

std::string ExplainPlan(const Database& db, const Statement& stmt,
                        const Plan& plan) {
  return RenderPlan(db, stmt, plan, nullptr, 0);
}

std::string ExplainAnalyzePlan(const Database& db, const Statement& stmt,
                               const Plan& plan, const AnalyzeStats& actual,
                               uint64_t statement_ns) {
  return RenderPlan(db, stmt, plan, &actual, statement_ns);
}

}  // namespace mdm::quel

#include "common/strings.h"
#include "ddl/lexer.h"
#include "quel/quel.h"

namespace mdm::quel {

namespace {

using ddl::Lex;
using ddl::Token;
using ddl::TokenType;

bool IsKeyword(const Token& tok, const char* kw) {
  return tok.type == TokenType::kIdentifier && EqualsIgnoreCase(tok.text, kw);
}

class QuelParser {
 public:
  explicit QuelParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> Run() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      MDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

 private:
  bool AtEnd() const { return tokens_[pos_].type == TokenType::kEnd; }
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw))
      return ParseError(StrFormat("line %zu: expected '%s', got '%s'",
                                  Peek().line, kw, Peek().text.c_str()));
    Advance();
    return Status::OK();
  }

  Status Expect(TokenType t, const char* what) {
    if (Peek().type != t)
      return ParseError(StrFormat("line %zu: expected %s, got '%s'",
                                  Peek().line, what, Peek().text.c_str()));
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier)
      return ParseError(StrFormat("line %zu: expected %s, got '%s'",
                                  Peek().line, what, Peek().text.c_str()));
    std::string s = Peek().text;
    Advance();
    return s;
  }

  Result<Statement> ParseStatement() {
    const Token& tok = Peek();
    if (IsKeyword(tok, "range")) return ParseRange();
    if (IsKeyword(tok, "explain")) {
      // `explain retrieve ...` renders the plan without running it;
      // `explain analyze retrieve ...` runs it and annotates the plan
      // with actual row counts and per-loop timings.
      Advance();
      bool analyze = false;
      if (IsKeyword(Peek(), "analyze")) {
        analyze = true;
        Advance();
      }
      if (!IsKeyword(Peek(), "retrieve"))
        return ParseError(
            StrFormat("line %zu: expected 'retrieve' after 'explain', "
                      "got '%s'",
                      Peek().line, Peek().text.c_str()));
      MDM_ASSIGN_OR_RETURN(Statement stmt, ParseRetrieve());
      stmt.explain = true;
      stmt.analyze = analyze;
      return stmt;
    }
    if (IsKeyword(tok, "retrieve")) return ParseRetrieve();
    if (IsKeyword(tok, "append")) return ParseAppend();
    if (IsKeyword(tok, "replace")) return ParseReplace();
    if (IsKeyword(tok, "delete")) return ParseDelete();
    return ParseError(StrFormat("line %zu: expected a statement, got '%s'",
                                tok.line, tok.text.c_str()));
  }

  // range of v1, v2 is TYPE
  Result<Statement> ParseRange() {
    Advance();  // range
    MDM_RETURN_IF_ERROR(ExpectKeyword("of"));
    Statement stmt;
    stmt.kind = Statement::Kind::kRange;
    while (true) {
      MDM_ASSIGN_OR_RETURN(std::string v,
                           ExpectIdentifier("range variable"));
      stmt.range_vars.push_back(std::move(v));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    MDM_RETURN_IF_ERROR(ExpectKeyword("is"));
    MDM_ASSIGN_OR_RETURN(stmt.range_type, ExpectIdentifier("type name"));
    return stmt;
  }

  // retrieve [unique] ( target {, target} ) [ where qual ]
  Result<Statement> ParseRetrieve() {
    Advance();  // retrieve
    Statement stmt;
    stmt.kind = Statement::Kind::kRetrieve;
    if (IsKeyword(Peek(), "unique")) {
      stmt.unique = true;
      Advance();
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      MDM_ASSIGN_OR_RETURN(Target t, ParseTarget());
      stmt.targets.push_back(std::move(t));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (IsKeyword(Peek(), "where")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(stmt.qual, ParseQual());
    }
    // sort by label [desc] {, label [desc]}
    if (IsKeyword(Peek(), "sort")) {
      Advance();
      MDM_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        SortKey key;
        MDM_ASSIGN_OR_RETURN(key.label, ExpectIdentifier("sort column"));
        // A default target label may be "var.attr".
        if (Peek().type == TokenType::kDot) {
          Advance();
          MDM_ASSIGN_OR_RETURN(std::string attr,
                               ExpectIdentifier("sort column attribute"));
          key.label += "." + attr;
        }
        if (IsKeyword(Peek(), "desc")) {
          key.descending = true;
          Advance();
        } else if (IsKeyword(Peek(), "asc")) {
          Advance();
        }
        stmt.sort_keys.push_back(std::move(key));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    return stmt;
  }

  // append to TYPE ( attr = expr {, attr = expr} )
  //   [ under VAR in ORDERING [ where qual ] ]
  Result<Statement> ParseAppend() {
    Advance();  // append
    MDM_RETURN_IF_ERROR(ExpectKeyword("to"));
    Statement stmt;
    stmt.kind = Statement::Kind::kAppend;
    MDM_ASSIGN_OR_RETURN(stmt.append_type, ExpectIdentifier("type name"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (Peek().type != TokenType::kRParen) {
      while (true) {
        MDM_ASSIGN_OR_RETURN(std::string attr,
                             ExpectIdentifier("attribute name"));
        MDM_RETURN_IF_ERROR(Expect(TokenType::kEquals, "'='"));
        MDM_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        stmt.assignments.emplace_back(std::move(attr), std::move(e));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (IsKeyword(Peek(), "under")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(stmt.append_parent_var,
                           ExpectIdentifier("parent range variable"));
      MDM_RETURN_IF_ERROR(ExpectKeyword("in"));
      MDM_ASSIGN_OR_RETURN(stmt.append_ordering,
                           ExpectIdentifier("ordering name"));
      if (IsKeyword(Peek(), "where")) {
        Advance();
        MDM_ASSIGN_OR_RETURN(stmt.qual, ParseQual());
      }
    }
    return stmt;
  }

  // replace v ( attr = expr {, ...} ) [ where qual ]
  Result<Statement> ParseReplace() {
    Advance();  // replace
    Statement stmt;
    stmt.kind = Statement::Kind::kReplace;
    MDM_ASSIGN_OR_RETURN(stmt.update_var,
                         ExpectIdentifier("range variable"));
    MDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      MDM_ASSIGN_OR_RETURN(std::string attr,
                           ExpectIdentifier("attribute name"));
      MDM_RETURN_IF_ERROR(Expect(TokenType::kEquals, "'='"));
      MDM_ASSIGN_OR_RETURN(Expr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(attr), std::move(e));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (IsKeyword(Peek(), "where")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(stmt.qual, ParseQual());
    }
    return stmt;
  }

  // delete v [ where qual ]
  Result<Statement> ParseDelete() {
    Advance();  // delete
    Statement stmt;
    stmt.kind = Statement::Kind::kDelete;
    MDM_ASSIGN_OR_RETURN(stmt.update_var,
                         ExpectIdentifier("range variable"));
    if (IsKeyword(Peek(), "where")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(stmt.qual, ParseQual());
    }
    return stmt;
  }

  // target := [label =] (aggfn '(' expr ')' | expr)
  Result<Target> ParseTarget() {
    Target t;
    // Optional label: IDENT '=' when not followed by aggregate-less
    // ambiguity. `label = expr`.
    if (Peek().type == TokenType::kIdentifier &&
        Peek(1).type == TokenType::kEquals) {
      t.label = Peek().text;
      Advance();
      Advance();
    }
    if (Peek().type == TokenType::kIdentifier &&
        Peek(1).type == TokenType::kLParen) {
      const std::string fn = AsciiLower(Peek().text);
      AggFn agg = AggFn::kNone;
      if (fn == "count") agg = AggFn::kCount;
      else if (fn == "sum") agg = AggFn::kSum;
      else if (fn == "avg") agg = AggFn::kAvg;
      else if (fn == "min") agg = AggFn::kMin;
      else if (fn == "max") agg = AggFn::kMax;
      if (agg != AggFn::kNone) {
        t.agg = agg;
        Advance();  // fn
        Advance();  // (
        MDM_ASSIGN_OR_RETURN(t.expr, ParseExpr());
        // QUEL grouping: aggfn(expr by expr {, expr}).
        if (IsKeyword(Peek(), "by")) {
          Advance();
          while (true) {
            MDM_ASSIGN_OR_RETURN(Expr by_expr, ParseExpr());
            t.by.push_back(std::move(by_expr));
            if (Peek().type != TokenType::kComma) break;
            Advance();
          }
        }
        MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        if (t.label.empty()) t.label = fn;
        return t;
      }
    }
    MDM_ASSIGN_OR_RETURN(t.expr, ParseExpr());
    if (t.label.empty()) {
      t.label = t.expr.kind == Expr::Kind::kAttrRef
                    ? t.expr.var + "." + t.expr.attr
                    : (t.expr.kind == Expr::Kind::kVarRef ? t.expr.var
                                                          : "expr");
    }
    return t;
  }

  // expr := literal | IDENT | IDENT '.' IDENT
  Result<Expr> ParseExpr() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        Advance();
        return Expr::Literal(rel::Value::Int(tok.int_value));
      }
      case TokenType::kFloat: {
        Advance();
        return Expr::Literal(rel::Value::Float(tok.float_value));
      }
      case TokenType::kString: {
        Advance();
        return Expr::Literal(rel::Value::String(tok.text));
      }
      case TokenType::kIdentifier: {
        if (EqualsIgnoreCase(tok.text, "true") ||
            EqualsIgnoreCase(tok.text, "false")) {
          Advance();
          return Expr::Literal(
              rel::Value::Bool(EqualsIgnoreCase(tok.text, "true")));
        }
        std::string var = tok.text;
        Advance();
        if (Peek().type == TokenType::kDot) {
          Advance();
          MDM_ASSIGN_OR_RETURN(std::string attr,
                               ExpectIdentifier("attribute name"));
          return Expr::AttrRef(std::move(var), std::move(attr));
        }
        return Expr::VarRef(std::move(var));
      }
      default:
        return ParseError(StrFormat("line %zu: expected expression, got '%s'",
                                    tok.line, tok.text.c_str()));
    }
  }

  // qual := or_qual
  Result<std::unique_ptr<Qual>> ParseQual() { return ParseOr(); }

  Result<std::unique_ptr<Qual>> ParseOr() {
    MDM_ASSIGN_OR_RETURN(std::unique_ptr<Qual> lhs, ParseAnd());
    while (IsKeyword(Peek(), "or")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(std::unique_ptr<Qual> rhs, ParseAnd());
      auto node = std::make_unique<Qual>();
      node->kind = Qual::Kind::kOr;
      node->a = std::move(lhs);
      node->b = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Qual>> ParseAnd() {
    MDM_ASSIGN_OR_RETURN(std::unique_ptr<Qual> lhs, ParseNot());
    while (IsKeyword(Peek(), "and")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(std::unique_ptr<Qual> rhs, ParseNot());
      auto node = std::make_unique<Qual>();
      node->kind = Qual::Kind::kAnd;
      node->a = std::move(lhs);
      node->b = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Qual>> ParseNot() {
    if (IsKeyword(Peek(), "not")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(std::unique_ptr<Qual> inner, ParseNot());
      auto node = std::make_unique<Qual>();
      node->kind = Qual::Kind::kNot;
      node->a = std::move(inner);
      return node;
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Qual>> ParsePrimary() {
    if (Peek().type == TokenType::kLParen) {
      Advance();
      MDM_ASSIGN_OR_RETURN(std::unique_ptr<Qual> inner, ParseQual());
      MDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    MDM_ASSIGN_OR_RETURN(Expr lhs, ParseExpr());
    const Token& op = Peek();
    // Entity equivalence: `a is b`.
    if (IsKeyword(op, "is")) {
      Advance();
      MDM_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
      auto node = std::make_unique<Qual>();
      node->kind = Qual::Kind::kIs;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      return node;
    }
    // Ordering operators: `a before b [in ordering]`.
    for (auto [kw, oop] : {std::pair{"before", OrderOp::kBefore},
                           std::pair{"after", OrderOp::kAfter},
                           std::pair{"under", OrderOp::kUnder}}) {
      if (!IsKeyword(op, kw)) continue;
      if (lhs.kind != Expr::Kind::kVarRef)
        return ParseError(StrFormat(
            "line %zu: ordering operators take range variables", op.line));
      Advance();
      MDM_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
      if (rhs.kind != Expr::Kind::kVarRef)
        return ParseError(StrFormat(
            "line %zu: ordering operators take range variables", op.line));
      auto node = std::make_unique<Qual>();
      node->kind = Qual::Kind::kOrder;
      node->order_op = oop;
      node->order_var1 = lhs.var;
      node->order_var2 = rhs.var;
      if (IsKeyword(Peek(), "in")) {
        Advance();
        MDM_ASSIGN_OR_RETURN(node->ordering,
                             ExpectIdentifier("ordering name"));
      }
      return node;
    }
    CompareOp cmp;
    switch (op.type) {
      case TokenType::kEquals: cmp = CompareOp::kEq; break;
      case TokenType::kNotEquals: cmp = CompareOp::kNe; break;
      case TokenType::kLess: cmp = CompareOp::kLt; break;
      case TokenType::kLessEq: cmp = CompareOp::kLe; break;
      case TokenType::kGreater: cmp = CompareOp::kGt; break;
      case TokenType::kGreaterEq: cmp = CompareOp::kGe; break;
      default:
        return ParseError(StrFormat("line %zu: expected a predicate "
                                    "operator, got '%s'",
                                    op.line, op.text.c_str()));
    }
    Advance();
    MDM_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
    auto node = std::make_unique<Qual>();
    node->kind = Qual::Kind::kCompare;
    node->cmp = cmp;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> ParseQuel(const std::string& script) {
  MDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(script));
  QuelParser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace mdm::quel

#ifndef MDM_QUEL_AST_H_
#define MDM_QUEL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "ddl/lexer.h"
#include "rel/value.h"

namespace mdm::quel {

/// Scalar expression: a literal, or `var.attr`, or a bare range variable
/// (which evaluates to the entity it is bound to, for `is` comparisons).
struct Expr {
  enum class Kind { kLiteral, kAttrRef, kVarRef };
  Kind kind = Kind::kLiteral;
  rel::Value literal;
  std::string var;   // kAttrRef / kVarRef
  std::string attr;  // kAttrRef: attribute or relationship-role name

  static Expr Literal(rel::Value v) {
    Expr e;
    e.kind = Kind::kLiteral;
    e.literal = std::move(v);
    return e;
  }
  static Expr AttrRef(std::string var, std::string attr) {
    Expr e;
    e.kind = Kind::kAttrRef;
    e.var = std::move(var);
    e.attr = std::move(attr);
    return e;
  }
  static Expr VarRef(std::string var) {
    Expr e;
    e.kind = Kind::kVarRef;
    e.var = std::move(var);
    return e;
  }
};

/// Comparison operators in qualifications.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// The paper's entity ordering operators (§5.6).
enum class OrderOp { kBefore, kAfter, kUnder };

/// Qualification tree.
struct Qual {
  enum class Kind { kCompare, kIs, kOrder, kAnd, kOr, kNot };
  Kind kind = Kind::kCompare;

  // kCompare / kIs
  Expr lhs;
  Expr rhs;
  CompareOp cmp = CompareOp::kEq;

  // kOrder: `var1 <op> var2 in ordering`
  OrderOp order_op = OrderOp::kBefore;
  std::string order_var1;
  std::string order_var2;
  std::string ordering;  // empty = infer the unique applicable ordering

  // kAnd / kOr / kNot
  std::unique_ptr<Qual> a;
  std::unique_ptr<Qual> b;
};

/// Aggregate functions over the qualifying set.
enum class AggFn { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One retrieve target: `[label =] expr` or `aggfn(expr [by expr, ...])`.
/// A `by` list groups the qualifying set QUEL-style: one result row per
/// distinct combination of the by-expressions.
struct Target {
  std::string label;
  AggFn agg = AggFn::kNone;
  Expr expr;
  std::vector<Expr> by;
};

/// One key of a `sort by` clause: a target label plus direction.
struct SortKey {
  std::string label;
  bool descending = false;
};

/// A parsed QUEL statement.
struct Statement {
  enum class Kind { kRange, kRetrieve, kAppend, kReplace, kDelete };
  Kind kind = Kind::kRange;

  // kRange: `range of v1, v2 is TYPE`
  std::vector<std::string> range_vars;
  std::string range_type;

  // kRetrieve
  bool explain = false;  // `explain retrieve ...`: render the plan only
  bool analyze = false;  // `explain analyze ...`: execute + annotate plan
  bool unique = false;   // `retrieve unique (...)` deduplicates rows
  std::vector<Target> targets;
  std::vector<SortKey> sort_keys;  // `sort by label [desc], ...`
  std::unique_ptr<Qual> qual;  // shared by retrieve/replace/delete

  // kAppend: `append to TYPE (attr = literal, ...)`, optionally followed
  // by `under <var> in <ordering> [where qual]` — the created entity is
  // appended as the last child of every entity the qualification binds
  // `var` to (the editor's "add a measure at the end" operation, §5.5).
  std::string append_type;
  std::vector<std::pair<std::string, Expr>> assignments;  // append/replace
  std::string append_parent_var;  // empty: plain append
  std::string append_ordering;    // ordering to append under

  // kReplace / kDelete: the updated/deleted range variable
  std::string update_var;
};

}  // namespace mdm::quel

#endif  // MDM_QUEL_AST_H_

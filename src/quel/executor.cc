#include <algorithm>
#include <set>

#include "common/strings.h"
#include "quel/quel.h"

namespace mdm::quel {

using er::Database;
using er::EntityId;
using er::RelationshipInstance;
using rel::Value;
using rel::ValueType;

namespace {

/// What a range variable is bound to during evaluation.
struct Binding {
  bool is_relationship = false;
  EntityId entity = er::kInvalidEntityId;
  const RelationshipInstance* rel = nullptr;
};

struct VarInfo {
  std::string name;
  std::string type;  // entity type or relationship name
  bool is_relationship = false;
};

/// Collects the names of range variables appearing in an expression.
void CollectExprVars(const Expr& e, std::set<std::string>* out) {
  if (e.kind != Expr::Kind::kLiteral) out->insert(AsciiLower(e.var));
}

void CollectQualVars(const Qual& q, std::set<std::string>* out) {
  switch (q.kind) {
    case Qual::Kind::kCompare:
    case Qual::Kind::kIs:
      CollectExprVars(q.lhs, out);
      CollectExprVars(q.rhs, out);
      break;
    case Qual::Kind::kOrder:
      out->insert(AsciiLower(q.order_var1));
      out->insert(AsciiLower(q.order_var2));
      break;
    case Qual::Kind::kAnd:
    case Qual::Kind::kOr:
      CollectQualVars(*q.a, out);
      CollectQualVars(*q.b, out);
      break;
    case Qual::Kind::kNot:
      CollectQualVars(*q.a, out);
      break;
  }
}

/// Splits a qualification into top-level AND conjuncts.
void SplitConjuncts(const Qual* q, std::vector<const Qual*>* out) {
  if (q == nullptr) return;
  if (q->kind == Qual::Kind::kAnd) {
    SplitConjuncts(q->a.get(), out);
    SplitConjuncts(q->b.get(), out);
  } else {
    out->push_back(q);
  }
}

class Evaluator {
 public:
  Evaluator(Database* db,
            const std::map<std::string, Binding>* bindings)
      : db_(db), bindings_(bindings) {}

  Result<Value> Eval(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return e.literal;
      case Expr::Kind::kVarRef: {
        MDM_ASSIGN_OR_RETURN(const Binding* b, Lookup(e.var));
        if (b->is_relationship)
          return TypeError("relationship variable " + e.var +
                           " used as a value");
        return Value::Ref(b->entity);
      }
      case Expr::Kind::kAttrRef: {
        MDM_ASSIGN_OR_RETURN(const Binding* b, Lookup(e.var));
        if (!b->is_relationship)
          return db_->GetAttribute(b->entity, e.attr);
        // Relationship variable: role access yields the bound entity,
        // otherwise a relationship attribute.
        const er::RelationshipDef& def =
            db_->schema().relationships()[b->rel->rel_index];
        auto role = def.RoleIndex(e.attr);
        if (role.has_value()) return Value::Ref(b->rel->role_refs[*role]);
        auto attr = def.AttributeIndex(e.attr);
        if (attr.has_value()) return b->rel->attrs[*attr];
        return NotFound(StrFormat("relationship %s has no role or "
                                  "attribute %s",
                                  def.name.c_str(), e.attr.c_str()));
      }
    }
    return Internal("unreachable expr kind");
  }

  Result<bool> Test(const Qual& q) const {
    switch (q.kind) {
      case Qual::Kind::kCompare: {
        MDM_ASSIGN_OR_RETURN(Value lhs, Eval(q.lhs));
        MDM_ASSIGN_OR_RETURN(Value rhs, Eval(q.rhs));
        MDM_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
        switch (q.cmp) {
          case CompareOp::kEq: return c == 0;
          case CompareOp::kNe: return c != 0;
          case CompareOp::kLt: return c < 0;
          case CompareOp::kLe: return c <= 0;
          case CompareOp::kGt: return c > 0;
          case CompareOp::kGe: return c >= 0;
        }
        return Internal("unreachable compare op");
      }
      case Qual::Kind::kIs: {
        MDM_ASSIGN_OR_RETURN(Value lhs, Eval(q.lhs));
        MDM_ASSIGN_OR_RETURN(Value rhs, Eval(q.rhs));
        if (lhs.type() != ValueType::kRef || rhs.type() != ValueType::kRef)
          return TypeError("'is' compares entities, not values");
        return lhs.AsRef() == rhs.AsRef();
      }
      case Qual::Kind::kOrder: {
        MDM_ASSIGN_OR_RETURN(const Binding* b1, Lookup(q.order_var1));
        MDM_ASSIGN_OR_RETURN(const Binding* b2, Lookup(q.order_var2));
        if (b1->is_relationship || b2->is_relationship)
          return TypeError("ordering operators apply to entities");
        MDM_ASSIGN_OR_RETURN(std::string ordering,
                             ResolveOrderingName(q, *b1, *b2));
        switch (q.order_op) {
          case OrderOp::kBefore:
            return db_->Before(ordering, b1->entity, b2->entity);
          case OrderOp::kAfter:
            return db_->After(ordering, b1->entity, b2->entity);
          case OrderOp::kUnder:
            return db_->Under(ordering, b1->entity, b2->entity);
        }
        return Internal("unreachable order op");
      }
      case Qual::Kind::kAnd: {
        MDM_ASSIGN_OR_RETURN(bool a, Test(*q.a));
        if (!a) return false;
        return Test(*q.b);
      }
      case Qual::Kind::kOr: {
        MDM_ASSIGN_OR_RETURN(bool a, Test(*q.a));
        if (a) return true;
        return Test(*q.b);
      }
      case Qual::Kind::kNot: {
        MDM_ASSIGN_OR_RETURN(bool a, Test(*q.a));
        return !a;
      }
    }
    return Internal("unreachable qual kind");
  }

 private:
  Result<const Binding*> Lookup(const std::string& var) const {
    auto it = bindings_->find(AsciiLower(var));
    if (it == bindings_->end())
      return NotFound("unbound range variable " + var);
    return &it->second;
  }

  // `in ordering` may be omitted when exactly one ordering applies to
  // the operand types.
  Result<std::string> ResolveOrderingName(const Qual& q, const Binding& b1,
                                          const Binding& b2) const {
    if (!q.ordering.empty()) return q.ordering;
    MDM_ASSIGN_OR_RETURN(std::string t1, db_->TypeOf(b1.entity));
    MDM_ASSIGN_OR_RETURN(std::string t2, db_->TypeOf(b2.entity));
    std::vector<std::string> candidates;
    for (const er::OrderingDef& o : db_->schema().orderings()) {
      bool match =
          q.order_op == OrderOp::kUnder
              ? o.HasChildType(t1) && EqualsIgnoreCase(o.parent_type, t2)
              : o.HasChildType(t1) && o.HasChildType(t2);
      if (match) candidates.push_back(o.name);
    }
    if (candidates.empty())
      return NotFound(StrFormat("no ordering relates %s and %s",
                                t1.c_str(), t2.c_str()));
    if (candidates.size() > 1)
      return InvalidArgument(StrFormat(
          "ambiguous ordering between %s and %s; use 'in <name>'",
          t1.c_str(), t2.c_str()));
    return candidates[0];
  }

  Database* db_;
  const std::map<std::string, Binding>* bindings_;
};

/// Enumerates bindings for `vars` as nested loops, evaluating each
/// conjunct at the outermost depth where its variables are all bound
/// (unless `pushdown` is false, in which case everything is evaluated at
/// the innermost level). Calls `emit` for every qualifying full binding.
class NestedLoopJoin {
 public:
  NestedLoopJoin(Database* db, std::vector<VarInfo> vars,
                 const Qual* qual, bool pushdown)
      : db_(db), vars_(std::move(vars)) {
    SplitConjuncts(qual, &conjuncts_);
    conjunct_depth_.resize(conjuncts_.size());
    for (size_t c = 0; c < conjuncts_.size(); ++c) {
      std::set<std::string> used;
      CollectQualVars(*conjuncts_[c], &used);
      size_t depth = 0;
      if (pushdown) {
        for (size_t v = 0; v < vars_.size(); ++v) {
          if (used.count(AsciiLower(vars_[v].name)) != 0) depth = v + 1;
        }
        // Constant conjunct: evaluate before any loops.
      } else {
        depth = vars_.size();
      }
      conjunct_depth_[c] = depth;
    }
  }

  Status Run(const std::function<Status(
                 const std::map<std::string, Binding>&)>& emit) {
    emit_ = &emit;
    return Descend(0);
  }

 private:
  Status Descend(size_t depth) {
    // Evaluate conjuncts that became fully bound at this depth.
    Evaluator eval(db_, &bindings_);
    for (size_t c = 0; c < conjuncts_.size(); ++c) {
      if (conjunct_depth_[c] != depth) continue;
      MDM_ASSIGN_OR_RETURN(bool pass, eval.Test(*conjuncts_[c]));
      if (!pass) return Status::OK();
    }
    if (depth == vars_.size()) return (*emit_)(bindings_);
    const VarInfo& var = vars_[depth];
    const std::string key = AsciiLower(var.name);
    Status inner;
    if (var.is_relationship) {
      MDM_RETURN_IF_ERROR(db_->ForEachRelationship(
          var.type, [&](const RelationshipInstance& ri) {
            Binding b;
            b.is_relationship = true;
            b.rel = &ri;
            bindings_[key] = b;
            inner = Descend(depth + 1);
            return inner.ok();
          }));
    } else {
      MDM_RETURN_IF_ERROR(db_->ForEachEntity(var.type, [&](EntityId id) {
        Binding b;
        b.entity = id;
        bindings_[key] = b;
        inner = Descend(depth + 1);
        return inner.ok();
      }));
    }
    bindings_.erase(key);
    return inner;
  }

  Database* db_;
  std::vector<VarInfo> vars_;
  std::vector<const Qual*> conjuncts_;
  std::vector<size_t> conjunct_depth_;
  std::map<std::string, Binding> bindings_;
  const std::function<Status(const std::map<std::string, Binding>&)>* emit_ =
      nullptr;
};

/// Aggregate accumulator for one target.
struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  Value min_v;
  Value max_v;

  Status Feed(const Value& v) {
    ++count;
    if (v.is_null()) return Status::OK();
    if (v.type() == ValueType::kInt) {
      isum += v.AsInt();
      sum += static_cast<double>(v.AsInt());
    } else if (v.type() == ValueType::kFloat) {
      all_int = false;
      sum += v.AsFloat();
    }
    if (min_v.is_null()) {
      min_v = v;
      max_v = v;
    } else {
      MDM_ASSIGN_OR_RETURN(int cmin, v.Compare(min_v));
      if (cmin < 0) min_v = v;
      MDM_ASSIGN_OR_RETURN(int cmax, v.Compare(max_v));
      if (cmax > 0) max_v = v;
    }
    return Status::OK();
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount: return Value::Int(static_cast<int64_t>(count));
      case AggFn::kSum:
        return all_int ? Value::Int(isum) : Value::Float(sum);
      case AggFn::kAvg:
        return Value::Float(count == 0 ? 0.0 : sum / count);
      case AggFn::kMin: return min_v;
      case AggFn::kMax: return max_v;
      case AggFn::kNone: break;
    }
    return Value::Null();
  }
};

}  // namespace

std::string ResultSet::ToString() const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i)
    widths[i] = columns[i].size();
  for (const auto& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line[i].size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i)
    out += " " + pad(columns[i], widths[i]) + " |";
  out += "\n|";
  for (size_t i = 0; i < columns.size(); ++i)
    out += std::string(widths[i] + 2, '-') + "|";
  out += "\n";
  for (const auto& line : cells) {
    out += "|";
    for (size_t i = 0; i < line.size(); ++i)
      out += " " + pad(line[i], widths[i]) + " |";
    out += "\n";
  }
  if (columns.empty())
    out = StrFormat("(%llu rows affected)\n", (unsigned long long)affected);
  return out;
}

Result<ResultSet> QuelSession::Execute(const std::string& script) {
  return Run(script, /*pushdown=*/true);
}

Result<ResultSet> QuelSession::ExecuteNaive(const std::string& script) {
  return Run(script, /*pushdown=*/false);
}

Result<ResultSet> QuelSession::Run(const std::string& script, bool pushdown) {
  MDM_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseQuel(script));
  ResultSet last;
  for (const Statement& stmt : stmts) {
    switch (stmt.kind) {
      case Statement::Kind::kRange: {
        // `range of v1, v2 is TYPE`
        bool is_rel =
            db_->schema().FindRelationship(stmt.range_type) != nullptr;
        if (!is_rel &&
            db_->schema().FindEntityType(stmt.range_type) == nullptr)
          return NotFound("no entity type or relationship named " +
                          stmt.range_type);
        for (const std::string& v : stmt.range_vars)
          ranges_[AsciiLower(v)] = stmt.range_type;
        last = ResultSet{};
        break;
      }
      case Statement::Kind::kAppend: {
        MDM_ASSIGN_OR_RETURN(EntityId id,
                             db_->CreateEntity(stmt.append_type));
        std::map<std::string, Binding> empty;
        Evaluator eval(db_, &empty);
        for (const auto& [attr, expr] : stmt.assignments) {
          MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(expr));
          MDM_RETURN_IF_ERROR(db_->SetAttribute(id, attr, std::move(v)));
        }
        last = ResultSet{};
        last.affected = 1;
        break;
      }
      case Statement::Kind::kRetrieve:
      case Statement::Kind::kReplace:
      case Statement::Kind::kDelete: {
        MDM_ASSIGN_OR_RETURN(last, RunQuery(stmt, pushdown));
        break;
      }
    }
  }
  return last;
}

// Defined out of line to keep Run readable; declared here as a private
// helper through an anonymous-namespace friend pattern is overkill, so it
// is a member in spirit: we re-open the class via a static helper.
Result<ResultSet> RunQueryImpl(Database* db,
                               const std::map<std::string, std::string>&
                                   session_ranges,
                               const Statement& stmt, bool pushdown);

Result<ResultSet> QuelSession::RunQuery(const Statement& stmt,
                                        bool pushdown) {
  return RunQueryImpl(db_, ranges_, stmt, pushdown);
}

Result<ResultSet> RunQueryImpl(
    Database* db, const std::map<std::string, std::string>& session_ranges,
    const Statement& stmt, bool pushdown) {
  // Collect the variables this statement uses.
  std::set<std::string> used;
  for (const Target& t : stmt.targets) CollectExprVars(t.expr, &used);
  if (stmt.qual != nullptr) CollectQualVars(*stmt.qual, &used);
  if (!stmt.update_var.empty()) used.insert(AsciiLower(stmt.update_var));
  for (const auto& [attr, expr] : stmt.assignments)
    CollectExprVars(expr, &used);

  // Resolve each to a type: explicit range declaration, or the implicit
  // same-named range variable (footnote 6).
  std::vector<VarInfo> vars;
  for (const std::string& name : used) {
    VarInfo info;
    info.name = name;
    auto it = session_ranges.find(name);
    if (it != session_ranges.end()) {
      info.type = it->second;
    } else if (db->schema().FindEntityType(name) != nullptr ||
               db->schema().FindRelationship(name) != nullptr) {
      info.type = name;
    } else {
      return NotFound("undeclared range variable " + name);
    }
    info.is_relationship =
        db->schema().FindRelationship(info.type) != nullptr;
    vars.push_back(std::move(info));
  }

  // Join-order heuristic: bind variables that appear in low-arity
  // conjuncts first, so selective single-variable predicates (e.g.
  // `n2.name = 3`) prune the nested loops before wider joins run.
  if (pushdown && stmt.qual != nullptr) {
    std::vector<const Qual*> conjuncts;
    SplitConjuncts(stmt.qual.get(), &conjuncts);
    auto rank = [&conjuncts](const VarInfo& v) {
      size_t best = SIZE_MAX;
      for (const Qual* c : conjuncts) {
        std::set<std::string> used_vars;
        CollectQualVars(*c, &used_vars);
        if (used_vars.count(AsciiLower(v.name)) != 0)
          best = std::min(best, used_vars.size());
      }
      return best;
    };
    std::stable_sort(vars.begin(), vars.end(),
                     [&rank](const VarInfo& a, const VarInfo& b) {
                       return rank(a) < rank(b);
                     });
  }

  ResultSet rs;
  bool has_agg = false;
  bool has_plain = false;
  bool has_by = false;
  for (const Target& t : stmt.targets) {
    (t.agg != AggFn::kNone ? has_agg : has_plain) = true;
    if (!t.by.empty()) has_by = true;
    rs.columns.push_back(t.label);
  }
  if (has_agg && has_plain)
    return InvalidArgument(
        "mixed aggregate and non-aggregate targets are not supported");
  if (has_by && stmt.targets.size() != 1)
    return InvalidArgument(
        "a grouped aggregate (aggfn(x by y)) must be the only target");
  if (has_by) {
    // Columns: one per by-expression, then the aggregate.
    rs.columns.clear();
    for (const Expr& by_expr : stmt.targets[0].by) {
      rs.columns.push_back(by_expr.kind == Expr::Kind::kAttrRef
                               ? by_expr.var + "." + by_expr.attr
                               : (by_expr.kind == Expr::Kind::kVarRef
                                      ? by_expr.var
                                      : "by"));
    }
    rs.columns.push_back(stmt.targets[0].label);
  }

  std::vector<AggState> agg_states(stmt.targets.size());
  // Grouped-aggregate accumulation, keyed by encoded by-values.
  std::vector<std::string> group_order;
  std::map<std::string, std::pair<std::vector<Value>, AggState>> groups;
  // Deferred mutations (applied after enumeration so iteration order is
  // never invalidated).
  std::vector<std::pair<EntityId, std::vector<std::pair<std::string, Value>>>>
      replacements;
  std::set<EntityId> deletions;

  NestedLoopJoin join(db, vars, stmt.qual.get(), pushdown);
  MDM_RETURN_IF_ERROR(join.Run([&](const std::map<std::string, Binding>&
                                       bindings) -> Status {
    Evaluator eval(db, &bindings);
    switch (stmt.kind) {
      case Statement::Kind::kRetrieve: {
        if (has_by) {
          const Target& t = stmt.targets[0];
          std::vector<Value> by_values;
          ByteWriter key;
          for (const Expr& by_expr : t.by) {
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(by_expr));
            v.Encode(&key);
            by_values.push_back(std::move(v));
          }
          std::string encoded(
              reinterpret_cast<const char*>(key.data().data()), key.size());
          auto [it, inserted] = groups.try_emplace(
              encoded, std::move(by_values), AggState{});
          if (inserted) group_order.push_back(encoded);
          if (t.agg == AggFn::kCount && t.expr.kind == Expr::Kind::kVarRef) {
            ++it->second.second.count;
          } else {
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(t.expr));
            MDM_RETURN_IF_ERROR(it->second.second.Feed(v));
          }
          return Status::OK();
        }
        if (has_agg) {
          for (size_t i = 0; i < stmt.targets.size(); ++i) {
            const Target& t = stmt.targets[i];
            if (t.agg == AggFn::kCount &&
                t.expr.kind == Expr::Kind::kVarRef) {
              ++agg_states[i].count;  // count(var) counts rows
              continue;
            }
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(t.expr));
            MDM_RETURN_IF_ERROR(agg_states[i].Feed(v));
          }
        } else {
          std::vector<Value> row;
          for (const Target& t : stmt.targets) {
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(t.expr));
            row.push_back(std::move(v));
          }
          rs.rows.push_back(std::move(row));
        }
        return Status::OK();
      }
      case Statement::Kind::kReplace: {
        auto it = bindings.find(AsciiLower(stmt.update_var));
        if (it == bindings.end() || it->second.is_relationship)
          return InvalidArgument("replace target must be an entity "
                                 "range variable");
        std::vector<std::pair<std::string, Value>> sets;
        for (const auto& [attr, expr] : stmt.assignments) {
          MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(expr));
          sets.emplace_back(attr, std::move(v));
        }
        replacements.emplace_back(it->second.entity, std::move(sets));
        return Status::OK();
      }
      case Statement::Kind::kDelete: {
        auto it = bindings.find(AsciiLower(stmt.update_var));
        if (it == bindings.end() || it->second.is_relationship)
          return InvalidArgument("delete target must be an entity "
                                 "range variable");
        deletions.insert(it->second.entity);
        return Status::OK();
      }
      default:
        return Internal("unexpected statement kind in query runner");
    }
  }));

  if (stmt.kind == Statement::Kind::kRetrieve && stmt.unique) {
    // `retrieve unique`: drop duplicate rows, preserving first-seen
    // order. Rows are compared by serialized form.
    std::set<std::string> seen;
    std::vector<std::vector<Value>> deduped;
    for (auto& row : rs.rows) {
      ByteWriter key;
      for (const Value& v : row) v.Encode(&key);
      std::string encoded(reinterpret_cast<const char*>(key.data().data()),
                          key.size());
      if (seen.insert(encoded).second) deduped.push_back(std::move(row));
    }
    rs.rows = std::move(deduped);
  }
  if (stmt.kind == Statement::Kind::kRetrieve && has_by) {
    for (const std::string& key : group_order) {
      auto& [by_values, state] = groups.at(key);
      std::vector<Value> row = by_values;
      row.push_back(state.Finish(stmt.targets[0].agg));
      rs.rows.push_back(std::move(row));
    }
  } else if (stmt.kind == Statement::Kind::kRetrieve && has_agg) {
    std::vector<Value> row;
    for (size_t i = 0; i < stmt.targets.size(); ++i)
      row.push_back(agg_states[i].Finish(stmt.targets[i].agg));
    rs.rows.push_back(std::move(row));
  }
  if (stmt.kind == Statement::Kind::kRetrieve && !stmt.sort_keys.empty()) {
    // Resolve sort labels to column indexes up front.
    std::vector<std::pair<size_t, bool>> order;  // (column, descending)
    for (const SortKey& key : stmt.sort_keys) {
      size_t col = rs.columns.size();
      for (size_t i = 0; i < rs.columns.size(); ++i)
        if (EqualsIgnoreCase(rs.columns[i], key.label)) col = i;
      if (col == rs.columns.size())
        return NotFound("sort by references no target named " + key.label);
      order.emplace_back(col, key.descending);
    }
    std::stable_sort(
        rs.rows.begin(), rs.rows.end(),
        [&order](const std::vector<Value>& a, const std::vector<Value>& b) {
          for (const auto& [col, desc] : order) {
            Result<int> c = a[col].Compare(b[col]);
            int cmp = c.ok() ? *c : 0;  // incomparable: treat as equal
            if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
          }
          return false;
        });
  }
  for (const auto& [id, sets] : replacements) {
    for (const auto& [attr, v] : sets)
      MDM_RETURN_IF_ERROR(db->SetAttribute(id, attr, v));
  }
  for (EntityId id : deletions) MDM_RETURN_IF_ERROR(db->DeleteEntity(id));
  if (stmt.kind == Statement::Kind::kReplace)
    rs.affected = replacements.size();
  if (stmt.kind == Statement::Kind::kDelete) rs.affected = deletions.size();
  return rs;
}

}  // namespace mdm::quel

#include <algorithm>
#include <chrono>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "quel/planner.h"
#include "quel/quel.h"

namespace mdm::quel {

using er::Database;
using er::EntityId;
using er::RelationshipInstance;
using rel::Value;
using rel::ValueType;

namespace {

/// Scripts cached per session; cleared wholesale on overflow.
constexpr size_t kParseCacheCapacity = 128;

/// Process-wide mirrors of the per-session ExecStats counters.
struct QuelCounters {
  obs::Counter* statements;
  obs::Counter* rows_scanned;
  obs::Counter* conjuncts;
  obs::Counter* parse_cache_hits;
  static const QuelCounters& Get() {
    static QuelCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_quel_statements_total", "QUEL statements executed"),
        obs::Registry::Global()->GetCounter(
            "mdm_quel_rows_scanned_total",
            "Range-variable bindings enumerated by nested-loop joins"),
        obs::Registry::Global()->GetCounter(
            "mdm_quel_conjuncts_total",
            "Pushed-down conjunct tests evaluated"),
        obs::Registry::Global()->GetCounter(
            "mdm_quel_parse_cache_hits_total",
            "Scripts answered from the session parse cache")};
    return c;
  }
};

/// How each statement acquired (or avoided) the database latch — the
/// observable half of the snapshot-read contract: a read-heavy workload
/// should show snapshot_reads rising while exclusive stays flat.
struct LatchCounters {
  obs::Counter* exclusive;
  obs::Counter* shared;
  obs::Counter* snapshot_reads;
  static const LatchCounters& Get() {
    static LatchCounters c = {
        obs::Registry::Global()->GetCounter(
            "mdm_quel_exclusive_latch_total",
            "Statements executed under the exclusive db latch"),
        obs::Registry::Global()->GetCounter(
            "mdm_quel_shared_latch_total",
            "Read statements that fell back to the shared db latch"),
        obs::Registry::Global()->GetCounter(
            "mdm_quel_snapshot_reads_total",
            "Read statements served from a pinned snapshot (no latch)")};
    return c;
  }
};

/// Pre-resolved metrics for the per-statement span, so the hot Execute
/// path skips the registry lookup.
obs::Histogram* StatementDuration() {
  static obs::Histogram* h = obs::Registry::Global()->GetHistogram(
      "mdm_span_duration_ns{span=\"quel.statement\"}",
      "Inclusive span latency in nanoseconds");
  return h;
}

obs::Counter* StatementSelf() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_span_self_ns_total{span=\"quel.statement\"}",
      "Span latency excluding child spans");
  return c;
}

/// Pre-resolved metrics for the per-probe span on index-backed loops.
obs::Histogram* IndexProbeDuration() {
  static obs::Histogram* h = obs::Registry::Global()->GetHistogram(
      "mdm_span_duration_ns{span=\"quel.index_probe\"}",
      "Inclusive span latency in nanoseconds");
  return h;
}

obs::Counter* IndexProbeSelf() {
  static obs::Counter* c = obs::Registry::Global()->GetCounter(
      "mdm_span_self_ns_total{span=\"quel.index_probe\"}",
      "Span latency excluding child spans");
  return c;
}

/// What a range variable is bound to during evaluation.
struct Binding {
  bool is_relationship = false;
  EntityId entity = er::kInvalidEntityId;
  const RelationshipInstance* rel = nullptr;
};

class Evaluator {
 public:
  Evaluator(Database* db, const std::map<std::string, Binding>* bindings,
            const std::map<const Qual*, er::OrderingHandle>* order_handles =
                nullptr)
      : db_(db), bindings_(bindings), order_handles_(order_handles) {}

  Result<Value> Eval(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return e.literal;
      case Expr::Kind::kVarRef: {
        MDM_ASSIGN_OR_RETURN(const Binding* b, Lookup(e.var));
        if (b->is_relationship)
          return TypeError("relationship variable " + e.var +
                           " used as a value");
        return Value::Ref(b->entity);
      }
      case Expr::Kind::kAttrRef: {
        MDM_ASSIGN_OR_RETURN(const Binding* b, Lookup(e.var));
        if (!b->is_relationship)
          return db_->GetAttribute(b->entity, e.attr);
        // Relationship variable: role access yields the bound entity,
        // otherwise a relationship attribute.
        const er::RelationshipDef& def =
            db_->schema().relationships()[b->rel->rel_index];
        auto role = def.RoleIndex(e.attr);
        if (role.has_value()) return Value::Ref(b->rel->role_refs[*role]);
        auto attr = def.AttributeIndex(e.attr);
        if (attr.has_value()) return b->rel->attrs[*attr];
        return NotFound(StrFormat("relationship %s has no role or "
                                  "attribute %s",
                                  def.name.c_str(), e.attr.c_str()));
      }
    }
    return Internal("unreachable expr kind");
  }

  Result<bool> Test(const Qual& q) const {
    switch (q.kind) {
      case Qual::Kind::kCompare: {
        MDM_ASSIGN_OR_RETURN(Value lhs, Eval(q.lhs));
        MDM_ASSIGN_OR_RETURN(Value rhs, Eval(q.rhs));
        MDM_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
        switch (q.cmp) {
          case CompareOp::kEq: return c == 0;
          case CompareOp::kNe: return c != 0;
          case CompareOp::kLt: return c < 0;
          case CompareOp::kLe: return c <= 0;
          case CompareOp::kGt: return c > 0;
          case CompareOp::kGe: return c >= 0;
        }
        return Internal("unreachable compare op");
      }
      case Qual::Kind::kIs: {
        MDM_ASSIGN_OR_RETURN(Value lhs, Eval(q.lhs));
        MDM_ASSIGN_OR_RETURN(Value rhs, Eval(q.rhs));
        // A null operand designates no entity, so `is` is simply false
        // — NOT a TypeError. This must agree with the index-probe path
        // (planner.h), which never enumerates null-valued rows: were
        // null an error here, an index probe would mask it and ablation
        // equivalence would break.
        if (lhs.is_null() || rhs.is_null()) return false;
        if (lhs.type() != ValueType::kRef || rhs.type() != ValueType::kRef)
          return TypeError("'is' compares entities, not values");
        return lhs.AsRef() == rhs.AsRef();
      }
      case Qual::Kind::kOrder: {
        MDM_ASSIGN_OR_RETURN(const Binding* b1, Lookup(q.order_var1));
        MDM_ASSIGN_OR_RETURN(const Binding* b2, Lookup(q.order_var2));
        if (b1->is_relationship || b2->is_relationship)
          return TypeError("ordering operators apply to entities");
        // Planned statements carry a pre-resolved handle; the slow
        // per-row name resolution remains only for un-planned callers.
        if (order_handles_ != nullptr) {
          auto it = order_handles_->find(&q);
          if (it != order_handles_->end())
            return TestOrder(q.order_op, it->second, b1->entity, b2->entity);
        }
        MDM_ASSIGN_OR_RETURN(std::string name,
                             ResolveOrderingName(q, *b1, *b2));
        MDM_ASSIGN_OR_RETURN(er::OrderingHandle h,
                             db_->ResolveOrderingHandle(name));
        return TestOrder(q.order_op, h, b1->entity, b2->entity);
      }
      case Qual::Kind::kAnd: {
        MDM_ASSIGN_OR_RETURN(bool a, Test(*q.a));
        if (!a) return false;
        return Test(*q.b);
      }
      case Qual::Kind::kOr: {
        MDM_ASSIGN_OR_RETURN(bool a, Test(*q.a));
        if (a) return true;
        return Test(*q.b);
      }
      case Qual::Kind::kNot: {
        MDM_ASSIGN_OR_RETURN(bool a, Test(*q.a));
        return !a;
      }
    }
    return Internal("unreachable qual kind");
  }

 private:
  Result<const Binding*> Lookup(const std::string& var) const {
    auto it = bindings_->find(AsciiLower(var));
    if (it == bindings_->end())
      return NotFound("unbound range variable " + var);
    return &it->second;
  }

  Result<bool> TestOrder(OrderOp op, er::OrderingHandle h, EntityId a,
                         EntityId b) const {
    switch (op) {
      case OrderOp::kBefore: return db_->Before(h, a, b);
      case OrderOp::kAfter: return db_->After(h, a, b);
      case OrderOp::kUnder: return db_->Under(h, a, b);
    }
    return Internal("unreachable order op");
  }

  // `in ordering` may be omitted when exactly one ordering applies to
  // the operand types.
  Result<std::string> ResolveOrderingName(const Qual& q, const Binding& b1,
                                          const Binding& b2) const {
    if (!q.ordering.empty()) return q.ordering;
    MDM_ASSIGN_OR_RETURN(std::string t1, db_->TypeOf(b1.entity));
    MDM_ASSIGN_OR_RETURN(std::string t2, db_->TypeOf(b2.entity));
    std::vector<std::string> candidates;
    for (const er::OrderingDef& o : db_->schema().orderings()) {
      bool match =
          q.order_op == OrderOp::kUnder
              ? o.HasChildType(t1) && EqualsIgnoreCase(o.parent_type, t2)
              : o.HasChildType(t1) && o.HasChildType(t2);
      if (match) candidates.push_back(o.name);
    }
    if (candidates.empty())
      return NotFound(StrFormat("no ordering relates %s and %s",
                                t1.c_str(), t2.c_str()));
    if (candidates.size() > 1)
      return InvalidArgument(StrFormat(
          "ambiguous ordering between %s and %s; use 'in <name>'",
          t1.c_str(), t2.c_str()));
    return candidates[0];
  }

  Database* db_;
  const std::map<std::string, Binding>* bindings_;
  const std::map<const Qual*, er::OrderingHandle>* order_handles_;
};

/// Enumerates bindings for the plan's variables as nested loops,
/// evaluating each conjunct at its planned depth. Calls `emit` for every
/// qualifying full binding. `stats` (optional) accumulates row/conjunct
/// counters; `actual` (optional, `explain analyze`) records per-depth
/// call/pass counts and inclusive timings — when null the join pays no
/// timing overhead.
class NestedLoopJoin {
 public:
  NestedLoopJoin(Database* db, const Plan* plan, ExecCounters* stats,
                 AnalyzeStats* actual = nullptr)
      : db_(db), plan_(plan), stats_(stats), actual_(actual) {}

  Status Run(const std::function<Status(
                 const std::map<std::string, Binding>&)>& emit) {
    emit_ = &emit;
    return Descend(0);
  }

 private:
  Status Descend(size_t depth) {
    if (actual_ == nullptr) return DescendImpl(depth);
    ++actual_->calls[depth];
    auto t0 = std::chrono::steady_clock::now();
    Status s = DescendImpl(depth);
    actual_->inclusive_ns[depth] += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return s;
  }

  Status DescendImpl(size_t depth) {
    // Evaluate conjuncts that became fully bound at this depth.
    Evaluator eval(db_, &bindings_, &plan_->order_handles);
    for (const PlannedConjunct& c : plan_->conjuncts) {
      if (c.depth != depth) continue;
      if (stats_ != nullptr) {
        stats_->conjuncts_evaluated.fetch_add(1, std::memory_order_relaxed);
        QuelCounters::Get().conjuncts->Inc();
      }
      MDM_ASSIGN_OR_RETURN(bool pass, eval.Test(*c.qual));
      if (!pass) return Status::OK();
    }
    if (actual_ != nullptr) ++actual_->passed[depth];
    if (depth == plan_->vars.size()) return (*emit_)(bindings_);
    const PlannedVar& var = plan_->vars[depth];
    const std::string& key = var.name;  // already lowercased by the planner
    Status inner;
    if (var.is_relationship) {
      MDM_RETURN_IF_ERROR(db_->ForEachRelationship(
          var.type, [&](const RelationshipInstance& ri) {
            if (stats_ != nullptr) {
              stats_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
              QuelCounters::Get().rows_scanned->Inc();
            }
            Binding b;
            b.is_relationship = true;
            b.rel = &ri;
            bindings_[key] = b;
            inner = Descend(depth + 1);
            return inner.ok();
          }));
    } else {
      bool probed = false;
      if (var.index != nullptr) {
        // Index-backed loop: evaluate the key over the outer bindings
        // and enumerate only matching candidates. A null key falls
        // through to the scan (nulls are never indexed, but
        // Value::Compare treats null = null as a match, so only the
        // scan path sees those rows).
        MDM_ASSIGN_OR_RETURN(Value probe_key, eval.Eval(*var.index_key));
        if (!probe_key.is_null()) {
          probed = true;
          std::vector<EntityId> candidates;
          {
            obs::Span span("quel.index_probe", IndexProbeDuration(),
                           IndexProbeSelf());
            candidates = db_->IndexLookup(*var.index, probe_key);
          }
          for (EntityId id : candidates) {
            if (stats_ != nullptr) {
              stats_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
              QuelCounters::Get().rows_scanned->Inc();
            }
            Binding b;
            b.entity = id;
            bindings_[key] = b;
            inner = Descend(depth + 1);
            if (!inner.ok()) break;
          }
        }
      }
      if (!probed) {
        MDM_RETURN_IF_ERROR(db_->ForEachEntity(var.type, [&](EntityId id) {
          if (stats_ != nullptr) {
            stats_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
            QuelCounters::Get().rows_scanned->Inc();
          }
          Binding b;
          b.entity = id;
          bindings_[key] = b;
          inner = Descend(depth + 1);
          return inner.ok();
        }));
      }
    }
    bindings_.erase(key);
    return inner;
  }

  Database* db_;
  const Plan* plan_;
  ExecCounters* stats_;
  AnalyzeStats* actual_;
  std::map<std::string, Binding> bindings_;
  const std::function<Status(const std::map<std::string, Binding>&)>* emit_ =
      nullptr;
};

/// Aggregate accumulator for one target.
struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  Value min_v;
  Value max_v;

  Status Feed(const Value& v) {
    ++count;
    if (v.is_null()) return Status::OK();
    if (v.type() == ValueType::kInt) {
      isum += v.AsInt();
      sum += static_cast<double>(v.AsInt());
    } else if (v.type() == ValueType::kFloat) {
      all_int = false;
      sum += v.AsFloat();
    }
    if (min_v.is_null()) {
      min_v = v;
      max_v = v;
    } else {
      MDM_ASSIGN_OR_RETURN(int cmin, v.Compare(min_v));
      if (cmin < 0) min_v = v;
      MDM_ASSIGN_OR_RETURN(int cmax, v.Compare(max_v));
      if (cmax > 0) max_v = v;
    }
    return Status::OK();
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount: return Value::Int(static_cast<int64_t>(count));
      case AggFn::kSum:
        return all_int ? Value::Int(isum) : Value::Float(sum);
      case AggFn::kAvg:
        return Value::Float(count == 0 ? 0.0 : sum / count);
      case AggFn::kMin: return min_v;
      case AggFn::kMax: return max_v;
      case AggFn::kNone: break;
    }
    return Value::Null();
  }
};

/// Deep copy of a qualification tree. Needed when a statement from the
/// (shared, immutable) parse cache contributes its qual to a synthetic
/// statement: Qual holds unique_ptr children and is not copyable.
std::unique_ptr<Qual> CloneQual(const Qual& q) {
  auto out = std::make_unique<Qual>();
  out->kind = q.kind;
  out->lhs = q.lhs;
  out->rhs = q.rhs;
  out->cmp = q.cmp;
  out->order_op = q.order_op;
  out->order_var1 = q.order_var1;
  out->order_var2 = q.order_var2;
  out->ordering = q.ordering;
  if (q.a != nullptr) out->a = CloneQual(*q.a);
  if (q.b != nullptr) out->b = CloneQual(*q.b);
  return out;
}

}  // namespace

// Defined at the bottom of this file; the append-under path runs a
// synthetic retrieve through it to bind its parent variable.
Result<ResultSet> RunQueryImpl(Database* db,
                               const std::map<std::string, std::string>&
                                   session_ranges,
                               const Statement& stmt, bool pushdown,
                               ExecCounters* stats,
                               StatementActuals* actuals_out);

std::optional<size_t> ResultSet::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i)
    if (EqualsIgnoreCase(columns[i], name)) return i;
  return std::nullopt;
}

const Value& ResultSet::At(size_t row, size_t col) const {
  static const Value kNull = Value::Null();
  if (row >= rows.size() || col >= rows[row].size()) return kNull;
  return rows[row][col];
}

const Value& ResultSet::RowRef::operator[](std::string_view col) const {
  std::optional<size_t> idx = rs_->ColumnIndex(col);
  return rs_->At(row_, idx.value_or(SIZE_MAX));
}

std::string ExecStats::ToString() const {
  return StrFormat(
      "statements: %llu\n"
      "rows scanned: %llu\n"
      "conjuncts evaluated: %llu\n"
      "ordering index hits: %llu\n"
      "ordering index misses: %llu\n"
      "plan cache hits: %llu\n",
      (unsigned long long)statements, (unsigned long long)rows_scanned,
      (unsigned long long)conjuncts_evaluated,
      (unsigned long long)index_hits, (unsigned long long)index_misses,
      (unsigned long long)plan_cache_hits);
}

std::string ResultSet::ToString() const {
  if (!explain.empty()) return explain;
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i)
    widths[i] = columns[i].size();
  for (const auto& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line[i].size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i)
    out += " " + pad(columns[i], widths[i]) + " |";
  out += "\n|";
  for (size_t i = 0; i < columns.size(); ++i)
    out += std::string(widths[i] + 2, '-') + "|";
  out += "\n";
  for (const auto& line : cells) {
    out += "|";
    for (size_t i = 0; i < line.size(); ++i)
      out += " " + pad(line[i], widths[i]) + " |";
    out += "\n";
  }
  if (columns.empty())
    out = StrFormat("(%llu rows affected)\n", (unsigned long long)affected);
  return out;
}

Result<ResultSet> QuelSession::Execute(const std::string& script) {
  return Run(script, /*pushdown=*/true);
}

Result<ResultSet> QuelSession::ExecuteNaive(const std::string& script) {
  return Run(script, /*pushdown=*/false);
}

Result<ResultSet> QuelSession::ExecutePreLocked(const std::string& script) {
  return Run(script, /*pushdown=*/true, LatchMode::kPreLocked);
}

Result<ResultSet> QuelSession::Run(const std::string& script, bool pushdown,
                                   LatchMode mode) {
  // Statement cache: scripts are re-run verbatim by interactive sessions
  // and benchmarks, so a text-keyed cache skips the lexer and parser.
  // Parsing is pure (no database access), so doing it under the session
  // mutex keeps concurrent callers of one shared session correct.
  std::shared_ptr<const std::vector<Statement>> stmts;
  std::map<std::string, std::string> ranges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto cached = parse_cache_.find(script);
    if (cached != parse_cache_.end()) {
      stmts = cached->second;
      stats_.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
      QuelCounters::Get().parse_cache_hits->Inc();
    } else {
      MDM_ASSIGN_OR_RETURN(std::vector<Statement> parsed, ParseQuel(script));
      stmts =
          std::make_shared<const std::vector<Statement>>(std::move(parsed));
      if (parse_cache_.size() >= kParseCacheCapacity) parse_cache_.clear();
      parse_cache_.emplace(script, stmts);
    }
    ranges = ranges_;
  }

  const er::OrderingIndexStats before = db_->ordering_index_stats();
  ResultSet last;
  for (const Statement& stmt : *stmts) {
    obs::Span span("quel.statement", StatementDuration(), StatementSelf());
    stats_.statements.fetch_add(1, std::memory_order_relaxed);
    QuelCounters::Get().statements->Inc();
    const bool mutates = stmt.kind == Statement::Kind::kAppend ||
                         stmt.kind == Statement::Kind::kReplace ||
                         stmt.kind == Statement::Kind::kDelete;
    if (mode == LatchMode::kPreLocked) {
      // Batch path: the caller holds the exclusive latch and an open
      // statement group around the whole batch.
      MDM_RETURN_IF_ERROR(RunStatement(stmt, pushdown, &ranges, &last));
    } else if (mutates) {
      // One statement = one statement group = one WAL transaction:
      // crash-atomic, published before the latch drops, and the
      // group-commit fsync wait happens OUTSIDE the latch so concurrent
      // committers batch into one fsync instead of serializing on it.
      Status run;
      Result<uint64_t> commit_lsn = 0;
      {
        std::unique_lock<std::shared_mutex> write_latch(db_->latch());
        LatchCounters::Get().exclusive->Inc();
        db_->BeginStatementGroup();
        run = RunStatement(stmt, pushdown, &ranges, &last);
        // On error the group still ends: the logged prefix commits
        // (redo-only WAL — applied effects cannot be unapplied) and the
        // snapshot is published, keeping state and journal agreed.
        commit_lsn = db_->EndStatementGroup();
      }
      MDM_RETURN_IF_ERROR(run);
      MDM_RETURN_IF_ERROR(commit_lsn.status());
      MDM_RETURN_IF_ERROR(db_->WaitDurable(*commit_lsn));
    } else {
      // Read-only statement: serve from a pinned snapshot with no db
      // latch when possible, else fall back to the shared latch.
      std::shared_ptr<const er::Tables> snap = db_->TryPinSnapshot();
      if (snap != nullptr) {
        LatchCounters::Get().snapshot_reads->Inc();
        er::SnapshotReadScope scope(db_, std::move(snap));
        MDM_RETURN_IF_ERROR(RunStatement(stmt, pushdown, &ranges, &last));
      } else {
        std::shared_lock<std::shared_mutex> read_latch(db_->latch());
        LatchCounters::Get().shared->Inc();
        MDM_RETURN_IF_ERROR(RunStatement(stmt, pushdown, &ranges, &last));
      }
    }
  }
  // Attribute this script's ordering-index activity to the session
  // (best-effort when other sessions run concurrently; see ExecStats).
  const er::OrderingIndexStats after = db_->ordering_index_stats();
  stats_.index_hits.fetch_add(
      (after.rank_hits - before.rank_hits) +
          (after.interval_hits - before.interval_hits),
      std::memory_order_relaxed);
  stats_.index_misses.fetch_add(
      (after.rank_rebuilds - before.rank_rebuilds) +
          (after.interval_rebuilds - before.interval_rebuilds) +
          (after.linear_scans - before.linear_scans),
      std::memory_order_relaxed);
  return last;
}

Status QuelSession::RunStatement(const Statement& stmt, bool pushdown,
                                 std::map<std::string, std::string>* ranges,
                                 ResultSet* out) {
  ResultSet& last = *out;
  switch (stmt.kind) {
      case Statement::Kind::kRange: {
        // `range of v1, v2 is TYPE`
        bool is_rel =
            db_->schema().FindRelationship(stmt.range_type) != nullptr;
        if (!is_rel &&
            db_->schema().FindEntityType(stmt.range_type) == nullptr)
          return NotFound("no entity type or relationship named " +
                          stmt.range_type);
        std::lock_guard<std::mutex> lock(mu_);
        for (const std::string& v : stmt.range_vars) {
          ranges_[AsciiLower(v)] = stmt.range_type;
          (*ranges)[AsciiLower(v)] = stmt.range_type;
        }
        last = ResultSet{};
        break;
      }
      case Statement::Kind::kAppend: {
        if (!stmt.append_parent_var.empty()) {
          // `append ... under v in ordering [where qual]`: bind v via a
          // synthetic retrieve (the exclusive latch is already held;
          // RunQueryImpl takes none itself), then create one entity per
          // distinct parent and append it as the last child. Duplicate
          // parent bindings from a join collapse to one append each.
          Statement query;
          query.kind = Statement::Kind::kRetrieve;
          Target t;
          t.label = "parent";
          t.expr = Expr::VarRef(stmt.append_parent_var);
          query.targets.push_back(std::move(t));
          if (stmt.qual != nullptr) query.qual = CloneQual(*stmt.qual);
          MDM_ASSIGN_OR_RETURN(
              ResultSet parent_rows,
              RunQueryImpl(db_, *ranges, query, pushdown, &stats_, nullptr));
          std::set<EntityId> seen;
          std::vector<EntityId> parents;
          for (const auto& row : parent_rows.rows) {
            if (row.empty() || row[0].type() != ValueType::kRef)
              return TypeError("append-under parent must be an entity");
            if (seen.insert(row[0].AsRef()).second)
              parents.push_back(row[0].AsRef());
          }
          MDM_ASSIGN_OR_RETURN(
              er::OrderingHandle h,
              db_->ResolveOrderingHandle(stmt.append_ordering));
          for (EntityId parent : parents) {
            // The parent variable stays bound during assignment
            // evaluation, so `append to X (a = v.b) under v ...` copies
            // from the parent.
            std::map<std::string, Binding> binds;
            Binding pb;
            pb.entity = parent;
            binds[AsciiLower(stmt.append_parent_var)] = pb;
            Evaluator eval(db_, &binds);
            MDM_ASSIGN_OR_RETURN(EntityId id,
                                 db_->CreateEntity(stmt.append_type));
            for (const auto& [attr, expr] : stmt.assignments) {
              MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(expr));
              MDM_RETURN_IF_ERROR(db_->SetAttribute(id, attr, std::move(v)));
            }
            MDM_RETURN_IF_ERROR(db_->AppendChild(h, parent, id));
          }
          last = ResultSet{};
          last.affected = parents.size();
          break;
        }
        MDM_ASSIGN_OR_RETURN(EntityId id,
                             db_->CreateEntity(stmt.append_type));
        std::map<std::string, Binding> empty;
        Evaluator eval(db_, &empty);
        for (const auto& [attr, expr] : stmt.assignments) {
          MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(expr));
          MDM_RETURN_IF_ERROR(db_->SetAttribute(id, attr, std::move(v)));
        }
        last = ResultSet{};
        last.affected = 1;
        break;
      }
      case Statement::Kind::kRetrieve:
      case Statement::Kind::kReplace:
      case Statement::Kind::kDelete: {
        MDM_ASSIGN_OR_RETURN(last, RunQuery(stmt, pushdown, *ranges));
        break;
      }
  }
  return Status::OK();
}

// Defined out of line to keep Run readable. `actuals_out`, when
// non-null, receives the per-loop actual row counts even outside
// `explain analyze` (the slow-query-log path).
Result<ResultSet> RunQueryImpl(Database* db,
                               const std::map<std::string, std::string>&
                                   session_ranges,
                               const Statement& stmt, bool pushdown,
                               ExecCounters* stats,
                               StatementActuals* actuals_out);

Result<ResultSet> QuelSession::RunQuery(
    const Statement& stmt, bool pushdown,
    const std::map<std::string, std::string>& ranges) {
  if (!collect_actuals())
    return RunQueryImpl(db_, ranges, stmt, pushdown, &stats_, nullptr);
  StatementActuals actuals;
  Result<ResultSet> rs =
      RunQueryImpl(db_, ranges, stmt, pushdown, &stats_, &actuals);
  std::lock_guard<std::mutex> lock(mu_);
  last_actuals_ = std::move(actuals);
  return rs;
}

Result<ResultSet> RunQueryImpl(
    Database* db, const std::map<std::string, std::string>& session_ranges,
    const Statement& stmt, bool pushdown, ExecCounters* stats,
    StatementActuals* actuals_out) {
  const bool analyze = stmt.explain && stmt.analyze;
  std::chrono::steady_clock::time_point analyze_start;
  if (analyze) analyze_start = std::chrono::steady_clock::now();
  MDM_ASSIGN_OR_RETURN(Plan plan,
                       PlanQuery(db, session_ranges, stmt, pushdown));
  if (stmt.explain && !analyze) {
    // Plan-only: render without touching a single row.
    ResultSet rs;
    rs.explain = ExplainPlan(*db, stmt, plan);
    return rs;
  }
  const bool collect = analyze || actuals_out != nullptr;
  AnalyzeStats actual;
  if (collect) actual.Resize(plan.vars.size() + 1);

  ResultSet rs;
  bool has_agg = false;
  bool has_plain = false;
  bool has_by = false;
  for (const Target& t : stmt.targets) {
    (t.agg != AggFn::kNone ? has_agg : has_plain) = true;
    if (!t.by.empty()) has_by = true;
    rs.columns.push_back(t.label);
  }
  if (has_agg && has_plain)
    return InvalidArgument(
        "mixed aggregate and non-aggregate targets are not supported");
  if (has_by && stmt.targets.size() != 1)
    return InvalidArgument(
        "a grouped aggregate (aggfn(x by y)) must be the only target");
  if (has_by) {
    // Columns: one per by-expression, then the aggregate.
    rs.columns.clear();
    for (const Expr& by_expr : stmt.targets[0].by) {
      rs.columns.push_back(by_expr.kind == Expr::Kind::kAttrRef
                               ? by_expr.var + "." + by_expr.attr
                               : (by_expr.kind == Expr::Kind::kVarRef
                                      ? by_expr.var
                                      : "by"));
    }
    rs.columns.push_back(stmt.targets[0].label);
  }

  std::vector<AggState> agg_states(stmt.targets.size());
  // Grouped-aggregate accumulation, keyed by encoded by-values.
  std::vector<std::string> group_order;
  std::map<std::string, std::pair<std::vector<Value>, AggState>> groups;
  // Deferred mutations (applied after enumeration so iteration order is
  // never invalidated).
  std::vector<std::pair<EntityId, std::vector<std::pair<std::string, Value>>>>
      replacements;
  std::set<EntityId> deletions;

  NestedLoopJoin join(db, &plan, stats, collect ? &actual : nullptr);
  MDM_RETURN_IF_ERROR(join.Run([&](const std::map<std::string, Binding>&
                                       bindings) -> Status {
    Evaluator eval(db, &bindings, &plan.order_handles);
    switch (stmt.kind) {
      case Statement::Kind::kRetrieve: {
        if (has_by) {
          const Target& t = stmt.targets[0];
          std::vector<Value> by_values;
          ByteWriter key;
          for (const Expr& by_expr : t.by) {
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(by_expr));
            v.Encode(&key);
            by_values.push_back(std::move(v));
          }
          std::string encoded(
              reinterpret_cast<const char*>(key.data().data()), key.size());
          auto [it, inserted] = groups.try_emplace(
              encoded, std::move(by_values), AggState{});
          if (inserted) group_order.push_back(encoded);
          if (t.agg == AggFn::kCount && t.expr.kind == Expr::Kind::kVarRef) {
            ++it->second.second.count;
          } else {
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(t.expr));
            MDM_RETURN_IF_ERROR(it->second.second.Feed(v));
          }
          return Status::OK();
        }
        if (has_agg) {
          for (size_t i = 0; i < stmt.targets.size(); ++i) {
            const Target& t = stmt.targets[i];
            if (t.agg == AggFn::kCount &&
                t.expr.kind == Expr::Kind::kVarRef) {
              ++agg_states[i].count;  // count(var) counts rows
              continue;
            }
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(t.expr));
            MDM_RETURN_IF_ERROR(agg_states[i].Feed(v));
          }
        } else {
          std::vector<Value> row;
          for (const Target& t : stmt.targets) {
            MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(t.expr));
            row.push_back(std::move(v));
          }
          rs.rows.push_back(std::move(row));
        }
        return Status::OK();
      }
      case Statement::Kind::kReplace: {
        auto it = bindings.find(AsciiLower(stmt.update_var));
        if (it == bindings.end() || it->second.is_relationship)
          return InvalidArgument("replace target must be an entity "
                                 "range variable");
        std::vector<std::pair<std::string, Value>> sets;
        for (const auto& [attr, expr] : stmt.assignments) {
          MDM_ASSIGN_OR_RETURN(Value v, eval.Eval(expr));
          sets.emplace_back(attr, std::move(v));
        }
        replacements.emplace_back(it->second.entity, std::move(sets));
        return Status::OK();
      }
      case Statement::Kind::kDelete: {
        auto it = bindings.find(AsciiLower(stmt.update_var));
        if (it == bindings.end() || it->second.is_relationship)
          return InvalidArgument("delete target must be an entity "
                                 "range variable");
        deletions.insert(it->second.entity);
        return Status::OK();
      }
      default:
        return Internal("unexpected statement kind in query runner");
    }
  }));

  if (actuals_out != nullptr) {
    // Depth k >= 1 is entered once per binding enumerated by loop k
    // (planner.h AnalyzeStats), so loop i's in/out counts live at
    // depth i+1.
    actuals_out->loops.clear();
    actuals_out->loops.reserve(plan.vars.size());
    for (size_t i = 0; i < plan.vars.size(); ++i) {
      StatementActuals::Loop loop;
      loop.var = plan.vars[i].name;
      loop.rows_in = actual.calls[i + 1];
      loop.rows_out = actual.passed[i + 1];
      actuals_out->loops.push_back(std::move(loop));
    }
  }

  if (stmt.kind == Statement::Kind::kRetrieve && stmt.unique) {
    // `retrieve unique`: drop duplicate rows, preserving first-seen
    // order. Rows are compared by serialized form.
    std::set<std::string> seen;
    std::vector<std::vector<Value>> deduped;
    for (auto& row : rs.rows) {
      ByteWriter key;
      for (const Value& v : row) v.Encode(&key);
      std::string encoded(reinterpret_cast<const char*>(key.data().data()),
                          key.size());
      if (seen.insert(encoded).second) deduped.push_back(std::move(row));
    }
    rs.rows = std::move(deduped);
  }
  if (stmt.kind == Statement::Kind::kRetrieve && has_by) {
    for (const std::string& key : group_order) {
      auto& [by_values, state] = groups.at(key);
      std::vector<Value> row = by_values;
      row.push_back(state.Finish(stmt.targets[0].agg));
      rs.rows.push_back(std::move(row));
    }
  } else if (stmt.kind == Statement::Kind::kRetrieve && has_agg) {
    std::vector<Value> row;
    for (size_t i = 0; i < stmt.targets.size(); ++i)
      row.push_back(agg_states[i].Finish(stmt.targets[i].agg));
    rs.rows.push_back(std::move(row));
  }
  if (stmt.kind == Statement::Kind::kRetrieve && !stmt.sort_keys.empty()) {
    // Resolve sort labels to column indexes up front.
    std::vector<std::pair<size_t, bool>> order;  // (column, descending)
    for (const SortKey& key : stmt.sort_keys) {
      size_t col = rs.columns.size();
      for (size_t i = 0; i < rs.columns.size(); ++i)
        if (EqualsIgnoreCase(rs.columns[i], key.label)) col = i;
      if (col == rs.columns.size())
        return NotFound("sort by references no target named " + key.label);
      order.emplace_back(col, key.descending);
    }
    std::stable_sort(
        rs.rows.begin(), rs.rows.end(),
        [&order](const std::vector<Value>& a, const std::vector<Value>& b) {
          for (const auto& [col, desc] : order) {
            Result<int> c = a[col].Compare(b[col]);
            int cmp = c.ok() ? *c : 0;  // incomparable: treat as equal
            if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
          }
          return false;
        });
  }
  for (const auto& [id, sets] : replacements) {
    for (const auto& [attr, v] : sets)
      MDM_RETURN_IF_ERROR(db->SetAttribute(id, attr, v));
  }
  for (EntityId id : deletions) MDM_RETURN_IF_ERROR(db->DeleteEntity(id));
  if (stmt.kind == Statement::Kind::kReplace)
    rs.affected = replacements.size();
  if (stmt.kind == Statement::Kind::kDelete) rs.affected = deletions.size();
  if (analyze) {
    // The statement ran for real; the result is the annotated plan.
    uint64_t statement_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - analyze_start)
            .count());
    ResultSet out;
    out.explain = ExplainAnalyzePlan(*db, stmt, plan, actual, statement_ns);
    return out;
  }
  return rs;
}

}  // namespace mdm::quel

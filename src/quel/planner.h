#ifndef MDM_QUEL_PLANNER_H_
#define MDM_QUEL_PLANNER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "er/database.h"
#include "quel/ast.h"

namespace mdm::quel {

/// One range variable of a planned statement, in chosen loop order.
struct PlannedVar {
  std::string name;  // lowercased
  std::string type;  // entity type or relationship name
  bool is_relationship = false;
  uint64_t cardinality = 0;  // CountEntities / CountRelationships estimate
  // Arity of the narrowest conjunct mentioning this variable (SIZE_MAX
  // when none does): single-variable predicates make a loop maximally
  // selective, so lower ranks loop first.
  size_t selectivity = SIZE_MAX;
  // Index-backed enumeration (nullptr = full scan). When the planner
  // finds an equality conjunct `var.attr = <key>` (or `var.attr is
  // <key>`) whose key side is fully bound by outer loops and a live
  // secondary index covers (type, attr), this loop probes the index
  // with the evaluated key instead of scanning every instance — an
  // index selection when the key is a literal, an index-nested-loop
  // join when it references outer variables. The conjunct itself stays
  // in the filter list (hash keys may collide), and a runtime null key
  // falls back to the scan. Both pointers borrow from the statement AST
  // / database and are valid for the statement's execution.
  const er::AttrIndex* index = nullptr;
  const Expr* index_key = nullptr;
};

/// One top-level AND conjunct: evaluated as soon as the first `depth`
/// loop variables are bound (depth 0 = constant, tested before any
/// loop).
struct PlannedConjunct {
  const Qual* qual = nullptr;
  size_t depth = 0;
};

/// A compiled retrieve/replace/delete: loop order, pushed-down
/// conjuncts, and every ordering operator bound to a resolved
/// er::OrderingHandle once — the executor never resolves an ordering
/// name per row.
struct Plan {
  std::vector<PlannedVar> vars;
  std::vector<PlannedConjunct> conjuncts;
  /// Every Qual::kOrder node in the statement, at any nesting depth
  /// (including inside OR/NOT), mapped to its resolved ordering.
  std::map<const Qual*, er::OrderingHandle> order_handles;
  bool pushdown = true;
};

/// Plans a statement against the session's range declarations. Unknown
/// range variables and unresolvable or ambiguous orderings are reported
/// here, before any loop runs.
Result<Plan> PlanQuery(er::Database* db,
                       const std::map<std::string, std::string>& ranges,
                       const Statement& stmt, bool pushdown);

/// Renders a plan for `explain retrieve ...` (golden-tested, so the
/// format is part of the API surface).
std::string ExplainPlan(const er::Database& db, const Statement& stmt,
                        const Plan& plan);

/// Actual row counts and timings collected while executing an
/// `explain analyze` statement. Index k of each vector is loop depth k:
/// depth 0 is the constant gate before any loop, depth k >= 1 is entered
/// once per binding enumerated by loop k. All three vectors have
/// plan.vars.size() + 1 entries.
///
/// Invariant used by the renderer: inclusive_ns[k] covers everything at
/// depth k and below, so the self time of loop k is
/// inclusive_ns[k-1] - inclusive_ns[k], and the loop self times plus the
/// emit time (inclusive_ns[N]) sum exactly to inclusive_ns[0].
struct AnalyzeStats {
  std::vector<uint64_t> calls;         // times depth k was entered
  std::vector<uint64_t> passed;        // bindings surviving depth-k filters
  std::vector<uint64_t> inclusive_ns;  // total ns spent at depth >= k

  void Resize(size_t levels) {
    calls.assign(levels, 0);
    passed.assign(levels, 0);
    inclusive_ns.assign(levels, 0);
  }
};

/// Renders an executed plan for `explain analyze retrieve ...`: the
/// ExplainPlan output with each loop annotated by actual rows in/out and
/// self time, plus a totals footer. `statement_ns` is the measured
/// latency of the whole statement (planning + join + post-processing).
std::string ExplainAnalyzePlan(const er::Database& db, const Statement& stmt,
                               const Plan& plan, const AnalyzeStats& actual,
                               uint64_t statement_ns);

/// Deparse helpers (explain output, error messages, tests).
std::string ExprToString(const Expr& e);
std::string QualToString(const Qual& q);

/// Names of the range variables appearing in an expression /
/// qualification, lowercased (shared with the executor).
void CollectExprVars(const Expr& e, std::set<std::string>* out);
void CollectQualVars(const Qual& q, std::set<std::string>* out);

}  // namespace mdm::quel

#endif  // MDM_QUEL_PLANNER_H_

#ifndef MDM_QUEL_QUEL_H_
#define MDM_QUEL_QUEL_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/database.h"
#include "quel/ast.h"

namespace mdm::quel {

/// The rows produced by a retrieve, or the row count touched by an
/// update statement.
///
/// Consumption API: look up columns by name once with ColumnIndex, read
/// cells with At, or range-for over the rows:
///
///   auto name = rs.ColumnIndex("n1.name");
///   for (ResultSet::RowRef row : rs)
///     use(row[*name]);           // or row["n1.name"]
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<rel::Value>> rows;
  uint64_t affected = 0;
  /// Set by `explain [analyze] retrieve ...`: the rendered (and, under
  /// analyze, annotated) plan. When non-empty, ToString() returns it
  /// verbatim.
  std::string explain;

  /// Index of the column labelled `name` (case-insensitive), if any.
  std::optional<size_t> ColumnIndex(std::string_view name) const;
  /// Cell access; returns a null Value for out-of-range coordinates
  /// rather than faulting, so display loops need no bounds checks.
  const rel::Value& At(size_t row, size_t col) const;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// One row, addressable by column index or (case-insensitive) label.
  class RowRef {
   public:
    const rel::Value& operator[](size_t col) const {
      return rs_->At(row_, col);
    }
    const rel::Value& operator[](std::string_view col) const;
    size_t size() const { return rs_->rows[row_].size(); }
    size_t row_index() const { return row_; }

   private:
    friend struct ResultSet;
    RowRef(const ResultSet* rs, size_t row) : rs_(rs), row_(row) {}
    const ResultSet* rs_;
    size_t row_;
  };

  class RowIterator {
   public:
    RowRef operator*() const { return RowRef(rs_, row_); }
    RowIterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator!=(const RowIterator& o) const { return row_ != o.row_; }
    bool operator==(const RowIterator& o) const { return row_ == o.row_; }

   private:
    friend struct ResultSet;
    RowIterator(const ResultSet* rs, size_t row) : rs_(rs), row_(row) {}
    const ResultSet* rs_;
    size_t row_;
  };

  RowIterator begin() const { return RowIterator(this, 0); }
  RowIterator end() const { return RowIterator(this, rows.size()); }

  /// Renders an aligned text table (for the examples and benches).
  std::string ToString() const;
};

/// Per-session execution counters, cumulative across Execute calls
/// until ResetStats. Surfaced by mdmsh's \stats.
///
/// This struct is the per-session view. Process-wide totals are
/// mirrored on the obs registry (mdm_quel_*_total, mdm_er_*_total and
/// the quel.statement span histogram); prefer those for monitoring —
/// this accessor remains for per-session attribution in tests and
/// benches (see docs/OBSERVABILITY.md).
struct ExecStats {
  uint64_t statements = 0;           // statements executed
  uint64_t rows_scanned = 0;         // range-variable bindings enumerated
  uint64_t conjuncts_evaluated = 0;  // pushed-down conjunct tests
  uint64_t index_hits = 0;           // ordering-index answers (rank/interval)
  uint64_t index_misses = 0;         // index rebuilds + linear fallbacks
  uint64_t plan_cache_hits = 0;      // scripts answered from the parse cache

  std::string ToString() const;
};

/// Relaxed-atomic twin of ExecStats: the live counters a session (and
/// the join inner loops) bump, safe against concurrent Execute calls on
/// one shared session. Counts are exact; the index_hits/index_misses
/// attribution is best-effort when several sessions share one database
/// (it diffs the database-wide index stats around the script).
struct ExecCounters {
  std::atomic<uint64_t> statements{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> conjuncts_evaluated{0};
  std::atomic<uint64_t> index_hits{0};
  std::atomic<uint64_t> index_misses{0};
  std::atomic<uint64_t> plan_cache_hits{0};

  ExecStats Snapshot() const {
    ExecStats s;
    s.statements = statements.load(std::memory_order_relaxed);
    s.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
    s.conjuncts_evaluated =
        conjuncts_evaluated.load(std::memory_order_relaxed);
    s.index_hits = index_hits.load(std::memory_order_relaxed);
    s.index_misses = index_misses.load(std::memory_order_relaxed);
    s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
    return s;
  }
  void Reset() {
    statements.store(0, std::memory_order_relaxed);
    rows_scanned.store(0, std::memory_order_relaxed);
    conjuncts_evaluated.store(0, std::memory_order_relaxed);
    index_hits.store(0, std::memory_order_relaxed);
    index_misses.store(0, std::memory_order_relaxed);
    plan_cache_hits.store(0, std::memory_order_relaxed);
  }
};

/// Per-loop actual row counts of the last executed query statement,
/// outermost loop first — the same numbers `explain analyze` renders,
/// collected without the explain wrapper when the session's
/// collect-actuals knob is on. The mdmd slow-query log attaches these
/// so a slow join shows which loop exploded (docs/OBSERVABILITY.md).
struct StatementActuals {
  struct Loop {
    std::string var;       // planned range variable (lowercased)
    uint64_t rows_in = 0;  // bindings the loop enumerated
    uint64_t rows_out = 0; // bindings surviving its pushed-down filters
  };
  std::vector<Loop> loops;
  bool empty() const { return loops.empty(); }
};

/// A QUEL session against one MDM database.
///
/// Implements the QUEL subset used in the paper plus the §5.6
/// extensions:
///
///   range of n1, n2 is NOTE
///   retrieve (n1.name) where n1 before n2 in note_in_chord
///                        and n2.name = 3
///   retrieve (c = count(n1)) where n1 under c1 in note_in_chord
///   append to NOTE (name = 7, pitch = "G4")
///   replace n1 (pitch = "A4") where n1.name = 7
///   delete n1 where n1.name = 7
///   explain retrieve (n1.name) where n1 before n2 in note_in_chord
///   explain analyze retrieve (n1.name) where n1.name = 3
///
/// As in GEM and later INGRES versions, a range variable with the same
/// name as its entity type is implicitly declared for every entity type
/// and relationship (footnote 6), so `retrieve (PERSON.name) where ...`
/// works without a range statement.
///
/// QuelSession is an internal building block: application clients go
/// through `mdm::Connection` (DESIGN.md §"Public API"), which owns one
/// session per local connection and dispatches DDL scripts too. Direct
/// construction is for the Connection/server plumbing, tests, and
/// benches that need session-level knobs (ExecuteNaive, ResetStats,
/// ClearParseCache).
///
/// Execution goes through a small planner (quel/planner.h): range
/// variables are ordered by selectivity and estimated cardinality,
/// top-level AND conjuncts are pushed down to the outermost loop level
/// at which their variables are bound, and every ordering operator is
/// bound to a resolved er::OrderingHandle once per statement. Parsed
/// scripts are cached by text, so repeated Execute calls skip the
/// lexer/parser entirely. `explain retrieve` renders the plan without
/// running it.
///
/// Thread safety: Execute/ExecuteNaive may be called concurrently —
/// from many sessions sharing one database (the normal multi-client
/// shape, one session per client thread) or from threads sharing one
/// session (the parse cache and range declarations are mutex-guarded;
/// the counters are atomics). Each statement runs under the database
/// latch: shared for range/retrieve, exclusive for append/replace/
/// delete, so retrieves see snapshot-consistent states and mutating
/// statements are serialized. Consequently, do NOT call Execute while
/// holding an er::ReadGuard/WriteGuard on the same database — the
/// latch is not recursive.
class QuelSession {
 public:
  explicit QuelSession(er::Database* db) : db_(db) {}

  QuelSession(const QuelSession&) = delete;
  QuelSession& operator=(const QuelSession&) = delete;

  /// Executes a script of one or more statements; returns the result of
  /// the last retrieve (or an empty/affected-count result).
  ///
  /// Latching (docs/WRITEPATH.md): read-only statements first try to
  /// pin the published snapshot and run with NO db latch at all,
  /// falling back to the shared latch only when no faithful snapshot is
  /// available; mutating statements take the exclusive latch, run as
  /// one statement group (one WAL transaction, crash-atomic), publish,
  /// release the latch, and only then wait for group-commit durability.
  Result<ResultSet> Execute(const std::string& script);

  /// Executes with conjunct push-down disabled — the full cross product
  /// is enumerated and the whole qualification evaluated at the bottom.
  /// Exposed for the §5.6 evaluation-strategy benchmark.
  Result<ResultSet> ExecuteNaive(const std::string& script);

  /// Executes a script with NO latching or commit bracketing of its
  /// own: the caller already holds the database latch exclusively and
  /// has an open statement group (mdm::Connection's batch path, which
  /// runs N scripts under one latch acquisition and one group-committed
  /// fsync). Retrieves inside the batch read the live tables, so they
  /// see the batch's own earlier writes.
  Result<ResultSet> ExecutePreLocked(const std::string& script);

  /// Declared (explicit) range variables: name -> entity/relationship
  /// type. Persists across Execute calls, like a QUEL terminal session.
  /// Returned by value: a snapshot consistent under concurrency.
  std::map<std::string, std::string> ranges() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ranges_;
  }

  /// Snapshot of the cumulative execution counters (see ExecStats).
  ExecStats stats() const { return stats_.Snapshot(); }

  /// Zeroes the counters only — the parse cache is left intact, so
  /// re-running a cached script after ResetStats still counts a
  /// plan_cache_hit. Use ClearParseCache to drop cached scripts.
  void ResetStats() { stats_.Reset(); }

  /// Drops every cached parsed script without touching the counters;
  /// the next Execute of any script re-parses it (and does not count a
  /// plan_cache_hit).
  void ClearParseCache() {
    std::lock_guard<std::mutex> lock(mu_);
    parse_cache_.clear();
  }

  /// When on, every query statement records its per-loop actual row
  /// counts (the `explain analyze` collector, minus the timing render)
  /// readable via TakeLastActuals. Costs two clock reads per loop
  /// level entry, so it is off by default and enabled by mdmd only
  /// when a slow-query log is configured.
  void set_collect_actuals(bool on) {
    collect_actuals_.store(on, std::memory_order_relaxed);
  }
  bool collect_actuals() const {
    return collect_actuals_.load(std::memory_order_relaxed);
  }

  /// Returns and clears the actuals of the most recent query statement
  /// (take-semantics so a later DDL or parse error cannot leak a stale
  /// attribution into the next slow-query record). Empty when the last
  /// statement ran no query loop (range/append/DDL) or collection is
  /// off.
  StatementActuals TakeLastActuals() {
    std::lock_guard<std::mutex> lock(mu_);
    StatementActuals out = std::move(last_actuals_);
    last_actuals_ = StatementActuals{};
    return out;
  }

 private:
  /// How Run acquires the database latch around each statement.
  enum class LatchMode {
    kAuto,       // per-statement: snapshot/shared read, exclusive write
    kPreLocked,  // caller holds the exclusive latch + statement group
  };

  Result<ResultSet> Run(const std::string& script, bool pushdown,
                        LatchMode mode = LatchMode::kAuto);
  Status RunStatement(const Statement& stmt, bool pushdown,
                      std::map<std::string, std::string>* ranges,
                      ResultSet* last);
  Result<ResultSet> RunQuery(const Statement& stmt, bool pushdown,
                             const std::map<std::string, std::string>& ranges);

  er::Database* db_;
  // mu_ guards ranges_, parse_cache_ and last_actuals_ (session-local
  // state); the database itself is guarded by its own latch, taken per
  // statement.
  mutable std::mutex mu_;
  std::map<std::string, std::string> ranges_;
  ExecCounters stats_;
  std::atomic<bool> collect_actuals_{false};
  StatementActuals last_actuals_;
  // Statement cache keyed by script text. Statements are immutable once
  // parsed; the shared_ptr keeps a script alive while it executes even
  // if the cache is cleared mid-run.
  std::unordered_map<std::string,
                     std::shared_ptr<const std::vector<Statement>>>
      parse_cache_;
};

/// Parses a QUEL script into statements (exposed for tests).
Result<std::vector<Statement>> ParseQuel(const std::string& script);

}  // namespace mdm::quel

#endif  // MDM_QUEL_QUEL_H_

#ifndef MDM_QUEL_QUEL_H_
#define MDM_QUEL_QUEL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "er/database.h"
#include "quel/ast.h"

namespace mdm::quel {

/// The rows produced by a retrieve, or the row count touched by an
/// update statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<rel::Value>> rows;
  uint64_t affected = 0;

  /// Renders an aligned text table (for the examples and benches).
  std::string ToString() const;
};

/// A QUEL session against one MDM database.
///
/// Implements the QUEL subset used in the paper plus the §5.6
/// extensions:
///
///   range of n1, n2 is NOTE
///   retrieve (n1.name) where n1 before n2 in note_in_chord
///                        and n2.name = 3
///   retrieve (c = count(n1)) where n1 under c1 in note_in_chord
///   append to NOTE (name = 7, pitch = "G4")
///   replace n1 (pitch = "A4") where n1.name = 7
///   delete n1 where n1.name = 7
///
/// As in GEM and later INGRES versions, a range variable with the same
/// name as its entity type is implicitly declared for every entity type
/// and relationship (footnote 6), so `retrieve (PERSON.name) where ...`
/// works without a range statement.
///
/// Evaluation is a nested-loop join over the statement's range
/// variables with conjunct push-down: each top-level AND conjunct is
/// evaluated at the innermost loop level at which all of its variables
/// are bound, so selective predicates prune the cross product early
/// (the ablation in bench_s56_quel turns this off).
class QuelSession {
 public:
  explicit QuelSession(er::Database* db) : db_(db) {}

  /// Executes a script of one or more statements; returns the result of
  /// the last retrieve (or an empty/affected-count result).
  Result<ResultSet> Execute(const std::string& script);

  /// Executes with conjunct push-down disabled — the full cross product
  /// is enumerated and the whole qualification evaluated at the bottom.
  /// Exposed for the §5.6 evaluation-strategy benchmark.
  Result<ResultSet> ExecuteNaive(const std::string& script);

  /// Declared (explicit) range variables: name -> entity/relationship
  /// type. Persists across Execute calls, like a QUEL terminal session.
  const std::map<std::string, std::string>& ranges() const {
    return ranges_;
  }

 private:
  Result<ResultSet> Run(const std::string& script, bool pushdown);
  Result<ResultSet> RunQuery(const Statement& stmt, bool pushdown);

  er::Database* db_;
  std::map<std::string, std::string> ranges_;
};

/// Parses a QUEL script into statements (exposed for tests).
Result<std::vector<Statement>> ParseQuel(const std::string& script);

}  // namespace mdm::quel

#endif  // MDM_QUEL_QUEL_H_

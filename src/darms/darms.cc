#include "darms/darms.h"

#include <cctype>
#include <cstdint>

#include "cmn/schema.h"
#include "cmn/temporal.h"
#include "common/strings.h"
#include "mtime/meter.h"

namespace mdm::darms {

using cmn::Accidental;
using er::EntityId;
using rel::Value;

namespace {

bool DurationFromLetter(char c, Rational* out) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'W': *out = Rational(4); return true;      // whole
    case 'H': *out = Rational(2); return true;      // half
    case 'Q': *out = Rational(1); return true;      // quarter
    case 'E': *out = Rational(1, 2); return true;   // eighth
    case 'S': *out = Rational(1, 4); return true;   // sixteenth
    case 'T': *out = Rational(1, 8); return true;   // thirty-second
    default: return false;
  }
}

char LetterFromDuration(const Rational& d) {
  if (d == Rational(4)) return 'W';
  if (d == Rational(2)) return 'H';
  if (d == Rational(1)) return 'Q';
  if (d == Rational(1, 2)) return 'E';
  if (d == Rational(1, 4)) return 'S';
  if (d == Rational(1, 8)) return 'T';
  return '\0';
}

/// Parser state over the raw text.
class DarmsParser {
 public:
  explicit DarmsParser(const std::string& text) : text_(text) {}

  Result<std::vector<DarmsItem>> Run() {
    std::vector<DarmsItem> items;
    Rational carried(1);  // user-DARMS carried duration (quarter default)
    while (true) {
      SkipSpace();
      if (AtEnd()) break;
      char c = Peek();
      if (c == '(') {
        ++pos_;
        items.push_back(Make(DarmsItem::Kind::kBeamBegin));
        continue;
      }
      if (c == ')') {
        ++pos_;
        items.push_back(Make(DarmsItem::Kind::kBeamEnd));
        continue;
      }
      if (c == '/') {
        ++pos_;
        if (!AtEnd() && Peek() == '/') {
          ++pos_;
          items.push_back(Make(DarmsItem::Kind::kFinalBarline));
        } else {
          items.push_back(Make(DarmsItem::Kind::kBarline));
        }
        continue;
      }
      if (c == 'I' || c == 'i') {
        ++pos_;
        DarmsItem item = Make(DarmsItem::Kind::kInstrument);
        MDM_ASSIGN_OR_RETURN(item.number, ReadInt("instrument number"));
        items.push_back(item);
        continue;
      }
      if (c == '!' || c == '\'') {
        ++pos_;
        if (AtEnd()) return ParseError("dangling '!' in DARMS");
        char what = std::toupper(static_cast<unsigned char>(Peek()));
        ++pos_;
        if (what == 'K') {
          DarmsItem item = Make(DarmsItem::Kind::kKeySignature);
          MDM_ASSIGN_OR_RETURN(int n, ReadInt("key signature count"));
          if (n < 0 || n > 7)
            return ParseError(
                StrFormat("key signature of %d accidentals is invalid", n));
          if (AtEnd() || (Peek() != '#' && Peek() != '-'))
            return ParseError("key signature needs '#' or '-'");
          item.number = Peek() == '#' ? n : -n;
          ++pos_;
          items.push_back(item);
        } else if (what == 'M') {
          DarmsItem item = Make(DarmsItem::Kind::kMeter);
          MDM_ASSIGN_OR_RETURN(item.meter_num, ReadInt("meter numerator"));
          if (AtEnd() || Peek() != ':')
            return ParseError("meter needs ':'");
          ++pos_;
          MDM_ASSIGN_OR_RETURN(item.meter_den, ReadInt("meter denominator"));
          if (item.meter_num < 1 || item.meter_num > 64 ||
              item.meter_den < 1 || item.meter_den > 64)
            return ParseError(StrFormat("meter %d:%d is invalid",
                                        item.meter_num, item.meter_den));
          items.push_back(item);
        } else if (what == 'G' || what == 'F' || what == 'C') {
          DarmsItem item = Make(DarmsItem::Kind::kClef);
          item.clef = what;
          items.push_back(item);
        } else {
          return ParseError(StrFormat("unknown '!%c' directive", what));
        }
        continue;
      }
      if (c == 'R' || c == 'r') {
        ++pos_;
        int count = 1;
        if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          MDM_ASSIGN_OR_RETURN(count, ReadInt("rest count"));
          // A multi-rest run is bounded: "R99999999" must be a parse
          // error, not an allocation proportional to attacker input.
          if (count < 1 || count > 4096)
            return ParseError(StrFormat("rest count %d out of range", count));
        }
        Rational dur = carried;
        if (!AtEnd()) {
          Rational parsed;
          if (DurationFromLetter(Peek(), &parsed)) {
            dur = parsed;
            ++pos_;
          }
        }
        carried = dur;
        for (int i = 0; i < count; ++i) {
          DarmsItem item = Make(DarmsItem::Kind::kRest);
          item.duration = dur;
          items.push_back(item);
        }
        continue;
      }
      if (c == '@' || c == '0') {
        // Annotation, optionally preceded by a position code of zeros.
        size_t save = pos_;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())))
          ++pos_;
        if (AtEnd() || Peek() != '@') {
          pos_ = save;  // digits were a note code after all
        } else {
          DarmsItem item = Make(DarmsItem::Kind::kAnnotation);
          MDM_ASSIGN_OR_RETURN(item.text, ReadLiteral());
          items.push_back(item);
          continue;
        }
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        MDM_ASSIGN_OR_RETURN(DarmsItem item,
                             ReadNote(&carried, &carried_pitch_));
        items.push_back(item);
        continue;
      }
      // A bare duration letter repeats the previous pitch (user-DARMS
      // pitch suppression, §4.6: "repeated ... pitches can be rapidly
      // entered").
      {
        Rational dur;
        if (DurationFromLetter(c, &dur) && carried_pitch_ != kNoPitch) {
          MDM_ASSIGN_OR_RETURN(DarmsItem item,
                               ReadPitchlessNote(&carried, carried_pitch_));
          items.push_back(item);
          continue;
        }
      }
      return ParseError(StrFormat("unexpected '%c' in DARMS input", c));
    }
    return items;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  static DarmsItem Make(DarmsItem::Kind kind) {
    DarmsItem item;
    item.kind = kind;
    return item;
  }

  Result<int> ReadInt(const char* what) {
    bool negative = false;
    if (!AtEnd() && Peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek())))
      return ParseError(StrFormat("expected %s", what));
    // Bounded so a long digit run is a parse error, not signed overflow
    // (no DARMS number is legitimately this large).
    constexpr int kMaxNumber = 1'000'000;
    int v = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      v = v * 10 + (Peek() - '0');
      if (v > kMaxNumber)
        return ParseError(StrFormat("%s out of range", what));
      ++pos_;
    }
    return negative ? -v : v;
  }

  // @text$ with ¢ (UTF-8 C2 A2) capitalizing the following letter.
  Result<std::string> ReadLiteral() {
    if (AtEnd() || Peek() != '@') return ParseError("expected '@'");
    ++pos_;
    std::string out;
    bool capitalize = false;
    while (!AtEnd() && Peek() != '$') {
      unsigned char ch = static_cast<unsigned char>(Peek());
      if (ch == 0xC2 && pos_ + 1 < text_.size() &&
          static_cast<unsigned char>(text_[pos_ + 1]) == 0xA2) {
        capitalize = true;
        pos_ += 2;
        continue;
      }
      char c = Peek();
      if (capitalize) {
        c = std::toupper(static_cast<unsigned char>(c));
        capitalize = false;
      }
      out += c;
      ++pos_;
    }
    if (AtEnd()) return ParseError("unterminated @literal$");
    ++pos_;  // past '$'
    return out;
  }

  // Parses the duration/stem/dot/syllable tail shared by pitched and
  // pitch-suppressed notes.
  Result<DarmsItem> ReadNoteTail(DarmsItem item, Rational* carried) {
    // Accidental.
    if (!AtEnd()) {
      if (Peek() == '#') {
        item.accidental = Accidental::kSharp;
        ++pos_;
      } else if (Peek() == '-') {
        item.accidental = Accidental::kFlat;
        ++pos_;
      } else if (Peek() == 'N' || Peek() == 'n') {
        item.accidental = Accidental::kNatural;
        ++pos_;
      }
    }
    // Duration letter (carried when omitted).
    Rational dur;
    if (!AtEnd() && DurationFromLetter(Peek(), &dur)) {
      ++pos_;
      *carried = dur;
    } else {
      dur = *carried;
    }
    item.duration = dur;
    // Stem direction.
    if (!AtEnd() && (Peek() == 'D' || Peek() == 'U')) {
      item.stem_down = Peek() == 'D';
      item.stem_explicit = true;
      ++pos_;
    }
    // Duration dot.
    if (!AtEnd() && Peek() == '.') {
      item.dotted = true;
      item.duration = item.duration * Rational(3, 2);
      ++pos_;
    }
    // Attached syllable: ,@text$
    if (!AtEnd() && Peek() == ',') {
      ++pos_;
      MDM_ASSIGN_OR_RETURN(item.text, ReadLiteral());
    }
    return item;
  }

  Result<DarmsItem> ReadNote(Rational* carried, int* carried_pitch) {
    DarmsItem item = Make(DarmsItem::Kind::kNote);
    MDM_ASSIGN_OR_RETURN(int code, ReadInt("space code"));
    // Full form 2x maps to short form x (21 = bottom line = 1).
    item.space_code = code >= 20 ? code - 20 : code;
    *carried_pitch = item.space_code;
    return ReadNoteTail(std::move(item), carried);
  }

  Result<DarmsItem> ReadPitchlessNote(Rational* carried, int pitch) {
    DarmsItem item = Make(DarmsItem::Kind::kNote);
    item.space_code = pitch;
    return ReadNoteTail(std::move(item), carried);
  }

  static constexpr int kNoPitch = INT32_MIN;

  const std::string& text_;
  size_t pos_ = 0;
  int carried_pitch_ = kNoPitch;
};

std::string AccidentalCode(Accidental acc) {
  switch (acc) {
    case Accidental::kSharp: return "#";
    case Accidental::kFlat: return "-";
    case Accidental::kNatural: return "N";
    default: return "";
  }
}

std::string EncodeItems(const std::vector<DarmsItem>& items, bool canonical) {
  std::string out;
  Rational carried(0);
  auto emit = [&out](const std::string& s) {
    if (!out.empty() && out.back() != '(' && s != ")") out += ' ';
    out += s;
  };
  for (const DarmsItem& item : items) {
    switch (item.kind) {
      case DarmsItem::Kind::kInstrument:
        emit(StrFormat("I%d", item.number));
        break;
      case DarmsItem::Kind::kClef:
        emit(StrFormat("!%c", item.clef));
        break;
      case DarmsItem::Kind::kKeySignature:
        emit(StrFormat("!K%d%s", std::abs(item.number),
                       item.number >= 0 ? "#" : "-"));
        break;
      case DarmsItem::Kind::kMeter:
        emit(StrFormat("!M%d:%d", item.meter_num, item.meter_den));
        break;
      case DarmsItem::Kind::kRest: {
        Rational base = item.duration;
        char letter = LetterFromDuration(base);
        emit(StrFormat("R%c", letter ? letter : 'Q'));
        carried = base;
        break;
      }
      case DarmsItem::Kind::kNote: {
        Rational base =
            item.dotted ? item.duration / Rational(3, 2) : item.duration;
        std::string s = canonical
                            ? std::to_string(item.space_code + 20)
                            : std::to_string(item.space_code);
        s += AccidentalCode(item.accidental);
        char letter = LetterFromDuration(base);
        if (letter != '\0' && (canonical || base != carried)) s += letter;
        carried = base;
        if (item.stem_explicit) s += item.stem_down ? "D" : "U";
        if (item.dotted) s += ".";
        if (!item.text.empty()) s += ",@" + item.text + "$";
        emit(s);
        break;
      }
      case DarmsItem::Kind::kBeamBegin:
        emit("(");
        break;
      case DarmsItem::Kind::kBeamEnd:
        out += ")";
        break;
      case DarmsItem::Kind::kBarline:
        emit("/");
        break;
      case DarmsItem::Kind::kFinalBarline:
        emit("//");
        break;
      case DarmsItem::Kind::kAnnotation:
        emit("@" + item.text + "$");
        break;
    }
  }
  return out;
}

}  // namespace

Result<std::vector<DarmsItem>> ParseDarms(const std::string& text) {
  DarmsParser parser(text);
  return parser.Run();
}

std::string EncodeCanonical(const std::vector<DarmsItem>& items) {
  return EncodeItems(items, /*canonical=*/true);
}

std::string EncodeUser(const std::vector<DarmsItem>& items) {
  return EncodeItems(items, /*canonical=*/false);
}

Result<std::string> Canonicalize(const std::string& text) {
  MDM_ASSIGN_OR_RETURN(std::vector<DarmsItem> items, ParseDarms(text));
  return EncodeCanonical(items);
}

Result<DarmsImport> ImportDarms(er::Database* db, const std::string& text,
                                const std::string& title) {
  MDM_RETURN_IF_ERROR(cmn::InstallCmnSchema(db));
  MDM_ASSIGN_OR_RETURN(std::vector<DarmsItem> items, ParseDarms(text));

  cmn::ScoreBuilder builder(db);
  DarmsImport import;
  MDM_ASSIGN_OR_RETURN(import.score, builder.CreateScore(title));
  MDM_ASSIGN_OR_RETURN(EntityId movement,
                       builder.AddMovement(import.score, "I"));
  MDM_ASSIGN_OR_RETURN(import.staff, db->CreateEntity("STAFF"));
  MDM_ASSIGN_OR_RETURN(import.voice, builder.AddVoice(1));

  mtime::TimeSignature meter{4, 4};
  cmn::Clef clef = cmn::Clef::kTreble;
  cmn::AccidentalState accidentals{cmn::KeySignature{0}};
  MDM_ASSIGN_OR_RETURN(
      EntityId measure,
      builder.AddMeasure(movement, ++import.measures, meter));
  Rational cursor(0);
  std::vector<EntityId> group_stack;
  bool saw_final = false;

  for (const DarmsItem& item : items) {
    switch (item.kind) {
      case DarmsItem::Kind::kInstrument:
        break;  // single-instrument import
      case DarmsItem::Kind::kClef: {
        clef = item.clef == 'F'
                   ? cmn::Clef::kBass
                   : (item.clef == 'C' ? cmn::Clef::kAlto
                                       : cmn::Clef::kTreble);
        MDM_ASSIGN_OR_RETURN(EntityId c, db->CreateEntity("CLEF"));
        MDM_RETURN_IF_ERROR(db->SetAttribute(
            c, "kind", Value::String(std::string(1, item.clef))));
        MDM_RETURN_IF_ERROR(
            db->AppendChild(cmn::kClefOnStaff, import.staff, c));
        break;
      }
      case DarmsItem::Kind::kKeySignature: {
        accidentals = cmn::AccidentalState{cmn::KeySignature{item.number}};
        MDM_ASSIGN_OR_RETURN(EntityId k, db->CreateEntity("KEY_SIGNATURE"));
        MDM_RETURN_IF_ERROR(
            db->SetAttribute(k, "sharps", Value::Int(item.number)));
        MDM_RETURN_IF_ERROR(
            db->AppendChild(cmn::kKeySigOnStaff, import.staff, k));
        break;
      }
      case DarmsItem::Kind::kMeter:
        meter = {item.meter_num, item.meter_den};
        MDM_RETURN_IF_ERROR(db->SetAttribute(measure, "meter_num",
                                             Value::Int(item.meter_num)));
        MDM_RETURN_IF_ERROR(db->SetAttribute(measure, "meter_den",
                                             Value::Int(item.meter_den)));
        break;
      case DarmsItem::Kind::kBarline:
      case DarmsItem::Kind::kFinalBarline: {
        accidentals.Reset();
        if (item.kind == DarmsItem::Kind::kFinalBarline) {
          saw_final = true;
          break;
        }
        MDM_ASSIGN_OR_RETURN(
            measure, builder.AddMeasure(movement, ++import.measures, meter));
        cursor = Rational(0);
        break;
      }
      case DarmsItem::Kind::kBeamBegin: {
        MDM_ASSIGN_OR_RETURN(EntityId group, builder.AddGroup("beam"));
        if (!group_stack.empty())
          MDM_RETURN_IF_ERROR(builder.AddToGroup(group_stack.back(), group));
        group_stack.push_back(group);
        break;
      }
      case DarmsItem::Kind::kBeamEnd:
        if (group_stack.empty())
          return ParseError("unbalanced ')' in DARMS beam grouping");
        group_stack.pop_back();
        break;
      case DarmsItem::Kind::kRest: {
        MDM_ASSIGN_OR_RETURN(EntityId rest,
                             builder.AddRest(import.voice, item.duration));
        if (!group_stack.empty())
          MDM_RETURN_IF_ERROR(builder.AddToGroup(group_stack.back(), rest));
        cursor += item.duration;
        ++import.rests;
        break;
      }
      case DarmsItem::Kind::kNote: {
        MDM_ASSIGN_OR_RETURN(EntityId sync,
                             builder.GetOrAddSync(measure, cursor));
        MDM_ASSIGN_OR_RETURN(
            EntityId chord,
            builder.AddChord(sync, import.voice, item.duration));
        if (item.stem_explicit)
          MDM_RETURN_IF_ERROR(db->SetAttribute(
              chord, "stem_direction", Value::Int(item.stem_down ? -1 : 1)));
        MDM_ASSIGN_OR_RETURN(
            EntityId note,
            builder.AddNote(chord, clef, item.space_code, item.accidental,
                            &accidentals));
        MDM_RETURN_IF_ERROR(
            db->AppendChild(cmn::kNoteOnStaff, import.staff, note));
        if (!group_stack.empty())
          MDM_RETURN_IF_ERROR(builder.AddToGroup(group_stack.back(), chord));
        if (!item.text.empty()) {
          MDM_ASSIGN_OR_RETURN(EntityId syl, db->CreateEntity("SYLLABLE"));
          MDM_RETURN_IF_ERROR(
              db->SetAttribute(syl, "text", Value::String(item.text)));
          MDM_RETURN_IF_ERROR(db->Connect("SYLLABLE_OF_NOTE",
                                          {{"note", note}, {"syllable", syl}})
                                  .status());
        }
        cursor += item.duration;
        ++import.notes;
        break;
      }
      case DarmsItem::Kind::kAnnotation: {
        MDM_ASSIGN_OR_RETURN(EntityId ann, db->CreateEntity("ANNOTATION"));
        MDM_RETURN_IF_ERROR(
            db->SetAttribute(ann, "text", Value::String(item.text)));
        break;
      }
    }
  }
  if (!group_stack.empty())
    return ParseError("unbalanced '(' in DARMS beam grouping");
  (void)saw_final;
  return import;
}

Result<std::string> ExportDarms(er::Database* db, er::EntityId score) {
  std::vector<DarmsItem> items;
  // Clef and key signature from the first staff found via notes.
  cmn::Clef clef = cmn::Clef::kTreble;
  {
    DarmsItem c;
    c.kind = DarmsItem::Kind::kClef;
    c.clef = 'G';
    items.push_back(c);
  }
  MDM_ASSIGN_OR_RETURN(std::vector<cmn::MeasureSpan> table,
                       cmn::BuildMeasureTable(*db, score));
  bool first_measure = true;
  for (const cmn::MeasureSpan& span : table) {
    if (!first_measure) {
      DarmsItem bar;
      bar.kind = DarmsItem::Kind::kBarline;
      items.push_back(bar);
    }
    first_measure = false;
    MDM_ASSIGN_OR_RETURN(std::vector<EntityId> syncs,
                         db->Children(cmn::kSyncInMeasure, span.measure));
    for (EntityId sync : syncs) {
      MDM_ASSIGN_OR_RETURN(std::vector<EntityId> chords,
                           db->Children(cmn::kChordInSync, sync));
      for (EntityId chord : chords) {
        MDM_ASSIGN_OR_RETURN(Value dur,
                             db->GetAttribute(chord, "duration_beats"));
        MDM_ASSIGN_OR_RETURN(std::vector<EntityId> notes,
                             db->Children(cmn::kNoteInChord, chord));
        for (EntityId note : notes) {
          DarmsItem item;
          item.kind = DarmsItem::Kind::kNote;
          MDM_ASSIGN_OR_RETURN(Value degree, db->GetAttribute(note, "degree"));
          if (degree.is_null()) {
            // Event-stream note: derive a degree from its MIDI key.
            MDM_ASSIGN_OR_RETURN(Value key, db->GetAttribute(note, "midi_key"));
            int midi = key.is_null() ? 60 : static_cast<int>(key.AsInt());
            cmn::Pitch p;
            p.octave = midi / 12 - 1;
            p.step = 0;
            item.space_code = cmn::PitchToDegree(clef, p);
          } else {
            item.space_code = static_cast<int>(degree.AsInt());
          }
          MDM_ASSIGN_OR_RETURN(Value acc, db->GetAttribute(note, "accidental"));
          if (!acc.is_null())
            item.accidental = static_cast<Accidental>(acc.AsInt());
          item.duration = dur.is_null() ? Rational(1) : dur.AsRational();
          // Re-detect dotted durations so 3/2 emits as "Q." not silence.
          if (LetterFromDuration(item.duration) == '\0' &&
              LetterFromDuration(item.duration / Rational(3, 2)) != '\0')
            item.dotted = true;
          items.push_back(item);
        }
      }
    }
  }
  DarmsItem fin;
  fin.kind = DarmsItem::Kind::kFinalBarline;
  items.push_back(fin);
  return EncodeCanonical(items);
}

}  // namespace mdm::darms

#ifndef MDM_DARMS_DARMS_H_
#define MDM_DARMS_DARMS_H_

#include <string>
#include <vector>

#include "cmn/pitch.h"
#include "cmn/score_builder.h"
#include "common/rational.h"
#include "common/result.h"
#include "er/database.h"

namespace mdm::darms {

/// One element of a DARMS-encoded score, after parsing (§4.6, fig 4).
///
/// The dialect implemented here covers the constructs in the paper's
/// fig 4 and its abbreviation key:
///   In        instrument (or voice) definition #n
///   !G !F !C  clef (the paper prints these with a leading quote)
///   !Kn# !Kn- key signature of n sharps / n flats
///   !Mn:d     meter signature (our extension for completeness)
///   R<dur>+   rest(s)
///   <code><dur>[D|U][.][,@text$]
///             note: space code (1 = bottom line, 2-digit codes 2x are
///             the full form), duration letter, stem direction,
///             duration dot, attached syllable
///   ( ... )   beam grouping (nests)
///   @text$    literal annotation; ¢ capitalizes the next letter;
///             a leading 0s position code (e.g. 00@...$) is accepted
///   /  //     barline, double (final) barline
///
/// "User DARMS" may omit repeated durations (carried from the previous
/// note). Canonicalize() re-emits with every duration explicit and
/// 2-digit space codes — the job of the whimsically named "canonizers".
struct DarmsItem {
  enum class Kind {
    kInstrument,
    kClef,
    kKeySignature,
    kMeter,
    kNote,
    kRest,
    kBeamBegin,
    kBeamEnd,
    kBarline,
    kFinalBarline,
    kAnnotation,
  };
  Kind kind = Kind::kNote;

  int number = 0;          // instrument number / key sharps(+)/flats(-)
  char clef = 'G';         // kClef
  int meter_num = 4, meter_den = 4;
  int space_code = 1;      // kNote: DARMS staff position (short form)
  Rational duration{1, 1}; // kNote / kRest, in quarter-note beats
  bool stem_down = false;
  bool stem_explicit = false;
  bool dotted = false;
  cmn::Accidental accidental = cmn::Accidental::kNone;
  std::string text;        // annotation or attached syllable
};

/// Parses DARMS text into items. User-DARMS shorthand (carried
/// durations) is resolved during parsing, so the item list is always
/// fully explicit.
Result<std::vector<DarmsItem>> ParseDarms(const std::string& text);

/// Re-encodes items as canonical DARMS: explicit durations everywhere,
/// two-digit space codes, one space between items.
std::string EncodeCanonical(const std::vector<DarmsItem>& items);

/// Encodes items as compact "user DARMS": durations elided when equal
/// to the previous note's, short space codes.
std::string EncodeUser(const std::vector<DarmsItem>& items);

/// Canonicalizes DARMS text (parse + canonical re-encode).
Result<std::string> Canonicalize(const std::string& text);

/// Result of importing a DARMS stream into the CMN database.
struct DarmsImport {
  er::EntityId score = er::kInvalidEntityId;
  er::EntityId staff = er::kInvalidEntityId;
  er::EntityId voice = er::kInvalidEntityId;
  int notes = 0;
  int rests = 0;
  int measures = 0;
};

/// Decodes DARMS into a CMN score: one instrument/staff/voice, measures
/// split at barlines, notes placed at syncs by accumulated onset,
/// performance pitches derived from the running clef / key signature /
/// accidental state (§4.3), beams realized as GROUPs, and syllables
/// attached through SYLLABLE_OF_NOTE.
Result<DarmsImport> ImportDarms(er::Database* db, const std::string& text,
                                const std::string& title);

/// Exports a previously imported (or hand-built single-voice) score
/// back to canonical DARMS.
Result<std::string> ExportDarms(er::Database* db, er::EntityId score);

}  // namespace mdm::darms

#endif  // MDM_DARMS_DARMS_H_
